//! Uniform (round-robin) replication.
//!
//! "If the video popularity distribution is uniform, a simple round-robin
//! replication achieves an optimal replication scheme with respect to
//! Eq. (8)" (paper, Sec. 4.1). This policy spreads the slot budget as
//! evenly as the cap `r_i ≤ N` allows, ignoring popularity entirely — the
//! optimal choice for θ = 0 and a useful control in ablations.

use crate::traits::{check_inputs, ReplicationPolicy};
use vod_model::{ModelError, Popularity, ReplicationScheme};

/// Popularity-blind even replication.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformReplication;

impl ReplicationPolicy for UniformReplication {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn replicate(
        &self,
        pop: &Popularity,
        n_servers: usize,
        total_slots: u64,
    ) -> Result<ReplicationScheme, ModelError> {
        let budget = check_inputs(pop, n_servers, total_slots)?;
        let m = pop.len() as u64;
        let base = (budget / m).min(n_servers as u64) as u32;
        let mut replicas = vec![base; pop.len()];
        let mut leftover = budget - base as u64 * m;
        // Round-robin the remainder, most popular first (harmless for
        // uniform popularity, sensible otherwise), respecting the cap.
        if base < n_servers as u32 {
            for r in replicas.iter_mut() {
                if leftover == 0 {
                    break;
                }
                *r += 1;
                leftover -= 1;
            }
        }
        let scheme = ReplicationScheme::new(replicas)?;
        scheme.validate(n_servers)?;
        Ok(scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let pop = Popularity::uniform(5).unwrap();
        let s = UniformReplication.replicate(&pop, 4, 12).unwrap();
        assert_eq!(s.replicas(), &[3, 3, 2, 2, 2]);
        assert_eq!(s.total(), 12);
    }

    #[test]
    fn exact_division() {
        let pop = Popularity::uniform(4).unwrap();
        let s = UniformReplication.replicate(&pop, 4, 8).unwrap();
        assert_eq!(s.replicas(), &[2, 2, 2, 2]);
    }

    #[test]
    fn capped_at_n() {
        let pop = Popularity::uniform(3).unwrap();
        let s = UniformReplication.replicate(&pop, 2, 100).unwrap();
        assert_eq!(s.replicas(), &[2, 2, 2]);
    }

    #[test]
    fn optimal_for_uniform_popularity() {
        use crate::adams::BoundedAdamsReplication;
        let pop = Popularity::uniform(6).unwrap();
        let u = UniformReplication.replicate(&pop, 4, 15).unwrap();
        let a = BoundedAdamsReplication.replicate(&pop, 4, 15).unwrap();
        assert!(
            (u.max_weight(&pop, 1.0).unwrap() - a.max_weight(&pop, 1.0).unwrap()).abs() < 1e-15
        );
    }

    #[test]
    fn insufficient_budget_rejected() {
        let pop = Popularity::uniform(5).unwrap();
        assert!(UniformReplication.replicate(&pop, 4, 4).is_err());
    }

    #[test]
    fn name() {
        assert_eq!(UniformReplication.name(), "uniform");
    }
}
