//! The common interface of replication policies.

use vod_model::{ModelError, Popularity, ReplicationScheme};

/// A fixed-bit-rate replication policy: maps a popularity distribution and
/// a storage budget to per-video replica counts.
pub trait ReplicationPolicy {
    /// Short identifier used in experiment reports (e.g. `"adams"`).
    fn name(&self) -> &'static str;

    /// Computes a replication scheme for `pop.len()` videos over
    /// `n_servers` servers with a cluster-wide budget of `total_slots`
    /// replica slots (`N·C` in the paper's notation).
    ///
    /// Implementations must return schemes satisfying constraint (7)
    /// (`1 ≤ r_i ≤ N`) with `Σ r_i ≤ total_slots`, and must fail with
    /// [`ModelError::InsufficientStorage`] when `total_slots < M` (every
    /// video needs at least one replica).
    fn replicate(
        &self,
        pop: &Popularity,
        n_servers: usize,
        total_slots: u64,
    ) -> Result<ReplicationScheme, ModelError>;
}

/// Checks the preconditions shared by every policy; returns the usable
/// budget, clamped to the absolute maximum `N·M` (constraint 7 caps each
/// video at `N` replicas, so extra slots beyond that are dead storage).
pub(crate) fn check_inputs(
    pop: &Popularity,
    n_servers: usize,
    total_slots: u64,
) -> Result<u64, ModelError> {
    if n_servers == 0 {
        return Err(ModelError::Empty);
    }
    let m = pop.len() as u64;
    if total_slots < m {
        return Err(ModelError::InsufficientStorage {
            required: m,
            capacity: total_slots,
        });
    }
    Ok(total_slots.min(m * n_servers as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_clamped_to_nm() {
        let pop = Popularity::zipf(4, 1.0).unwrap();
        assert_eq!(check_inputs(&pop, 3, 100).unwrap(), 12);
        assert_eq!(check_inputs(&pop, 3, 7).unwrap(), 7);
    }

    #[test]
    fn insufficient_storage_detected() {
        let pop = Popularity::zipf(4, 1.0).unwrap();
        assert!(matches!(
            check_inputs(&pop, 3, 3),
            Err(ModelError::InsufficientStorage {
                required: 4,
                capacity: 3
            })
        ));
    }

    #[test]
    fn zero_servers_rejected() {
        let pop = Popularity::zipf(4, 1.0).unwrap();
        assert!(matches!(check_inputs(&pop, 0, 10), Err(ModelError::Empty)));
    }
}
