//! The bounded Adams monotone divisor replication algorithm (paper,
//! Sec. 4.1.1, Theorem 4.1).
//!
//! "It firstly assigns one replica to each video. For the rest replication
//! capacity of the cluster, i.e. N·C − M replicas, at each iteration it
//! gives one more replica to the video whose number of replicas is less
//! than the number of servers and whose replica(s) has the currently
//! greatest communication weight."
//!
//! This is Adams' divisor method from apportionment theory (divisor
//! sequence `d(r) = r`), bounded by constraint (7): `r_i ≤ N`. It is
//! optimal for Eq. (8) — it minimizes `max_i p_i / r_i` over all schemes
//! with the same total — because each greedy step lowers the unique current
//! maximum as much as any single slot can (an exchange argument; verified
//! against brute force in this crate's tests and property suites).
//!
//! Complexity: `O(M + (N·C − M) log M)` with a binary heap — the paper's
//! `O(M·N log M)` worst case when the budget saturates at `N·M`.

use crate::traits::{check_inputs, ReplicationPolicy};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vod_model::{ModelError, Popularity, ReplicationScheme, VideoId};

/// One duplication step of the Adams iteration, for Figure-1-style traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamsStep {
    /// Iteration number, starting at 1 (iteration 0 is the initial
    /// one-replica-each assignment).
    pub iteration: u32,
    /// The video that received a new replica.
    pub video: VideoId,
    /// Its per-replica weight *before* duplication (`p_i / r_i`) — the
    /// current maximum over all still-duplicable videos.
    pub weight_before: f64,
    /// Its replica count after duplication.
    pub replicas_after: u32,
}

/// Max-heap entry: weight-ordered, id-tiebroken for determinism.
#[derive(Debug, Clone, Copy)]
struct Entry {
    weight: f64,
    video: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Greater weight first; lower video id wins ties (the paper's
        // example duplicates v1 before v2 when p1 = p2).
        self.weight
            .total_cmp(&other.weight)
            .then_with(|| other.video.cmp(&self.video))
    }
}

/// The optimal bounded replication policy (Theorem 4.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct BoundedAdamsReplication;

impl BoundedAdamsReplication {
    /// Runs the algorithm and records every duplication step — the data
    /// behind the paper's Figure 1 illustration.
    pub fn replicate_traced(
        &self,
        pop: &Popularity,
        n_servers: usize,
        total_slots: u64,
    ) -> Result<(ReplicationScheme, Vec<AdamsStep>), ModelError> {
        let budget = check_inputs(pop, n_servers, total_slots)?;
        let m = pop.len();
        let n = n_servers as u32;

        let mut replicas = vec![1u32; m];
        let mut heap: BinaryHeap<Entry> = pop
            .p()
            .iter()
            .enumerate()
            .filter(|_| n > 1)
            .map(|(i, &p)| Entry {
                weight: p,
                video: i as u32,
            })
            .collect();

        let spare = budget - m as u64;
        let mut steps = Vec::with_capacity(spare as usize);
        for k in 0..spare {
            let Some(top) = heap.pop() else {
                break; // every video saturated at N replicas
            };
            let i = top.video as usize;
            replicas[i] += 1;
            steps.push(AdamsStep {
                iteration: k as u32 + 1,
                video: VideoId(top.video),
                weight_before: top.weight,
                replicas_after: replicas[i],
            });
            if replicas[i] < n {
                heap.push(Entry {
                    weight: pop.get(i) / replicas[i] as f64,
                    video: top.video,
                });
            }
        }

        Ok((ReplicationScheme::new(replicas)?, steps))
    }
}

impl ReplicationPolicy for BoundedAdamsReplication {
    fn name(&self) -> &'static str {
        "adams"
    }

    fn replicate(
        &self,
        pop: &Popularity,
        n_servers: usize,
        total_slots: u64,
    ) -> Result<ReplicationScheme, ModelError> {
        self.replicate_traced(pop, n_servers, total_slots)
            .map(|(scheme, _)| scheme)
    }
}

/// Exhaustively finds the minimum achievable `max_i p_i / r_i` over all
/// schemes with `Σ r_i = total_slots` and `1 ≤ r_i ≤ n`. Exponential —
/// test-support only, exposed for the cross-crate property suites.
pub fn brute_force_optimum(pop: &Popularity, n_servers: usize, total_slots: u64) -> Option<f64> {
    let m = pop.len();
    let n = n_servers as u32;
    let mut best: Option<f64> = None;
    let mut counts = vec![1u32; m];

    fn recurse(
        pop: &Popularity,
        counts: &mut Vec<u32>,
        idx: usize,
        remaining: u64,
        n: u32,
        best: &mut Option<f64>,
    ) {
        if idx == counts.len() {
            if remaining == 0 {
                let worst = counts
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| pop.get(i) / r as f64)
                    .fold(f64::NEG_INFINITY, f64::max);
                if best.is_none_or(|b| worst < b) {
                    *best = Some(worst);
                }
            }
            return;
        }
        let max_extra = (n - 1) as u64;
        for extra in 0..=remaining.min(max_extra) {
            counts[idx] = 1 + extra as u32;
            recurse(pop, counts, idx + 1, remaining - extra, n, best);
        }
        counts[idx] = 1;
    }

    if total_slots < m as u64 || total_slots > m as u64 * n as u64 {
        return None;
    }
    recurse(pop, &mut counts, 0, total_slots - m as u64, n, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ReplicationPolicy;

    #[test]
    fn paper_figure_1_trace() {
        // Five videos, three servers, storage capacity 3 replicas/server
        // => budget 9. With p1 ≥ p2 ≥ … ≥ p5 the first duplication goes to
        // v1 (greatest weight).
        let pop = Popularity::from_weights(&[5.0, 4.0, 3.0, 2.0, 1.0]).unwrap();
        let (scheme, steps) = BoundedAdamsReplication
            .replicate_traced(&pop, 3, 9)
            .unwrap();
        assert_eq!(scheme.total(), 9);
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0].video, VideoId(0));
        assert_eq!(steps[0].replicas_after, 2);
        // Weight sequence handed to duplication never increases.
        assert!(steps
            .windows(2)
            .all(|w| w[0].weight_before >= w[1].weight_before));
        // No video exceeds N = 3.
        assert!(scheme.replicas().iter().all(|&r| r <= 3));
    }

    #[test]
    fn second_iteration_follows_paper_rule() {
        // p1/2 still the max => v1 duplicated again (paper's illustrated
        // branch).
        let pop = Popularity::from_weights(&[10.0, 4.0, 3.0, 2.0, 1.0]).unwrap();
        let (_, steps) = BoundedAdamsReplication
            .replicate_traced(&pop, 3, 7)
            .unwrap();
        assert_eq!(steps[0].video, VideoId(0));
        assert_eq!(steps[1].video, VideoId(0));
        assert_eq!(steps[1].replicas_after, 3);
    }

    #[test]
    fn bounded_by_server_count() {
        // Extreme skew: without the bound v0 would absorb everything.
        let pop = Popularity::from_weights(&[1000.0, 1.0, 1.0]).unwrap();
        let scheme = BoundedAdamsReplication.replicate(&pop, 2, 6).unwrap();
        assert!(scheme.replicas().iter().all(|&r| r <= 2));
        assert_eq!(scheme.replicas(), &[2, 2, 2]);
    }

    #[test]
    fn uses_exact_budget_when_unbounded() {
        let pop = Popularity::zipf(10, 1.0).unwrap();
        let scheme = BoundedAdamsReplication.replicate(&pop, 8, 25).unwrap();
        assert_eq!(scheme.total(), 25);
        assert!(scheme.validate(8).is_ok());
    }

    #[test]
    fn budget_beyond_nm_saturates() {
        let pop = Popularity::zipf(3, 1.0).unwrap();
        let scheme = BoundedAdamsReplication.replicate(&pop, 2, 100).unwrap();
        assert_eq!(scheme.replicas(), &[2, 2, 2]);
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        for theta in [0.271, 0.5, 1.0] {
            let pop = Popularity::zipf(5, theta).unwrap();
            for budget in 5..=12u64 {
                let scheme = BoundedAdamsReplication.replicate(&pop, 3, budget).unwrap();
                let got = scheme.max_weight(&pop, 1.0).unwrap();
                let best = brute_force_optimum(&pop, 3, budget.min(15)).unwrap();
                assert!(
                    (got - best).abs() < 1e-12,
                    "theta {theta} budget {budget}: adams {got} vs optimum {best}"
                );
            }
        }
    }

    #[test]
    fn uniform_popularity_gives_even_counts() {
        let pop = Popularity::uniform(4).unwrap();
        let scheme = BoundedAdamsReplication.replicate(&pop, 4, 8).unwrap();
        assert_eq!(scheme.replicas(), &[2, 2, 2, 2]);
    }

    #[test]
    fn insufficient_budget_rejected() {
        let pop = Popularity::zipf(5, 1.0).unwrap();
        assert!(matches!(
            BoundedAdamsReplication.replicate(&pop, 3, 4),
            Err(ModelError::InsufficientStorage { .. })
        ));
    }

    #[test]
    fn single_server_all_singletons() {
        let pop = Popularity::zipf(5, 1.0).unwrap();
        let scheme = BoundedAdamsReplication.replicate(&pop, 1, 10).unwrap();
        assert_eq!(scheme.replicas(), &[1, 1, 1, 1, 1]);
    }

    #[test]
    fn max_weight_non_increasing_in_budget() {
        let pop = Popularity::zipf(20, 1.0).unwrap();
        let mut prev = f64::INFINITY;
        for budget in (20..=100).step_by(5) {
            let s = BoundedAdamsReplication.replicate(&pop, 8, budget).unwrap();
            let w = s.max_weight(&pop, 1.0).unwrap();
            assert!(w <= prev + 1e-15, "budget {budget}: {w} > {prev}");
            prev = w;
        }
    }

    #[test]
    fn name() {
        assert_eq!(BoundedAdamsReplication.name(), "adams");
    }
}
