//! Replication algorithms for the fixed-bit-rate setting (paper, Sec. 4.1).
//!
//! Given popularities `p_1 ≥ … ≥ p_M`, a cluster of `N` servers and a total
//! storage budget of `K = N·C` replica slots, a replication algorithm picks
//! per-video replica counts `r_i` with `1 ≤ r_i ≤ N` (constraint 7) and
//! `Σ r_i ≤ K`, aiming at Eq. (8): minimize the largest per-replica
//! communication weight `max_i p_i / r_i` — the finer the granularity of
//! replica weights, the more freedom the placement step has to balance
//! load.
//!
//! Implemented policies:
//!
//! * [`adams::BoundedAdamsReplication`] — the paper's optimal scheme
//!   (Theorem 4.1), a bounded variant of Adams' monotone divisor method
//!   from apportionment theory;
//! * [`zipf_interval::ZipfIntervalReplication`] — the O(M log M)
//!   approximation that classifies popularities into `N` Zipf-spaced
//!   intervals and binary-searches the interval skew `u` (Lemma 4.1);
//! * [`classification::ClassificationReplication`] — the granularity-blind
//!   popularity-class baseline the evaluation compares against;
//! * [`uniform::UniformReplication`] — round-robin slot spreading, optimal
//!   only under uniform popularity.
//!
//! ```
//! use vod_model::Popularity;
//! use vod_replication::{BoundedAdamsReplication, ReplicationPolicy,
//!                       ZipfIntervalReplication};
//!
//! // 50 videos, Zipf(0.75) popularity, 8 servers, storage for 70 replicas.
//! let pop = Popularity::zipf(50, 0.75).unwrap();
//! let optimal = BoundedAdamsReplication.replicate(&pop, 8, 70).unwrap();
//! let approx = ZipfIntervalReplication::default().replicate(&pop, 8, 70).unwrap();
//!
//! assert_eq!(optimal.total(), 70);
//! assert_eq!(approx.total(), 70);
//! // The approximation can never beat the proven optimum on Eq. (8)…
//! let w_opt = optimal.max_weight(&pop, 1.0).unwrap();
//! let w_apx = approx.max_weight(&pop, 1.0).unwrap();
//! assert!(w_apx >= w_opt - 1e-12);
//! // …and in practice lands on (or next to) it.
//! assert!(w_apx <= w_opt * 1.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adams;
pub mod classification;
pub mod granularity;
pub mod traits;
pub mod uniform;
pub mod zipf_interval;

pub use adams::BoundedAdamsReplication;
pub use classification::ClassificationReplication;
pub use traits::ReplicationPolicy;
pub use uniform::UniformReplication;
pub use zipf_interval::ZipfIntervalReplication;
