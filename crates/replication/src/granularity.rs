//! Granularity reporting: how fine are a scheme's replica weights?
//!
//! The replication step's whole purpose is "to get fine granularity of
//! replicas in terms of communication weight for later placement" (paper,
//! Sec. 4.1). These helpers quantify that for experiment reports and for
//! the Adams-vs-Zipf quality comparison of Section 5.

use serde::{Deserialize, Serialize};
use vod_model::{ModelError, Popularity, ReplicationScheme};

/// Summary of a scheme's replica-weight granularity (weights computed with
/// demand = 1, i.e. pure `p_i / r_i`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GranularityReport {
    /// Total replicas `Σ r_i`.
    pub total_replicas: u64,
    /// Replication degree `Σ r_i / M`.
    pub degree: f64,
    /// `max_i p_i / r_i` — the Eq. (8) objective.
    pub max_weight: f64,
    /// `min_i p_i / r_i`.
    pub min_weight: f64,
    /// `max − min` — the Theorem 4.2 placement-imbalance bound.
    pub spread: f64,
}

/// Computes the granularity summary of a scheme under a popularity vector.
pub fn report(
    pop: &Popularity,
    scheme: &ReplicationScheme,
) -> Result<GranularityReport, ModelError> {
    let weights = scheme.weights(pop, 1.0)?;
    let max_weight = weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min_weight = weights.iter().copied().fold(f64::INFINITY, f64::min);
    Ok(GranularityReport {
        total_replicas: scheme.total(),
        degree: scheme.degree(),
        max_weight,
        min_weight,
        spread: max_weight - min_weight,
    })
}

/// Relative optimality gap of `candidate` versus `optimal` on the Eq. (8)
/// objective: `(w_cand − w_opt) / w_opt`. Zero means the candidate matched
/// the optimum.
pub fn optimality_gap(
    pop: &Popularity,
    candidate: &ReplicationScheme,
    optimal: &ReplicationScheme,
) -> Result<f64, ModelError> {
    let wc = candidate.max_weight(pop, 1.0)?;
    let wo = optimal.max_weight(pop, 1.0)?;
    Ok((wc - wo) / wo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adams::BoundedAdamsReplication;
    use crate::traits::ReplicationPolicy;
    use crate::zipf_interval::ZipfIntervalReplication;

    #[test]
    fn report_fields_consistent() {
        let pop = Popularity::from_weights(&[4.0, 2.0, 1.0, 1.0]).unwrap();
        let scheme = ReplicationScheme::new(vec![2, 1, 1, 1]).unwrap();
        let r = report(&pop, &scheme).unwrap();
        assert_eq!(r.total_replicas, 5);
        assert!((r.degree - 1.25).abs() < 1e-12);
        assert!((r.max_weight - 0.25).abs() < 1e-12); // p0/2 = p1 = 0.25
        assert!((r.min_weight - 0.125).abs() < 1e-12);
        assert!((r.spread - 0.125).abs() < 1e-12);
    }

    #[test]
    fn gap_zero_against_self() {
        let pop = Popularity::zipf(20, 1.0).unwrap();
        let s = BoundedAdamsReplication.replicate(&pop, 4, 30).unwrap();
        assert_eq!(optimality_gap(&pop, &s, &s).unwrap(), 0.0);
    }

    #[test]
    fn zipf_gap_is_small_and_nonnegative() {
        let pop = Popularity::zipf(100, 0.75).unwrap();
        let adams = BoundedAdamsReplication.replicate(&pop, 8, 140).unwrap();
        let zipf = ZipfIntervalReplication::default()
            .replicate(&pop, 8, 140)
            .unwrap();
        let gap = optimality_gap(&pop, &zipf, &adams).unwrap();
        assert!(gap >= -1e-12, "approximation cannot beat the optimum");
        assert!(gap < 1.0, "gap {gap} unexpectedly large");
    }
}
