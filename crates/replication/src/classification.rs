//! Classification-based replication — the baseline of the paper's
//! evaluation.
//!
//! "To better understand the impact of different replication algorithms on
//! performance, we simulated a feasible and straightforward algorithm
//! called classification based replication \[19\]" (paper, Sec. 5). The
//! citation is the authors' own workshop paper; the scheme reconstructed
//! here (documented in DESIGN.md) is the straightforward popularity-class
//! approach that reference describes: rank videos, cut the ranking into `N`
//! equal-count classes, and give every video in a class the same replica
//! count, with class quotas proportional to the class rank (most popular
//! class gets the most replicas), scaled to the storage budget.
//!
//! The defining contrast with the Adams/Zipf schemes is that quotas are
//! *rank-proportional, not weight-proportional*: the class structure
//! ignores how much more popular class 1 is than class 2, so the resulting
//! replica weights are coarse — exactly the deficiency the paper's
//! comparison exercises.

use crate::traits::{check_inputs, ReplicationPolicy};
use vod_model::{ModelError, Popularity, ReplicationScheme};

/// The rank-class baseline replication policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassificationReplication;

impl ReplicationPolicy for ClassificationReplication {
    fn name(&self) -> &'static str {
        "class"
    }

    fn replicate(
        &self,
        pop: &Popularity,
        n_servers: usize,
        total_slots: u64,
    ) -> Result<ReplicationScheme, ModelError> {
        let budget = check_inputs(pop, n_servers, total_slots)?;
        let m = pop.len();
        let n = n_servers;

        // Class of each video: n classes of (near-)equal size, class 0 the
        // most popular.
        let class_of = |i: usize| -> usize { i * n / m };

        // Raw quota per video: proportional to (n - class), i.e. class 0
        // wants n-times the replicas of class n-1, before clamping.
        let raw: Vec<f64> = (0..m).map(|i| (n - class_of(i)) as f64).collect();
        let raw_total: f64 = raw.iter().sum();
        let spare = (budget - m as u64) as f64;

        // Largest-remainder apportionment of the spare slots over the raw
        // quotas, on top of the mandatory one replica each.
        let mut replicas = vec![1u32; m];
        let mut fractional: Vec<(f64, usize)> = Vec::with_capacity(m);
        let mut assigned = 0u64;
        for i in 0..m {
            let share = spare * raw[i] / raw_total;
            let whole = share.floor();
            let cap = (n as u32 - 1) as f64;
            let take = whole.min(cap);
            replicas[i] += take as u32;
            assigned += take as u64;
            fractional.push((share - take, i));
        }
        // Hand out the remainder by largest fractional part, respecting the
        // per-video cap N; ties broken by rank (more popular first).
        fractional.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let mut leftover = (budget - m as u64).saturating_sub(assigned);
        // Cycle until the leftover is gone or everything is saturated.
        while leftover > 0 {
            let mut progressed = false;
            for &(_, i) in &fractional {
                if leftover == 0 {
                    break;
                }
                if (replicas[i] as usize) < n {
                    replicas[i] += 1;
                    leftover -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        let scheme = ReplicationScheme::new(replicas)?;
        scheme.validate(n_servers)?;
        Ok(scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumes_budget_exactly_when_feasible() {
        let pop = Popularity::zipf(40, 1.0).unwrap();
        let s = ClassificationReplication.replicate(&pop, 8, 60).unwrap();
        assert_eq!(s.total(), 60);
        assert!(s.validate(8).is_ok());
    }

    #[test]
    fn class_structure_is_monotone() {
        let pop = Popularity::zipf(40, 1.0).unwrap();
        let s = ClassificationReplication.replicate(&pop, 8, 80).unwrap();
        // More popular videos never get fewer replicas.
        assert!(s.replicas().windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn videos_in_same_class_get_equal_counts_before_remainder() {
        // 8 videos, 4 servers -> classes of 2. With a budget that divides
        // evenly, classmates tie.
        let pop = Popularity::zipf(8, 1.0).unwrap();
        let s = ClassificationReplication.replicate(&pop, 4, 18).unwrap();
        assert_eq!(s.total(), 18);
        let r = s.replicas();
        // Class 0 >= class 1 >= class 2 >= class 3, each of size 2.
        assert!(r[0] >= r[2] && r[2] >= r[4] && r[4] >= r[6]);
    }

    #[test]
    fn coarser_granularity_than_adams() {
        // The point of the baseline: its max replica weight is no better
        // (typically worse) than the optimal scheme's.
        use crate::adams::BoundedAdamsReplication;
        let pop = Popularity::zipf(200, 1.0).unwrap();
        let budget = 280;
        let adams = BoundedAdamsReplication.replicate(&pop, 8, budget).unwrap();
        let class = ClassificationReplication
            .replicate(&pop, 8, budget)
            .unwrap();
        let wa = adams.max_weight(&pop, 1.0).unwrap();
        let wc = class.max_weight(&pop, 1.0).unwrap();
        assert!(wc >= wa - 1e-15, "baseline beats the proven optimum");
    }

    #[test]
    fn budget_equal_m_gives_singletons() {
        let pop = Popularity::zipf(10, 0.5).unwrap();
        let s = ClassificationReplication.replicate(&pop, 4, 10).unwrap();
        assert_eq!(s.replicas(), vec![1u32; 10].as_slice());
    }

    #[test]
    fn saturated_budget_capped_at_n() {
        let pop = Popularity::zipf(6, 1.0).unwrap();
        let s = ClassificationReplication.replicate(&pop, 3, 1_000).unwrap();
        assert_eq!(s.replicas(), vec![3u32; 6].as_slice());
    }

    #[test]
    fn insufficient_budget_rejected() {
        let pop = Popularity::zipf(10, 0.5).unwrap();
        assert!(ClassificationReplication.replicate(&pop, 4, 9).is_err());
    }

    #[test]
    fn name() {
        assert_eq!(ClassificationReplication.name(), "class");
    }
}
