//! The combinatorial objective of Eq. (1).
//!
//! "We define the optimization objective as:
//! `O = Σ b_i / M + α · Σ r_i / M − β · L`"
//! where `b_i` is the encoding bit rate of video `v_i`, `r_i` its number of
//! replicas, `L` the load-imbalance degree, and `α`, `β` relative weighting
//! factors (paper, Sec. 3.2). Maximizing `O` trades off service quality
//! (average bit rate) against service availability (average replication
//! degree) and load balance.

use crate::error::ModelError;
use crate::load::{imbalance, ImbalanceMetric};
use crate::replication::ReplicationScheme;
use crate::video::Catalog;
use serde::{Deserialize, Serialize};

/// Relative weighting factors `α` (replication degree) and `β` (load
/// imbalance) of Eq. (1), plus the choice of imbalance definition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveWeights {
    /// Weight of the average replication degree term.
    pub alpha: f64,
    /// Weight of the load-imbalance penalty.
    pub beta: f64,
    /// Which `L` definition the penalty uses.
    pub metric: ImbalanceMetric,
}

impl Default for ObjectiveWeights {
    /// Balanced weighting: bit rate measured in Mbps (order 1–8), degree in
    /// replicas (order 1–8), L as a coefficient of variation (order 0–1);
    /// unit weights put all three on comparable scales.
    fn default() -> Self {
        ObjectiveWeights {
            alpha: 1.0,
            beta: 1.0,
            metric: ImbalanceMetric::CoefficientOfVariation,
        }
    }
}

impl ObjectiveWeights {
    /// New weights with the default (Eq. 3) imbalance metric.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, ModelError> {
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "alpha",
                value: alpha,
            });
        }
        if !beta.is_finite() || beta < 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "beta",
                value: beta,
            });
        }
        Ok(ObjectiveWeights {
            alpha,
            beta,
            metric: ImbalanceMetric::CoefficientOfVariation,
        })
    }

    /// Evaluates Eq. (1) from its three raw components: mean bit rate
    /// (Mbps), mean replication degree, imbalance degree `L`.
    #[inline]
    pub fn evaluate_components(&self, mean_bitrate_mbps: f64, degree: f64, l: f64) -> f64 {
        mean_bitrate_mbps + self.alpha * degree - self.beta * l
    }

    /// Evaluates Eq. (1) for a catalog (bit rates), a replication scheme
    /// (degrees) and a vector of expected server loads.
    pub fn evaluate(
        &self,
        catalog: &Catalog,
        scheme: &ReplicationScheme,
        loads: &[f64],
    ) -> Result<f64, ModelError> {
        if catalog.len() != scheme.len() {
            return Err(ModelError::LengthMismatch {
                expected: catalog.len(),
                actual: scheme.len(),
            });
        }
        Ok(self.evaluate_components(
            catalog.mean_bitrate_mbps(),
            scheme.degree(),
            imbalance(loads, self.metric),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrate::BitRate;

    #[test]
    fn component_form() {
        let w = ObjectiveWeights::new(2.0, 3.0).unwrap();
        // O = 4 + 2*1.5 - 3*0.2 = 6.4
        assert!((w.evaluate_components(4.0, 1.5, 0.2) - 6.4).abs() < 1e-12);
    }

    #[test]
    fn full_evaluation() {
        let catalog = Catalog::fixed_rate(4, BitRate::MPEG2, 5_400).unwrap();
        let scheme = ReplicationScheme::new(vec![2, 2, 1, 1]).unwrap();
        let w = ObjectiveWeights::default();
        // Balanced loads -> L = 0 -> O = 4 + 1.5.
        let o = w.evaluate(&catalog, &scheme, &[5.0, 5.0]).unwrap();
        assert!((o - 5.5).abs() < 1e-12);
        // Imbalance strictly reduces the objective.
        let o2 = w.evaluate(&catalog, &scheme, &[2.0, 8.0]).unwrap();
        assert!(o2 < o);
    }

    #[test]
    fn higher_degree_higher_objective() {
        let catalog = Catalog::fixed_rate(2, BitRate::MPEG2, 5_400).unwrap();
        let w = ObjectiveWeights::default();
        let low = ReplicationScheme::new(vec![1, 1]).unwrap();
        let high = ReplicationScheme::new(vec![2, 2]).unwrap();
        let loads = [1.0, 1.0];
        assert!(
            w.evaluate(&catalog, &high, &loads).unwrap()
                > w.evaluate(&catalog, &low, &loads).unwrap()
        );
    }

    #[test]
    fn rejects_invalid_weights() {
        assert!(ObjectiveWeights::new(-1.0, 0.0).is_err());
        assert!(ObjectiveWeights::new(0.0, f64::NAN).is_err());
        assert!(ObjectiveWeights::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn mismatch_rejected() {
        let catalog = Catalog::fixed_rate(3, BitRate::MPEG2, 5_400).unwrap();
        let scheme = ReplicationScheme::new(vec![1, 1]).unwrap();
        assert!(ObjectiveWeights::default()
            .evaluate(&catalog, &scheme, &[1.0])
            .is_err());
    }
}
