//! Integer newtype identifiers for videos and servers.
//!
//! The simulator and the placement algorithms index dense arrays by these
//! ids, so both are thin wrappers around `u32` (see the type-size guidance in
//! the Rust perf book: small integer ids, coerced to `usize` at use sites).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a video in a [`crate::Catalog`]; dense, 0-based.
///
/// By convention throughout this workspace video ids are assigned in
/// non-increasing order of popularity: `VideoId(0)` is the most popular
/// title. This mirrors the paper, which indexes videos `v_1 … v_M` with
/// `p_1 ≥ p_2 ≥ … ≥ p_M`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VideoId(pub u32);

/// Identifier of a back-end server in a [`crate::ClusterSpec`]; dense, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

impl VideoId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ServerId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VideoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for VideoId {
    fn from(v: u32) -> Self {
        VideoId(v)
    }
}

impl From<u32> for ServerId {
    fn from(v: u32) -> Self {
        ServerId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_id_roundtrip() {
        let v = VideoId(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.to_string(), "v7");
        assert_eq!(VideoId::from(7u32), v);
    }

    #[test]
    fn server_id_roundtrip() {
        let s = ServerId(3);
        assert_eq!(s.index(), 3);
        assert_eq!(s.to_string(), "s3");
        assert_eq!(ServerId::from(3u32), s);
    }

    #[test]
    fn ids_order_by_value() {
        assert!(VideoId(1) < VideoId(2));
        assert!(ServerId(0) < ServerId(5));
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<VideoId>(), 4);
        assert_eq!(std::mem::size_of::<ServerId>(), 4);
    }
}
