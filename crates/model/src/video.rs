//! Videos and catalogs.
//!
//! "We consider … a set of M different videos … all videos in set V have the
//! same duration, say 90 minutes for typical movies" (paper, Sec. 3.1). The
//! general (scalable-rate) formulation lets each video carry its own bit
//! rate, so [`Video`] stores one; the fixed-rate algorithms simply build
//! catalogs where every rate is equal.

use crate::bitrate::BitRate;
use crate::error::ModelError;
use crate::ids::VideoId;
use serde::{Deserialize, Serialize};

/// The paper's canonical movie duration, in seconds (90 minutes).
pub const TYPICAL_DURATION_S: u64 = 90 * 60;

/// A single video title.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Video {
    /// Dense id; ids are rank-ordered by popularity across the workspace.
    pub id: VideoId,
    /// Constant encoding bit rate.
    pub bitrate: BitRate,
    /// Playback duration in seconds.
    pub duration_s: u64,
}

impl Video {
    /// Storage one replica of this video occupies, in bytes.
    #[inline]
    pub fn storage_bytes(&self) -> u64 {
        self.bitrate.storage_bytes(self.duration_s)
    }
}

/// An ordered collection of videos, indexed by [`VideoId`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    videos: Vec<Video>,
}

impl Catalog {
    /// A catalog of `m` videos all encoded at `bitrate` with equal
    /// `duration_s` — the fixed-rate setting of Sections 4.1–4.2.
    pub fn fixed_rate(m: usize, bitrate: BitRate, duration_s: u64) -> Result<Self, ModelError> {
        if m == 0 {
            return Err(ModelError::Empty);
        }
        Ok(Catalog {
            videos: (0..m as u32)
                .map(|i| Video {
                    id: VideoId(i),
                    bitrate,
                    duration_s,
                })
                .collect(),
        })
    }

    /// The paper's evaluation catalog: `m` videos, 90 minutes, MPEG-2 4 Mbps.
    pub fn paper_default(m: usize) -> Result<Self, ModelError> {
        Self::fixed_rate(m, BitRate::MPEG2, TYPICAL_DURATION_S)
    }

    /// A catalog with per-video bit rates (scalable-rate setting of
    /// Sec. 4.3); all durations equal.
    pub fn with_rates(rates: &[BitRate], duration_s: u64) -> Result<Self, ModelError> {
        if rates.is_empty() {
            return Err(ModelError::Empty);
        }
        Ok(Catalog {
            videos: rates
                .iter()
                .enumerate()
                .map(|(i, &bitrate)| Video {
                    id: VideoId(i as u32),
                    bitrate,
                    duration_s,
                })
                .collect(),
        })
    }

    /// Number of videos `M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// Always false: construction rejects empty catalogs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// All videos, in id order.
    #[inline]
    pub fn videos(&self) -> &[Video] {
        &self.videos
    }

    /// The video with the given id.
    #[inline]
    pub fn get(&self, id: VideoId) -> Option<&Video> {
        self.videos.get(id.index())
    }

    /// Mutable access (the simulated-annealing problem rewrites bit rates).
    #[inline]
    pub fn get_mut(&mut self, id: VideoId) -> Option<&mut Video> {
        self.videos.get_mut(id.index())
    }

    /// True if every video shares one bit rate — the precondition of the
    /// fixed-rate algorithms.
    pub fn is_fixed_rate(&self) -> bool {
        self.videos.windows(2).all(|w| w[0].bitrate == w[1].bitrate)
    }

    /// True if every video shares one duration (assumed throughout the
    /// paper).
    pub fn is_uniform_duration(&self) -> bool {
        self.videos
            .windows(2)
            .all(|w| w[0].duration_s == w[1].duration_s)
    }

    /// Mean encoding bit rate in Mbps — the first term of objective Eq. (1).
    pub fn mean_bitrate_mbps(&self) -> f64 {
        self.videos.iter().map(|v| v.bitrate.mbps()).sum::<f64>() / self.videos.len() as f64
    }

    /// Total storage for exactly one replica of every video, in bytes.
    pub fn single_copy_storage_bytes(&self) -> u64 {
        self.videos.iter().map(|v| v.storage_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_catalog() {
        let c = Catalog::paper_default(200).unwrap();
        assert_eq!(c.len(), 200);
        assert!(c.is_fixed_rate());
        assert!(c.is_uniform_duration());
        assert_eq!(c.get(VideoId(0)).unwrap().storage_bytes(), 2_700_000_000);
        assert!((c.mean_bitrate_mbps() - 4.0).abs() < 1e-12);
        assert_eq!(c.single_copy_storage_bytes(), 200 * 2_700_000_000);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let c = Catalog::paper_default(5).unwrap();
        for (i, v) in c.videos().iter().enumerate() {
            assert_eq!(v.id, VideoId(i as u32));
        }
        assert!(c.get(VideoId(5)).is_none());
    }

    #[test]
    fn with_rates_detects_mixed() {
        let c = Catalog::with_rates(&[BitRate::MPEG1, BitRate::MPEG2], 5_400).unwrap();
        assert!(!c.is_fixed_rate());
        assert!((c.mean_bitrate_mbps() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            Catalog::fixed_rate(0, BitRate::MPEG2, 100),
            Err(ModelError::Empty)
        );
        assert_eq!(Catalog::with_rates(&[], 100), Err(ModelError::Empty));
    }

    #[test]
    fn get_mut_rewrites_rate() {
        let mut c = Catalog::paper_default(3).unwrap();
        c.get_mut(VideoId(1)).unwrap().bitrate = BitRate::MPEG1;
        assert_eq!(c.get(VideoId(1)).unwrap().bitrate, BitRate::MPEG1);
        assert!(!c.is_fixed_rate());
    }
}
