//! Zipf-like relative popularity distributions.
//!
//! Assumption 1 of the paper: "The popularity of the videos, p_i, is assumed
//! to be known before the replication and placement. The relative popularity
//! of videos follows Zipf-like distributions with a skew parameter of θ.
//! Typically, 0.271 ≤ θ ≤ 1. The probability of choosing the i-th video is
//! p_i = (1/i^θ) / Σ_{j=1..M} (1/j^θ)."
//!
//! θ = 0 is the uniform distribution; θ = 1 is classical Zipf; larger θ means
//! more skew ("as parameter θ decreases, the video popularity skew
//! decreases", Sec. 5.1).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// The canonical lower end of the θ range cited by the paper (from the video
/// rental measurements of Dan et al.).
pub const THETA_MIN_TYPICAL: f64 = 0.271;
/// The canonical upper end of the θ range cited by the paper.
pub const THETA_MAX_TYPICAL: f64 = 1.0;

/// A normalized, non-increasing relative popularity vector `p_1 ≥ … ≥ p_M`,
/// `Σ p_i = 1`.
///
/// Video `i` (0-based [`crate::VideoId`]) has popularity `p()[i]`. The
/// non-increasing ordering is a structural invariant the replication
/// algorithms rely on (the paper indexes videos by rank).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Popularity {
    p: Vec<f64>,
}

impl Popularity {
    /// Builds the paper's Zipf-like distribution over `m` videos with skew
    /// `θ ≥ 0`.
    ///
    /// ```
    /// use vod_model::Popularity;
    /// let pop = Popularity::zipf(100, 0.271).unwrap();
    /// assert!((pop.p().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    /// assert!(pop.p()[0] > pop.p()[99]);
    /// ```
    pub fn zipf(m: usize, theta: f64) -> Result<Self, ModelError> {
        if m == 0 {
            return Err(ModelError::Empty);
        }
        if !theta.is_finite() || theta < 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "theta",
                value: theta,
            });
        }
        let mut p: Vec<f64> = (1..=m).map(|i| (i as f64).powf(-theta)).collect();
        let total: f64 = p.iter().sum();
        for v in &mut p {
            *v /= total;
        }
        Ok(Popularity { p })
    }

    /// The uniform distribution over `m` videos (θ = 0). Under uniform
    /// popularity "a simple round-robin replication achieves an optimal
    /// replication scheme" (Sec. 4.1).
    pub fn uniform(m: usize) -> Result<Self, ModelError> {
        Self::zipf(m, 0.0)
    }

    /// Builds a popularity vector from arbitrary non-negative weights.
    /// Weights are sorted into non-increasing order and normalized, matching
    /// the paper's rank-ordered indexing convention.
    pub fn from_weights(weights: &[f64]) -> Result<Self, ModelError> {
        if weights.is_empty() {
            return Err(ModelError::Empty);
        }
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(ModelError::InvalidPopularity { index: i, value: w });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ModelError::InvalidPopularity {
                index: 0,
                value: total,
            });
        }
        let mut p: Vec<f64> = weights.iter().map(|w| w / total).collect();
        p.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
        Ok(Popularity { p })
    }

    /// Builds a rank-ordered popularity from per-video-id weights,
    /// returning it together with the permutation `rank → video id`, so
    /// callers that plan in rank space (all replication/placement
    /// algorithms assume `p_1 ≥ … ≥ p_M`) can un-permute their results
    /// back to video-id space. Ties keep video-id order (stable sort), so
    /// the mapping is deterministic.
    ///
    /// ```
    /// use vod_model::Popularity;
    /// let (pop, ranks) = Popularity::ranked_from_weights(&[1.0, 3.0, 2.0]).unwrap();
    /// assert_eq!(ranks, vec![1, 2, 0]); // rank 0 is video 1, etc.
    /// assert!((pop.get(0) - 0.5).abs() < 1e-12);
    /// ```
    pub fn ranked_from_weights(weights: &[f64]) -> Result<(Self, Vec<usize>), ModelError> {
        if weights.is_empty() {
            return Err(ModelError::Empty);
        }
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(ModelError::InvalidPopularity { index: i, value: w });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ModelError::InvalidPopularity {
                index: 0,
                value: total,
            });
        }
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).expect("finite"));
        let p = order.iter().map(|&v| weights[v] / total).collect();
        Ok((Popularity { p }, order))
    }

    /// Number of videos `M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// Always false: construction rejects empty vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// The probability vector, rank-ordered (`p_1` first).
    #[inline]
    pub fn p(&self) -> &[f64] {
        &self.p
    }

    /// Probability of the `i`-th most popular video (0-based).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.p[i]
    }

    /// Ratio of the highest to the lowest popularity, `p_1 / p_M`. For a
    /// Zipf-like distribution this is `M^θ` (used in Sec. 4.2 to argue the
    /// weight spread the placement must handle).
    pub fn skew_ratio(&self) -> f64 {
        self.p[0] / self.p[self.p.len() - 1]
    }

    /// Cumulative probability of the `k` most popular videos — how
    /// top-heavy the demand is.
    pub fn head_mass(&self, k: usize) -> f64 {
        self.p.iter().take(k).sum()
    }

    /// Cumulative distribution function, `cdf[i] = Σ_{j≤i} p_j`, with the
    /// last entry forced to exactly 1.0 (guards samplers against float
    /// round-off).
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = self
            .p
            .iter()
            .map(|&v| {
                acc += v;
                acc
            })
            .collect();
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        cdf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_normalizes_and_sorts() {
        let pop = Popularity::zipf(50, 0.73).unwrap();
        let sum: f64 = pop.p().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(pop.p().windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let pop = Popularity::zipf(10, 0.0).unwrap();
        for &v in pop.p() {
            assert!((v - 0.1).abs() < 1e-12);
        }
        assert_eq!(pop, Popularity::uniform(10).unwrap());
    }

    #[test]
    fn zipf_theta_one_matches_harmonic() {
        let pop = Popularity::zipf(4, 1.0).unwrap();
        let h4 = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
        assert!((pop.get(0) - 1.0 / h4).abs() < 1e-12);
        assert!((pop.get(3) - 0.25 / h4).abs() < 1e-12);
    }

    #[test]
    fn skew_ratio_is_m_to_theta() {
        let m = 200;
        let theta = 0.5;
        let pop = Popularity::zipf(m, theta).unwrap();
        assert!((pop.skew_ratio() - (m as f64).powf(theta)).abs() < 1e-9);
    }

    #[test]
    fn higher_theta_means_more_head_mass() {
        let low = Popularity::zipf(100, 0.271).unwrap();
        let high = Popularity::zipf(100, 1.0).unwrap();
        assert!(high.head_mass(10) > low.head_mass(10));
    }

    #[test]
    fn from_weights_sorts_desc() {
        let pop = Popularity::from_weights(&[1.0, 3.0, 2.0]).unwrap();
        assert!((pop.get(0) - 0.5).abs() < 1e-12);
        assert!((pop.get(1) - 2.0 / 6.0).abs() < 1e-12);
        assert!((pop.get(2) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(Popularity::zipf(0, 1.0), Err(ModelError::Empty));
        assert!(matches!(
            Popularity::zipf(5, -1.0),
            Err(ModelError::InvalidParameter { .. })
        ));
        assert!(matches!(
            Popularity::from_weights(&[1.0, -2.0]),
            Err(ModelError::InvalidPopularity { index: 1, .. })
        ));
        assert!(matches!(
            Popularity::from_weights(&[0.0, 0.0]),
            Err(ModelError::InvalidPopularity { .. })
        ));
        assert!(matches!(
            Popularity::from_weights(&[f64::NAN]),
            Err(ModelError::InvalidPopularity { .. })
        ));
    }

    #[test]
    fn ranked_from_weights_permutation() {
        let (pop, ranks) = Popularity::ranked_from_weights(&[2.0, 8.0, 4.0, 2.0]).unwrap();
        assert_eq!(ranks, vec![1, 2, 0, 3]); // ties keep id order
        assert!((pop.get(0) - 0.5).abs() < 1e-12);
        assert!((pop.get(1) - 0.25).abs() < 1e-12);
        // Un-permuting recovers the original normalized weights.
        let mut recovered = [0.0; 4];
        for (rank, &v) in ranks.iter().enumerate() {
            recovered[v] = pop.get(rank);
        }
        assert!((recovered[1] - 0.5).abs() < 1e-12);
        assert!((recovered[0] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn ranked_from_weights_rejects_bad_input() {
        assert!(Popularity::ranked_from_weights(&[]).is_err());
        assert!(Popularity::ranked_from_weights(&[0.0, 0.0]).is_err());
        assert!(Popularity::ranked_from_weights(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn cdf_ends_at_one() {
        let pop = Popularity::zipf(7, 0.9).unwrap();
        let cdf = pop.cdf();
        assert_eq!(cdf.len(), 7);
        assert_eq!(*cdf.last().unwrap(), 1.0);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn head_mass_monotone_in_k() {
        let pop = Popularity::zipf(20, 1.0).unwrap();
        assert!(pop.head_mass(5) < pop.head_mass(10));
        assert!((pop.head_mass(20) - 1.0).abs() < 1e-12);
        assert!((pop.head_mass(100) - 1.0).abs() < 1e-12);
    }
}
