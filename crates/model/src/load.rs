//! The load-imbalance degree `L` of the cluster.
//!
//! The paper gives two definitions (Sec. 3.2): the peak deviation from the
//! mean (Eq. 2) and the standard deviation of server loads (Eq. 3),
//! normalized by the mean load `l̄ = Σ l_j / N`. "Unless otherwise
//! specified, we use the definition of Eq. (3)" — and so do we; both are
//! implemented and selectable, since Theorem 4.2 bounds the Eq. (2) form.

use serde::{Deserialize, Serialize};

/// Which definition of the load-imbalance degree to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ImbalanceMetric {
    /// Eq. (2): `L = max_j (l_j − l̄)` — the worst single-server excess
    /// over the mean (absolute, in load units).
    MaxDeviation,
    /// Eq. (3): `L = sqrt(Σ_j (l_j − l̄)² / N) / l̄` — the coefficient of
    /// variation of server loads (relative, dimensionless). The paper's
    /// default; Figure 6 plots it in percent.
    #[default]
    CoefficientOfVariation,
}

/// Mean server load `l̄`.
pub fn mean(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    loads.iter().sum::<f64>() / loads.len() as f64
}

/// Eq. (2): `max_j (l_j − l̄)`. Zero for an empty or perfectly balanced
/// cluster.
pub fn max_deviation(loads: &[f64]) -> f64 {
    let l_bar = mean(loads);
    loads.iter().map(|&l| l - l_bar).fold(0.0f64, f64::max)
}

/// Population standard deviation of server loads,
/// `sqrt(Σ (l_j − l̄)² / N)`.
pub fn std_deviation(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let l_bar = mean(loads);
    let var = loads.iter().map(|&l| (l - l_bar).powi(2)).sum::<f64>() / loads.len() as f64;
    var.sqrt()
}

/// Eq. (3): the coefficient of variation `std / l̄`. Returns 0 when the
/// mean load is 0 (idle cluster is perfectly balanced).
pub fn coefficient_of_variation(loads: &[f64]) -> f64 {
    let l_bar = mean(loads);
    if l_bar <= 0.0 {
        return 0.0;
    }
    std_deviation(loads) / l_bar
}

/// The imbalance degree under the chosen metric.
pub fn imbalance(loads: &[f64], metric: ImbalanceMetric) -> f64 {
    match metric {
        ImbalanceMetric::MaxDeviation => max_deviation(loads),
        ImbalanceMetric::CoefficientOfVariation => coefficient_of_variation(loads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_cluster_has_zero_imbalance() {
        let loads = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(max_deviation(&loads), 0.0);
        assert_eq!(coefficient_of_variation(&loads), 0.0);
    }

    #[test]
    fn max_deviation_measures_worst_excess() {
        let loads = [2.0, 4.0, 6.0]; // mean 4
        assert!((max_deviation(&loads) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cv_matches_hand_computation() {
        let loads = [2.0, 4.0, 6.0]; // mean 4, var (4+0+4)/3
        let expected = (8.0f64 / 3.0).sqrt() / 4.0;
        assert!((coefficient_of_variation(&loads) - expected).abs() < 1e-12);
    }

    #[test]
    fn idle_cluster_is_balanced() {
        let loads = [0.0, 0.0];
        assert_eq!(coefficient_of_variation(&loads), 0.0);
        assert_eq!(max_deviation(&loads), 0.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_deviation(&[]), 0.0);
        assert_eq!(imbalance(&[], ImbalanceMetric::default()), 0.0);
    }

    #[test]
    fn metric_dispatch() {
        let loads = [1.0, 3.0];
        assert_eq!(
            imbalance(&loads, ImbalanceMetric::MaxDeviation),
            max_deviation(&loads)
        );
        assert_eq!(
            imbalance(&loads, ImbalanceMetric::CoefficientOfVariation),
            coefficient_of_variation(&loads)
        );
    }

    #[test]
    fn default_metric_is_eq3() {
        assert_eq!(
            ImbalanceMetric::default(),
            ImbalanceMetric::CoefficientOfVariation
        );
    }

    #[test]
    fn scale_invariance_of_cv() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert!((coefficient_of_variation(&a) - coefficient_of_variation(&b)).abs() < 1e-12);
        // Max deviation, by contrast, scales with the loads.
        assert!((max_deviation(&b) - 10.0 * max_deviation(&a)).abs() < 1e-12);
    }
}
