//! Human-readable summaries of schemes and layouts.
//!
//! Operators read plans before shipping them; these formatters render the
//! planning artifacts the way the paper's figures do — per-video replica
//! counts bucketed by rank, and per-server occupancy with expected loads.

use crate::layout::Layout;
use crate::replication::ReplicationScheme;
use std::fmt::Write as _;

/// Renders a replication scheme as a rank-bucketed histogram, e.g.
///
/// ```text
/// degree 1.40 over 8 servers
///   ranks   1..=10: 8 7 6 5 5 4 4 3 3 3
///   ranks  11..=20: 2 2 2 2 1 1 1 1 1 1
/// ```
pub fn scheme_summary(scheme: &ReplicationScheme, n_servers: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "degree {:.2} over {} servers ({} replicas / {} videos)",
        scheme.degree(),
        n_servers,
        scheme.total(),
        scheme.len()
    );
    for (row, chunk) in scheme.replicas().chunks(10).enumerate() {
        let start = row * 10 + 1;
        let end = start + chunk.len() - 1;
        let counts: Vec<String> = chunk.iter().map(|r| r.to_string()).collect();
        let _ = writeln!(out, "  ranks {start:>4}..={end:<4}: {}", counts.join(" "));
    }
    out
}

/// Renders per-server occupancy: replica slots used and expected load,
/// with a proportional bar.
pub fn layout_summary(layout: &Layout, weights: &[f64]) -> String {
    let mut out = String::new();
    let loads = match layout.loads(weights) {
        Ok(l) => l,
        Err(e) => return format!("<invalid layout/weights: {e}>"),
    };
    let max_load = loads.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    let counts = layout.replicas_per_server();
    let _ = writeln!(
        out,
        "{} videos over {} servers",
        layout.n_videos(),
        layout.n_servers()
    );
    for (j, (&count, &l)) in counts.iter().zip(&loads).enumerate() {
        let bar_len = ((l / max_load) * 30.0).round() as usize;
        let _ = writeln!(
            out,
            "  s{j:<3} {count:>4} replicas  load {l:>10.2}  {}",
            "#".repeat(bar_len)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServerId;

    #[test]
    fn scheme_summary_shape() {
        let scheme = ReplicationScheme::new(vec![3, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1]).unwrap();
        let s = scheme_summary(&scheme, 4);
        assert!(s.starts_with("degree 1.33 over 4 servers"));
        assert!(s.contains("ranks    1..=10"));
        assert!(s.contains("ranks   11..=12"));
        assert!(s.contains("3 2 2 1 1 1 1 1 1 1"));
    }

    #[test]
    fn layout_summary_shape() {
        let layout =
            Layout::new(2, vec![vec![ServerId(0), ServerId(1)], vec![ServerId(0)]]).unwrap();
        let s = layout_summary(&layout, &[4.0, 2.0]);
        assert!(s.contains("2 videos over 2 servers"));
        assert!(s.contains("s0      2 replicas"));
        // s0 carries 6.0 (the max) => 30 hashes; s1 carries 4.0 => 20.
        assert!(s.contains(&"#".repeat(30)));
        assert!(s.contains(&"#".repeat(20)));
    }

    #[test]
    fn layout_summary_reports_bad_weights() {
        let layout = Layout::new(1, vec![vec![ServerId(0)]]).unwrap();
        let s = layout_summary(&layout, &[1.0, 2.0]);
        assert!(s.starts_with("<invalid"));
    }
}
