//! Replication schemes `r = (r_1, …, r_M)` and replica communication
//! weights.
//!
//! "The communication weight of each replica of video v_i is defined as
//! w_i = p_i λ T / r_i. By the use of a static round robin scheduling
//! policy, the number of requests for video v_i to be serviced by each
//! replica of v_i during the peak period is w_i" (paper, Sec. 3.2).
//!
//! The replication step (Eq. 8) minimizes `max_i w_i` subject to
//! `Σ r_i = N·C` and constraint (7); because λT is a common positive factor
//! this is equivalent to minimizing `max_i p_i / r_i`, so weights here are
//! parameterized by an arbitrary `demand` factor (`λT`, or `1.0` for pure
//! granularity comparisons).

use crate::error::ModelError;
use crate::ids::VideoId;
use crate::popularity::Popularity;
use serde::{Deserialize, Serialize};

/// Number of replicas per video.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationScheme {
    replicas: Vec<u32>,
}

impl ReplicationScheme {
    /// A scheme from explicit per-video replica counts.
    pub fn new(replicas: Vec<u32>) -> Result<Self, ModelError> {
        if replicas.is_empty() {
            return Err(ModelError::Empty);
        }
        Ok(ReplicationScheme { replicas })
    }

    /// One replica per video — the non-replicated baseline of Fig. 4
    /// ("non-replication").
    pub fn single(m: usize) -> Result<Self, ModelError> {
        Self::new(vec![1; m])
    }

    /// Number of videos `M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Always false: construction rejects empty schemes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Per-video replica counts, indexed by [`VideoId`].
    #[inline]
    pub fn replicas(&self) -> &[u32] {
        &self.replicas
    }

    /// Replica count of one video.
    #[inline]
    pub fn count(&self, id: VideoId) -> u32 {
        self.replicas[id.index()]
    }

    /// Adds one replica of `id` (the Adams iteration step).
    #[inline]
    pub fn duplicate(&mut self, id: VideoId) {
        self.replicas[id.index()] += 1;
    }

    /// Total number of replicas `Σ r_i`.
    pub fn total(&self) -> u64 {
        self.replicas.iter().map(|&r| r as u64).sum()
    }

    /// The replication degree `Σ r_i / M` — the x-axis of Fig. 4.
    pub fn degree(&self) -> f64 {
        self.total() as f64 / self.replicas.len() as f64
    }

    /// Validates constraint (7): `1 ≤ r_i ≤ N` for every video.
    pub fn validate(&self, n_servers: usize) -> Result<(), ModelError> {
        for (i, &r) in self.replicas.iter().enumerate() {
            if r == 0 || r as usize > n_servers {
                return Err(ModelError::ReplicaCountOutOfRange {
                    video: VideoId(i as u32),
                    count: r,
                    servers: n_servers,
                });
            }
        }
        Ok(())
    }

    /// Per-replica communication weights `w_i = p_i · demand / r_i`.
    ///
    /// `demand` is `λT` (expected requests in the peak period) when weights
    /// are loads, or `1.0` when only relative granularity matters.
    pub fn weights(&self, pop: &Popularity, demand: f64) -> Result<Vec<f64>, ModelError> {
        if pop.len() != self.replicas.len() {
            return Err(ModelError::LengthMismatch {
                expected: self.replicas.len(),
                actual: pop.len(),
            });
        }
        Ok(self
            .replicas
            .iter()
            .zip(pop.p())
            .map(|(&r, &p)| p * demand / r as f64)
            .collect())
    }

    /// `max_i w_i` — the replication objective of Eq. (8).
    pub fn max_weight(&self, pop: &Popularity, demand: f64) -> Result<f64, ModelError> {
        Ok(self
            .weights(pop, demand)?
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// `max_i w_i − min_i w_i` — the Theorem 4.2 bound on the load-imbalance
    /// degree achieved by smallest-load-first placement.
    pub fn weight_spread(&self, pop: &Popularity, demand: f64) -> Result<f64, ModelError> {
        let w = self.weights(pop, demand)?;
        let max = w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = w.iter().copied().fold(f64::INFINITY, f64::min);
        Ok(max - min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop3() -> Popularity {
        Popularity::from_weights(&[3.0, 2.0, 1.0]).unwrap()
    }

    #[test]
    fn totals_and_degree() {
        let s = ReplicationScheme::new(vec![3, 2, 1]).unwrap();
        assert_eq!(s.total(), 6);
        assert!((s.degree() - 2.0).abs() < 1e-12);
        assert_eq!(s.count(VideoId(0)), 3);
    }

    #[test]
    fn single_baseline() {
        let s = ReplicationScheme::single(4).unwrap();
        assert_eq!(s.replicas(), &[1, 1, 1, 1]);
        assert!((s.degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_constraint_7() {
        let s = ReplicationScheme::new(vec![1, 3, 2]).unwrap();
        assert!(s.validate(3).is_ok());
        assert!(matches!(
            s.validate(2),
            Err(ModelError::ReplicaCountOutOfRange {
                video: VideoId(1),
                count: 3,
                ..
            })
        ));
        let z = ReplicationScheme::new(vec![1, 0]).unwrap();
        assert!(matches!(
            z.validate(3),
            Err(ModelError::ReplicaCountOutOfRange { count: 0, .. })
        ));
    }

    #[test]
    fn weights_divide_by_replicas() {
        let s = ReplicationScheme::new(vec![2, 1, 1]).unwrap();
        let w = s.weights(&pop3(), 6.0).unwrap();
        // p = [1/2, 1/3, 1/6]; demand 6 => base loads [3, 2, 1].
        assert!((w[0] - 1.5).abs() < 1e-12);
        assert!((w[1] - 2.0).abs() < 1e-12);
        assert!((w[2] - 1.0).abs() < 1e-12);
        assert!((s.max_weight(&pop3(), 6.0).unwrap() - 2.0).abs() < 1e-12);
        assert!((s.weight_spread(&pop3(), 6.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_increments() {
        let mut s = ReplicationScheme::single(2).unwrap();
        s.duplicate(VideoId(0));
        assert_eq!(s.replicas(), &[2, 1]);
    }

    #[test]
    fn weights_length_mismatch() {
        let s = ReplicationScheme::single(2).unwrap();
        assert!(matches!(
            s.weights(&pop3(), 1.0),
            Err(ModelError::LengthMismatch {
                expected: 2,
                actual: 3
            })
        ));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(ReplicationScheme::new(vec![]), Err(ModelError::Empty));
    }
}
