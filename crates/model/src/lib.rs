//! Domain model for the video replication and placement problem studied in
//! *Optimal Video Replication and Placement on a Cluster of Video-on-Demand
//! Servers* (Zhou & Xu, ICPP 2002).
//!
//! The paper considers a cluster of `N` homogeneous back-end servers serving
//! `M` distinct videos of equal duration. Each server has a storage capacity
//! and an outgoing network bandwidth; each video is encoded at a constant bit
//! rate and may be replicated wholly onto several servers. This crate holds
//! the vocabulary every other crate speaks:
//!
//! * [`ids`] — `VideoId` / `ServerId` newtypes;
//! * [`bitrate`] — constant encoding bit rates and the storage they imply;
//! * [`video`] — videos and catalogs;
//! * [`server`] — server and cluster specifications (constraint capacities);
//! * [`popularity`] — Zipf-like relative popularity distributions;
//! * [`replication`] — replication schemes `r = (r_1 … r_M)` and the
//!   *communication weight* `w_i = p_i λT / r_i` of each replica;
//! * [`redundancy`] — per-video redundancy schemes: full replication or
//!   Reed-Solomon `(k, m)` erasure-coded stripes;
//! * [`layout`] — concrete placements of replicas onto servers, with
//!   validation of the paper's constraints (4)–(7);
//! * [`load`] — the load-imbalance degree `L`, in both of the paper's
//!   definitions (Eq. 2 and Eq. 3);
//! * [`objective`] — the combinatorial objective of Eq. (1).
//!
//! Everything here is deterministic and allocation-conscious; the stochastic
//! machinery (samplers, traces) lives in `vod-workload`, algorithms in
//! `vod-replication` / `vod-placement` / `vod-anneal`, and the discrete-event
//! simulator in `vod-sim`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitrate;
pub mod error;
pub mod ids;
pub mod layout;
pub mod load;
pub mod objective;
pub mod popularity;
pub mod redundancy;
pub mod replication;
pub mod server;
pub mod summary;
pub mod video;

pub use bitrate::BitRate;
pub use error::ModelError;
pub use ids::{ServerId, VideoId};
pub use layout::Layout;
pub use load::{imbalance, ImbalanceMetric};
pub use objective::ObjectiveWeights;
pub use popularity::Popularity;
pub use redundancy::{RedundancyMap, RedundancyScheme};
pub use replication::ReplicationScheme;
pub use server::{ClusterSpec, ServerSpec};
pub use video::{Catalog, Video};
