//! Per-video redundancy schemes: full replication vs erasure coding.
//!
//! The paper prices every extra nine of availability at a full copy: a
//! video's redundancy *is* its replica count, and the Eq. (4) storage
//! budget charges `r_i · size_i` bytes. A Reed-Solomon `(k, m)` code
//! stores the same video as `k + m` fragments of `⌈size_i / k⌉` bytes
//! each (k data + m parity), any `k` of which reconstruct the video —
//! so it survives `m` server losses at a storage cost of only
//! `(k + m) / k` instead of `m + 1`. The price is paid elsewhere:
//! serving needs `k` live fragment holders (each contributing a
//! `bitrate / k` bandwidth share, so one lost holder means a *degraded
//! read* with higher fan-in rather than stream death), and repairing a
//! lost fragment reads `k` surviving fragments — the k× repair-read
//! amplification this module's schemes let the simulator quantify.

use crate::error::ModelError;
use crate::ids::VideoId;
use serde::{Deserialize, Serialize};

/// How one video's bytes are made redundant across servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RedundancyScheme {
    /// `r` full copies on `r` distinct servers — the paper's model.
    Replicated {
        /// Replica count `r_i` (constraint (7): `1 ≤ r ≤ N`).
        r: u32,
    },
    /// A systematic Reed-Solomon stripe: `k` data + `m` parity
    /// fragments of `⌈size / k⌉` bytes on `k + m` distinct servers.
    /// Any `k` fragments serve or rebuild the video; losing more than
    /// `m` makes it unavailable.
    Coded {
        /// Data fragments required to serve (`k ≥ 1`).
        k: u32,
        /// Parity fragments, i.e. tolerated losses (`m ≥ 1`).
        m: u32,
    },
}

impl RedundancyScheme {
    /// Servers this scheme occupies: `r`, or `k + m`.
    #[inline]
    pub fn holders(&self) -> u32 {
        match *self {
            RedundancyScheme::Replicated { r } => r,
            RedundancyScheme::Coded { k, m } => k + m,
        }
    }

    /// Live holders needed to serve: 1 full copy, or `k` fragments.
    #[inline]
    pub fn min_live(&self) -> u32 {
        match *self {
            RedundancyScheme::Replicated { .. } => 1,
            RedundancyScheme::Coded { k, .. } => k,
        }
    }

    /// Whether this is a coded stripe.
    #[inline]
    pub fn is_coded(&self) -> bool {
        matches!(self, RedundancyScheme::Coded { .. })
    }

    /// Bytes one holder stores: the full video, or one fragment
    /// (`⌈bytes / k⌉` — fragments pad the last stripe).
    #[inline]
    pub fn stored_bytes(&self, video_bytes: u64) -> u64 {
        match *self {
            RedundancyScheme::Replicated { .. } => video_bytes,
            RedundancyScheme::Coded { k, .. } => video_bytes.div_ceil(k as u64),
        }
    }

    /// Outgoing kbps one serving holder contributes: the full bit rate,
    /// or a `⌈kbps / k⌉` fragment share.
    #[inline]
    pub fn share_kbps(&self, kbps: u64) -> u64 {
        match *self {
            RedundancyScheme::Replicated { .. } => kbps,
            RedundancyScheme::Coded { k, .. } => kbps.div_ceil(k as u64),
        }
    }

    /// Total bytes stored across all holders, relative to one copy:
    /// `r`, or `(k + m) / k`.
    pub fn storage_factor(&self) -> f64 {
        match *self {
            RedundancyScheme::Replicated { r } => r as f64,
            RedundancyScheme::Coded { k, m } => (k + m) as f64 / k as f64,
        }
    }

    /// Degenerate-parameter validation against a cluster of `n_servers`:
    /// `1 ≤ holders ≤ N`, and for coded stripes `k ≥ 1` and `m ≥ 1`
    /// (`m = 0` stores fragments with no redundancy at all — strictly
    /// worse than a single replica, so it is rejected).
    pub fn validate(&self, n_servers: usize) -> Result<(), ModelError> {
        match *self {
            RedundancyScheme::Replicated { r } => {
                if r == 0 || r as usize > n_servers {
                    return Err(ModelError::InvalidParameter {
                        name: "redundancy r",
                        value: r as f64,
                    });
                }
            }
            RedundancyScheme::Coded { k, m } => {
                if k == 0 {
                    return Err(ModelError::InvalidParameter {
                        name: "coded k",
                        value: 0.0,
                    });
                }
                if m == 0 {
                    return Err(ModelError::InvalidParameter {
                        name: "coded m",
                        value: 0.0,
                    });
                }
                if (k + m) as usize > n_servers {
                    return Err(ModelError::InvalidParameter {
                        name: "coded k+m exceeds servers",
                        value: (k + m) as f64,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Per-video redundancy schemes, indexed by [`VideoId`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedundancyMap {
    schemes: Vec<RedundancyScheme>,
}

impl RedundancyMap {
    /// A map from explicit per-video schemes.
    pub fn new(schemes: Vec<RedundancyScheme>) -> Result<Self, ModelError> {
        if schemes.is_empty() {
            return Err(ModelError::Empty);
        }
        Ok(RedundancyMap { schemes })
    }

    /// Every video under the same scheme.
    pub fn uniform(n_videos: usize, scheme: RedundancyScheme) -> Result<Self, ModelError> {
        Self::new(vec![scheme; n_videos])
    }

    /// Number of videos `M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Always false: construction rejects empty maps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }

    /// The scheme of one video.
    #[inline]
    pub fn get(&self, v: VideoId) -> RedundancyScheme {
        self.schemes[v.index()]
    }

    /// All schemes, indexed by video.
    #[inline]
    pub fn schemes(&self) -> &[RedundancyScheme] {
        &self.schemes
    }

    /// Whether any video uses a coded stripe. All-`Replicated` maps are
    /// semantically identical to no map at all, and the simulator keeps
    /// them on the exact replica code path (byte-identical reports).
    pub fn any_coded(&self) -> bool {
        self.schemes.iter().any(|s| s.is_coded())
    }

    /// Validates every scheme against the cluster size.
    pub fn validate(&self, n_servers: usize) -> Result<(), ModelError> {
        for s in &self.schemes {
            s.validate(n_servers)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C32: RedundancyScheme = RedundancyScheme::Coded { k: 3, m: 2 };

    #[test]
    fn holder_and_share_arithmetic() {
        let r = RedundancyScheme::Replicated { r: 3 };
        assert_eq!((r.holders(), r.min_live()), (3, 1));
        assert_eq!(r.stored_bytes(2_700_000_000), 2_700_000_000);
        assert_eq!(r.share_kbps(4_000), 4_000);
        assert!((r.storage_factor() - 3.0).abs() < 1e-12);

        assert_eq!((C32.holders(), C32.min_live()), (5, 3));
        // Fragments round up: 10 bytes over k=3 -> 4-byte fragments.
        assert_eq!(C32.stored_bytes(10), 4);
        assert_eq!(C32.share_kbps(4_000), 1_334);
        assert!((C32.storage_factor() - 5.0 / 3.0).abs() < 1e-12);
        assert!(C32.is_coded() && !r.is_coded());
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        assert!(RedundancyScheme::Replicated { r: 0 }.validate(8).is_err());
        assert!(RedundancyScheme::Replicated { r: 9 }.validate(8).is_err());
        assert!(RedundancyScheme::Coded { k: 0, m: 1 }.validate(8).is_err());
        assert!(RedundancyScheme::Coded { k: 4, m: 0 }.validate(8).is_err());
        assert!(RedundancyScheme::Coded { k: 6, m: 3 }.validate(8).is_err());
        assert!(C32.validate(5).is_ok());
        assert!(C32.validate(4).is_err());
    }

    #[test]
    fn map_accessors_and_any_coded() {
        let all_rep = RedundancyMap::uniform(3, RedundancyScheme::Replicated { r: 2 }).unwrap();
        assert!(!all_rep.any_coded());
        assert_eq!(all_rep.len(), 3);
        let mixed = RedundancyMap::new(vec![RedundancyScheme::Replicated { r: 1 }, C32]).unwrap();
        assert!(mixed.any_coded());
        assert_eq!(mixed.get(VideoId(1)), C32);
        assert!(mixed.validate(5).is_ok());
        assert!(mixed.validate(4).is_err());
    }

    #[test]
    fn empty_map_rejected() {
        assert_eq!(RedundancyMap::new(vec![]), Err(ModelError::Empty));
    }

    #[test]
    fn serde_roundtrip() {
        let map = RedundancyMap::new(vec![RedundancyScheme::Replicated { r: 2 }, C32]).unwrap();
        let json = serde_json::to_string(&map).unwrap();
        let back: RedundancyMap = serde_json::from_str(&json).unwrap();
        assert_eq!(map, back);
    }
}
