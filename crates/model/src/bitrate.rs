//! Constant encoding bit rates (CBR) and the storage/bandwidth they imply.
//!
//! "A defining characteristic with video streams is that a video can be
//! encoded in different bit rates for different qualities at the cost of
//! different storage and streaming bandwidth requirements" (paper, Sec. 1).
//! A replica of a video encoded at bit rate `b` and duration `T` occupies
//! `b · T` of storage and each concurrent stream consumes `b` of outgoing
//! network bandwidth.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A constant encoding bit rate, stored exactly in kilobits per second.
///
/// Kilobit-per-second granularity keeps every storage/bandwidth computation
/// in exact integer arithmetic (no float drift in constraint checks) while
/// comfortably covering the scalable-rate ladder of the paper's Section 4.3.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BitRate(u32);

impl BitRate {
    /// MPEG-1 quality, 1.5 Mbps — the paper's "lowest possible bit rate"
    /// used for the simulated-annealing initial solution.
    pub const MPEG1: BitRate = BitRate::from_kbps(1_500);
    /// MPEG-2 main quality, 4 Mbps — the fixed rate of the paper's
    /// evaluation ("the typical one for MPEG II movies").
    pub const MPEG2: BitRate = BitRate::from_kbps(4_000);
    /// High-quality MPEG-2, 6 Mbps.
    pub const MPEG2_HIGH: BitRate = BitRate::from_kbps(6_000);
    /// Studio/DVD-authoring quality, 8 Mbps.
    pub const STUDIO: BitRate = BitRate::from_kbps(8_000);

    /// The scalable-rate ladder used by the simulated-annealing experiments:
    /// "the encoding bit rate is a discrete variable and its set is given".
    pub const LADDER: [BitRate; 5] = [
        BitRate::from_kbps(1_500),
        BitRate::from_kbps(3_000),
        BitRate::from_kbps(4_000),
        BitRate::from_kbps(6_000),
        BitRate::from_kbps(8_000),
    ];

    /// Creates a bit rate from kilobits per second.
    #[inline]
    pub const fn from_kbps(kbps: u32) -> Self {
        BitRate(kbps)
    }

    /// Creates a bit rate from megabits per second (whole megabits).
    #[inline]
    pub const fn from_mbps(mbps: u32) -> Self {
        BitRate(mbps * 1_000)
    }

    /// The rate in kilobits per second.
    #[inline]
    pub const fn kbps(self) -> u32 {
        self.0
    }

    /// The rate in bits per second.
    #[inline]
    pub const fn bps(self) -> u64 {
        self.0 as u64 * 1_000
    }

    /// The rate in megabits per second, as a float (for reporting and for
    /// the objective function, whose first term averages bit rates).
    #[inline]
    pub fn mbps(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Storage occupied by a video of `duration_s` seconds encoded at this
    /// rate, in bytes: `b · T / 8`.
    ///
    /// ```
    /// use vod_model::BitRate;
    /// // The paper: a 90-minute MPEG-2 movie at 4 Mbps needs 2.7 GB.
    /// let bytes = BitRate::MPEG2.storage_bytes(90 * 60);
    /// assert_eq!(bytes, 2_700_000_000);
    /// ```
    #[inline]
    pub const fn storage_bytes(self, duration_s: u64) -> u64 {
        // kbps * 1000 bits/s * s / 8 bits per byte = kbps * 125 * s
        self.0 as u64 * 125 * duration_s
    }

    /// Whether this rate is a member of the given discrete ladder.
    pub fn in_ladder(self, ladder: &[BitRate]) -> bool {
        ladder.contains(&self)
    }

    /// The next rate up in `ladder`, if any. `ladder` must be sorted
    /// ascending.
    pub fn step_up(self, ladder: &[BitRate]) -> Option<BitRate> {
        ladder.iter().copied().find(|&r| r > self)
    }

    /// The next rate down in `ladder`, if any. `ladder` must be sorted
    /// ascending.
    pub fn step_down(self, ladder: &[BitRate]) -> Option<BitRate> {
        ladder.iter().rev().copied().find(|&r| r < self)
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000) {
            write!(f, "{} Mbps", self.0 / 1_000)
        } else {
            write!(f, "{:.1} Mbps", self.mbps())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_storage_example() {
        // 90-minute MPEG-2 at 4 Mbps -> 2.7 GB (paper, Section 5).
        assert_eq!(BitRate::MPEG2.storage_bytes(5_400), 2_700_000_000);
    }

    #[test]
    fn intro_storage_example() {
        // Paper intro: "a typical 90-minute MPEG-2 video encoded in a
        // constant bit rate of 4 Mbs requires as much as 2.7 GB storage".
        let gb = BitRate::from_mbps(4).storage_bytes(90 * 60) as f64 / 1e9;
        assert!((gb - 2.7).abs() < 1e-9);
    }

    #[test]
    fn unit_conversions() {
        let r = BitRate::from_kbps(1_500);
        assert_eq!(r.kbps(), 1_500);
        assert_eq!(r.bps(), 1_500_000);
        assert!((r.mbps() - 1.5).abs() < 1e-12);
        assert_eq!(BitRate::from_mbps(4), BitRate::from_kbps(4_000));
    }

    #[test]
    fn ladder_is_sorted_and_contains_extremes() {
        let l = BitRate::LADDER;
        assert!(l.windows(2).all(|w| w[0] < w[1]));
        assert!(BitRate::MPEG1.in_ladder(&l));
        assert!(BitRate::STUDIO.in_ladder(&l));
        assert!(!BitRate::from_kbps(2_000).in_ladder(&l));
    }

    #[test]
    fn ladder_stepping() {
        let l = BitRate::LADDER;
        assert_eq!(BitRate::MPEG1.step_up(&l), Some(BitRate::from_kbps(3_000)));
        assert_eq!(BitRate::MPEG1.step_down(&l), None);
        assert_eq!(BitRate::STUDIO.step_up(&l), None);
        assert_eq!(
            BitRate::STUDIO.step_down(&l),
            Some(BitRate::from_kbps(6_000))
        );
        // Stepping from a rate not in the ladder still lands on ladder rungs.
        let odd = BitRate::from_kbps(3_500);
        assert_eq!(odd.step_up(&l), Some(BitRate::from_kbps(4_000)));
        assert_eq!(odd.step_down(&l), Some(BitRate::from_kbps(3_000)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(BitRate::MPEG2.to_string(), "4 Mbps");
        assert_eq!(BitRate::from_kbps(1_500).to_string(), "1.5 Mbps");
    }

    #[test]
    fn ordering_matches_rate() {
        assert!(BitRate::MPEG1 < BitRate::MPEG2);
        assert!(BitRate::STUDIO > BitRate::MPEG2_HIGH);
    }
}
