//! Concrete placements of replicas onto servers.
//!
//! A [`Layout`] answers "the i-th replica of video v is on server x(v,i)"
//! (the paper's `x_i(v)` mapping) and enforces the placement-side
//! constraints: storage (4), distinct servers per video (6), and — when
//! asked — the expected-bandwidth constraint (5).

use crate::error::ModelError;
use crate::ids::{ServerId, VideoId};
use crate::redundancy::{RedundancyMap, RedundancyScheme};
use crate::server::ClusterSpec;
use crate::video::Catalog;
use serde::{Deserialize, Serialize};

/// Placement of every replica of every video onto cluster servers.
///
/// `assignments[v]` lists the servers holding a replica of video `v`; the
/// order of that list is the static round-robin dispatch order the
/// simulator follows. Under a coded [`RedundancyMap`] entry the list is
/// the video's *fragment holders* in fragment order (positions `0..k`
/// hold data fragments, the rest parity), and its length must be `k+m`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    n_servers: usize,
    assignments: Vec<Vec<ServerId>>,
    /// Per-video redundancy schemes. `None` (the wire default — old
    /// serialized layouts carry no field) means all-replicated with the
    /// counts implied by the assignment lengths.
    #[serde(default)]
    redundancy: Option<RedundancyMap>,
}

impl Layout {
    /// A layout from explicit per-video server lists.
    pub fn new(n_servers: usize, assignments: Vec<Vec<ServerId>>) -> Result<Self, ModelError> {
        if assignments.is_empty() || n_servers == 0 {
            return Err(ModelError::Empty);
        }
        let layout = Layout {
            n_servers,
            assignments,
            redundancy: None,
        };
        layout.validate_structure()?;
        Ok(layout)
    }

    /// A layout with an explicit per-video redundancy map. Coded videos
    /// must list exactly `k + m` holders; the distinct-server constraint
    /// (6) doubles as fragment/server anti-affinity.
    pub fn with_redundancy(
        n_servers: usize,
        assignments: Vec<Vec<ServerId>>,
        redundancy: RedundancyMap,
    ) -> Result<Self, ModelError> {
        let mut layout = Layout::new(n_servers, assignments)?;
        if redundancy.len() != layout.assignments.len() {
            return Err(ModelError::LengthMismatch {
                expected: layout.assignments.len(),
                actual: redundancy.len(),
            });
        }
        redundancy.validate(n_servers)?;
        for (v, servers) in layout.assignments.iter().enumerate() {
            let scheme = redundancy.get(VideoId(v as u32));
            if scheme.holders() as usize != servers.len() {
                return Err(ModelError::LengthMismatch {
                    expected: scheme.holders() as usize,
                    actual: servers.len(),
                });
            }
        }
        layout.redundancy = Some(redundancy);
        Ok(layout)
    }

    /// Structural constraints independent of capacities: every video has
    /// `1 ≤ r_i ≤ N` replicas (7), on known (bounds-checked) and pairwise
    /// distinct servers (6).
    fn validate_structure(&self) -> Result<(), ModelError> {
        for (v, servers) in self.assignments.iter().enumerate() {
            let video = VideoId(v as u32);
            if servers.is_empty() || servers.len() > self.n_servers {
                return Err(ModelError::ReplicaCountOutOfRange {
                    video,
                    count: servers.len() as u32,
                    servers: self.n_servers,
                });
            }
            for (i, &s) in servers.iter().enumerate() {
                if s.index() >= self.n_servers {
                    return Err(ModelError::UnknownServer(s));
                }
                if servers[..i].contains(&s) {
                    return Err(ModelError::DuplicateServer { video, server: s });
                }
            }
        }
        Ok(())
    }

    /// Number of servers `N`.
    #[inline]
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// Number of videos `M`.
    #[inline]
    pub fn n_videos(&self) -> usize {
        self.assignments.len()
    }

    /// Servers holding video `v`, in round-robin dispatch order.
    #[inline]
    pub fn replicas_of(&self, v: VideoId) -> &[ServerId] {
        &self.assignments[v.index()]
    }

    /// All assignments, indexed by video.
    #[inline]
    pub fn assignments(&self) -> &[Vec<ServerId>] {
        &self.assignments
    }

    /// Replica count of video `v` in this layout.
    #[inline]
    pub fn replica_count(&self, v: VideoId) -> u32 {
        self.assignments[v.index()].len() as u32
    }

    /// The per-video redundancy map, when one was attached.
    #[inline]
    pub fn redundancy(&self) -> Option<&RedundancyMap> {
        self.redundancy.as_ref()
    }

    /// The redundancy scheme of one video (`Replicated` with the
    /// assignment length when no map is attached).
    #[inline]
    pub fn scheme_of(&self, v: VideoId) -> RedundancyScheme {
        match &self.redundancy {
            Some(map) => map.get(v),
            None => RedundancyScheme::Replicated {
                r: self.assignments[v.index()].len() as u32,
            },
        }
    }

    /// Whether any video is erasure-coded (false for all-replicated
    /// maps, which are equivalent to no map at all).
    pub fn any_coded(&self) -> bool {
        self.redundancy.as_ref().is_some_and(|m| m.any_coded())
    }

    /// Inverts the mapping: which videos does each server hold?
    pub fn server_contents(&self) -> Vec<Vec<VideoId>> {
        let mut contents = vec![Vec::new(); self.n_servers];
        for (v, servers) in self.assignments.iter().enumerate() {
            for &s in servers {
                contents[s.index()].push(VideoId(v as u32));
            }
        }
        contents
    }

    /// Replicas stored per server (for fixed-rate storage accounting).
    pub fn replicas_per_server(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_servers];
        for servers in &self.assignments {
            for &s in servers {
                counts[s.index()] += 1;
            }
        }
        counts
    }

    /// Expected communication load per server: `l_j = Σ_{replicas on j} w_i`
    /// for the given per-replica weights (one weight per video, shared by
    /// all its replicas — they split the video's demand evenly under static
    /// round robin).
    pub fn loads(&self, weights: &[f64]) -> Result<Vec<f64>, ModelError> {
        if weights.len() != self.assignments.len() {
            return Err(ModelError::LengthMismatch {
                expected: self.assignments.len(),
                actual: weights.len(),
            });
        }
        let mut loads = vec![0.0; self.n_servers];
        for (v, servers) in self.assignments.iter().enumerate() {
            for &s in servers {
                loads[s.index()] += weights[v];
            }
        }
        Ok(loads)
    }

    /// Validates the storage constraint (4) against real byte capacities.
    pub fn validate_storage(
        &self,
        catalog: &Catalog,
        cluster: &ClusterSpec,
    ) -> Result<(), ModelError> {
        if catalog.len() != self.assignments.len() {
            return Err(ModelError::LengthMismatch {
                expected: self.assignments.len(),
                actual: catalog.len(),
            });
        }
        if cluster.len() != self.n_servers {
            return Err(ModelError::LengthMismatch {
                expected: self.n_servers,
                actual: cluster.len(),
            });
        }
        let mut used = vec![0u64; self.n_servers];
        for (v, servers) in self.assignments.iter().enumerate() {
            // A coded holder stores one ⌈size/k⌉ fragment, not a copy.
            let bytes = self
                .scheme_of(VideoId(v as u32))
                .stored_bytes(catalog.videos()[v].storage_bytes());
            for &s in servers {
                used[s.index()] += bytes;
            }
        }
        for (j, (&u, spec)) in used.iter().zip(cluster.servers()).enumerate() {
            if u > spec.storage_bytes {
                return Err(ModelError::StorageExceeded {
                    server: ServerId(j as u32),
                    required: u,
                    capacity: spec.storage_bytes,
                });
            }
        }
        Ok(())
    }

    /// Validates the expected-bandwidth constraint (5): per-server expected
    /// stream load (weights in *streams*, i.e. `w_i · b_i` in kbps) must not
    /// exceed outgoing bandwidth. `expected_kbps[v]` is the expected
    /// concurrent outgoing kbps one replica of video `v` contributes.
    pub fn validate_bandwidth(
        &self,
        expected_kbps: &[f64],
        cluster: &ClusterSpec,
    ) -> Result<(), ModelError> {
        let loads = self.loads(expected_kbps)?;
        for (j, (&l, spec)) in loads.iter().zip(cluster.servers()).enumerate() {
            if l > spec.bandwidth_kbps as f64 + 1e-9 {
                return Err(ModelError::BandwidthExceeded {
                    server: ServerId(j as u32),
                    required: l,
                    capacity: spec.bandwidth_kbps as f64,
                });
            }
        }
        Ok(())
    }

    /// Derives the replication scheme implied by this layout.
    pub fn scheme(&self) -> crate::replication::ReplicationScheme {
        crate::replication::ReplicationScheme::new(
            self.assignments.iter().map(|s| s.len() as u32).collect(),
        )
        .expect("layout is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrate::BitRate;
    use crate::server::ServerSpec;

    fn sid(i: u32) -> ServerId {
        ServerId(i)
    }

    fn small_layout() -> Layout {
        // 3 videos on 3 servers: v0 on {s0,s1}, v1 on {s2}, v2 on {s0}.
        Layout::new(3, vec![vec![sid(0), sid(1)], vec![sid(2)], vec![sid(0)]]).unwrap()
    }

    #[test]
    fn structure_accepted() {
        let l = small_layout();
        assert_eq!(l.n_servers(), 3);
        assert_eq!(l.n_videos(), 3);
        assert_eq!(l.replica_count(VideoId(0)), 2);
        assert_eq!(l.replicas_of(VideoId(1)), &[sid(2)]);
        assert_eq!(l.replicas_per_server(), vec![2, 1, 1]);
    }

    #[test]
    fn duplicate_server_rejected() {
        let err = Layout::new(2, vec![vec![sid(0), sid(0)]]).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateServer { .. }));
    }

    #[test]
    fn unknown_server_rejected() {
        let err = Layout::new(2, vec![vec![sid(5)]]).unwrap_err();
        assert_eq!(err, ModelError::UnknownServer(sid(5)));
    }

    #[test]
    fn empty_replica_list_rejected() {
        let err = Layout::new(2, vec![vec![]]).unwrap_err();
        assert!(matches!(
            err,
            ModelError::ReplicaCountOutOfRange { count: 0, .. }
        ));
    }

    #[test]
    fn too_many_replicas_rejected() {
        let err = Layout::new(1, vec![vec![sid(0), sid(1)]]).unwrap_err();
        // r=2 > N=1 caught before the unknown-server check.
        assert!(matches!(
            err,
            ModelError::ReplicaCountOutOfRange { count: 2, .. }
        ));
    }

    #[test]
    fn loads_sum_weights() {
        let l = small_layout();
        let loads = l.loads(&[4.0, 3.0, 2.0]).unwrap();
        assert_eq!(loads, vec![6.0, 4.0, 3.0]);
    }

    #[test]
    fn server_contents_inverts() {
        let l = small_layout();
        let contents = l.server_contents();
        assert_eq!(contents[0], vec![VideoId(0), VideoId(2)]);
        assert_eq!(contents[1], vec![VideoId(0)]);
        assert_eq!(contents[2], vec![VideoId(1)]);
    }

    #[test]
    fn scheme_derived() {
        let l = small_layout();
        assert_eq!(l.scheme().replicas(), &[2, 1, 1]);
    }

    #[test]
    fn storage_validation() {
        let l = small_layout();
        let catalog = Catalog::fixed_rate(3, BitRate::from_kbps(8), 1_000).unwrap();
        // Each replica = 8 kbps * 125 * 1000 s = 1_000_000 bytes.
        let ok = ClusterSpec::homogeneous(
            3,
            ServerSpec {
                storage_bytes: 2_000_000,
                bandwidth_kbps: 1,
            },
        )
        .unwrap();
        assert!(l.validate_storage(&catalog, &ok).is_ok());
        let tight = ClusterSpec::homogeneous(
            3,
            ServerSpec {
                storage_bytes: 1_999_999,
                bandwidth_kbps: 1,
            },
        )
        .unwrap();
        // Server 0 holds two replicas = 2 MB > 1_999_999 B.
        assert!(matches!(
            l.validate_storage(&catalog, &tight),
            Err(ModelError::StorageExceeded {
                server: ServerId(0),
                ..
            })
        ));
    }

    #[test]
    fn bandwidth_validation() {
        let l = small_layout();
        let cluster = ClusterSpec::homogeneous(
            3,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 10,
            },
        )
        .unwrap();
        assert!(l.validate_bandwidth(&[5.0, 4.0, 5.0], &cluster).is_ok());
        assert!(matches!(
            l.validate_bandwidth(&[6.0, 4.0, 5.0], &cluster),
            Err(ModelError::BandwidthExceeded {
                server: ServerId(0),
                ..
            })
        ));
    }

    #[test]
    fn coded_layout_counts_and_storage() {
        use crate::redundancy::{RedundancyMap, RedundancyScheme};
        // v0 coded (k=2, m=1) on 3 servers, v1 replicated once.
        let map = RedundancyMap::new(vec![
            RedundancyScheme::Coded { k: 2, m: 1 },
            RedundancyScheme::Replicated { r: 1 },
        ])
        .unwrap();
        let l = Layout::with_redundancy(
            3,
            vec![vec![sid(0), sid(1), sid(2)], vec![sid(0)]],
            map.clone(),
        )
        .unwrap();
        assert!(l.any_coded());
        assert_eq!(
            l.scheme_of(VideoId(0)),
            RedundancyScheme::Coded { k: 2, m: 1 }
        );
        assert_eq!(l.redundancy().unwrap(), &map);

        // Holder-count mismatch: coded k+m=3 but only 2 servers listed.
        let err = Layout::with_redundancy(3, vec![vec![sid(0), sid(1)], vec![sid(0)]], map.clone())
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::LengthMismatch {
                expected: 3,
                actual: 2
            }
        ));

        // Storage charges fragments, not copies: 1_000_000-byte videos,
        // fragment = 500_000. s0 holds one fragment + one full copy.
        let catalog = Catalog::fixed_rate(2, BitRate::from_kbps(8), 1_000).unwrap();
        let tight = ClusterSpec::homogeneous(
            3,
            ServerSpec {
                storage_bytes: 1_500_000,
                bandwidth_kbps: 1,
            },
        )
        .unwrap();
        let l = Layout::with_redundancy(3, vec![vec![sid(0), sid(1), sid(2)], vec![sid(0)]], map)
            .unwrap();
        assert!(l.validate_storage(&catalog, &tight).is_ok());
        // Without the map the same shape would need 2 MB on s0.
        let plain = Layout::new(3, vec![vec![sid(0), sid(1), sid(2)], vec![sid(0)]]).unwrap();
        assert!(plain.validate_storage(&catalog, &tight).is_err());
    }

    #[test]
    fn plain_layouts_report_replicated_schemes() {
        let l = small_layout();
        assert!(!l.any_coded());
        assert!(l.redundancy().is_none());
        assert_eq!(
            l.scheme_of(VideoId(0)),
            crate::redundancy::RedundancyScheme::Replicated { r: 2 }
        );
    }

    #[test]
    fn legacy_layout_json_deserializes_without_redundancy_field() {
        let json = r#"{"n_servers":2,"assignments":[[0,1],[0]]}"#;
        let l: Layout = serde_json::from_str(json).unwrap();
        assert!(l.redundancy().is_none());
        assert_eq!(l.n_videos(), 2);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let l = small_layout();
        assert!(matches!(
            l.loads(&[1.0]),
            Err(ModelError::LengthMismatch { .. })
        ));
        let catalog = Catalog::fixed_rate(2, BitRate::MPEG2, 100).unwrap();
        let cluster = ClusterSpec::homogeneous(
            3,
            ServerSpec {
                storage_bytes: 1,
                bandwidth_kbps: 1,
            },
        )
        .unwrap();
        assert!(matches!(
            l.validate_storage(&catalog, &cluster),
            Err(ModelError::LengthMismatch { .. })
        ));
    }
}
