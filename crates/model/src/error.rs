//! Error type for constraint violations and malformed model inputs.

use crate::ids::{ServerId, VideoId};
use std::fmt;

/// Everything that can go wrong when constructing or validating model
/// objects. Each variant corresponds to one of the paper's constraints or to
/// a structural precondition of the formulation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A catalog, popularity vector or scheme was empty where `M ≥ 1` is
    /// required.
    Empty,
    /// Vectors that must be indexed by the same video set differ in length.
    LengthMismatch {
        /// Expected number of videos `M`.
        expected: usize,
        /// Actual length supplied.
        actual: usize,
    },
    /// A popularity vector had a non-finite, negative, or non-normalizable
    /// entry.
    InvalidPopularity {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Constraint (7) violated: `1 ≤ r_i ≤ N` failed for some video.
    ReplicaCountOutOfRange {
        /// The video whose replica count is out of range.
        video: VideoId,
        /// The offending replica count.
        count: u32,
        /// Number of servers `N`.
        servers: usize,
    },
    /// Constraint (6) violated: two replicas of one video share a server.
    DuplicateServer {
        /// The video with colliding replicas.
        video: VideoId,
        /// The server holding more than one of its replicas.
        server: ServerId,
    },
    /// Constraint (4) violated: a server's storage capacity is exceeded.
    StorageExceeded {
        /// The overloaded server.
        server: ServerId,
        /// Bytes the layout would place there.
        required: u64,
        /// Bytes available.
        capacity: u64,
    },
    /// Constraint (5) violated: a server's outgoing bandwidth is exceeded
    /// by the expected communication load.
    BandwidthExceeded {
        /// The overloaded server.
        server: ServerId,
        /// Expected load in streams (or kbps, per context).
        required: f64,
        /// Capacity in the same unit.
        capacity: f64,
    },
    /// A layout references a server outside the cluster.
    UnknownServer(ServerId),
    /// A layout or scheme references a video outside the catalog.
    UnknownVideo(VideoId),
    /// A parameter (θ, λ, α, β, …) is outside its meaningful domain.
    InvalidParameter {
        /// Human-readable parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The cluster cannot hold even one replica of every video
    /// (the formulation requires `r_i ≥ 1` for all videos).
    InsufficientStorage {
        /// Replica slots (or bytes) required.
        required: u64,
        /// Replica slots (or bytes) available across the cluster.
        capacity: u64,
    },
    /// An engine reached a state its own bookkeeping rules out — a bug,
    /// not a bad input. Surfaced instead of panicking in the hot path.
    Internal {
        /// Which internal precondition failed.
        context: &'static str,
    },
    /// The runtime invariant auditor caught a conservation or capacity
    /// violation mid-run (see DESIGN.md, "Invariant auditor").
    InvariantViolation {
        /// Simulated minute at which the violation was detected.
        at_min: f64,
        /// Description of the violated invariant.
        what: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Empty => write!(f, "model requires at least one video"),
            ModelError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "length mismatch: expected {expected} videos, got {actual}"
                )
            }
            ModelError::InvalidPopularity { index, value } => {
                write!(f, "invalid popularity p[{index}] = {value}")
            }
            ModelError::ReplicaCountOutOfRange {
                video,
                count,
                servers,
            } => write!(
                f,
                "constraint (7) violated: video {video} has {count} replicas, \
                 must be in 1..={servers}"
            ),
            ModelError::DuplicateServer { video, server } => write!(
                f,
                "constraint (6) violated: video {video} has multiple replicas on server {server}"
            ),
            ModelError::StorageExceeded {
                server,
                required,
                capacity,
            } => write!(
                f,
                "constraint (4) violated: server {server} needs {required} B of {capacity} B"
            ),
            ModelError::BandwidthExceeded {
                server,
                required,
                capacity,
            } => write!(
                f,
                "constraint (5) violated: server {server} expected load {required:.3} \
                 exceeds capacity {capacity:.3}"
            ),
            ModelError::UnknownServer(s) => write!(f, "unknown server {s}"),
            ModelError::UnknownVideo(v) => write!(f, "unknown video {v}"),
            ModelError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} = {value} outside valid domain")
            }
            ModelError::InsufficientStorage { required, capacity } => write!(
                f,
                "cluster storage too small: {required} replica slots needed, {capacity} available"
            ),
            ModelError::Internal { context } => {
                write!(f, "internal simulator error: {context}")
            }
            ModelError::InvariantViolation { at_min, what } => {
                write!(f, "invariant violated at t={at_min:.3} min: {what}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_constraint_numbers() {
        let e = ModelError::DuplicateServer {
            video: VideoId(2),
            server: ServerId(1),
        };
        assert!(e.to_string().contains("constraint (6)"));
        let e = ModelError::ReplicaCountOutOfRange {
            video: VideoId(0),
            count: 9,
            servers: 8,
        };
        assert!(e.to_string().contains("constraint (7)"));
        assert!(e.to_string().contains("1..=8"));
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::Empty);
        assert_eq!(e.to_string(), "model requires at least one video");
    }
}
