//! Server and cluster specifications — the capacities behind constraints
//! (4) and (5).
//!
//! "We consider a cluster of N homogeneous servers … Each server has a
//! storage capacity C and an outgoing network bandwidth B" (paper, Sec. 3.1).
//! Heterogeneous clusters are supported as an extension (per-server specs);
//! the paper's algorithms are exercised on homogeneous ones.

use crate::bitrate::BitRate;
use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Capacities of a single back-end server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Disk storage for whole-video replicas, in bytes.
    pub storage_bytes: u64,
    /// Outgoing network bandwidth, in kilobits per second.
    pub bandwidth_kbps: u64,
}

impl ServerSpec {
    /// How many replicas of a fixed-rate video fit in this server's storage
    /// — the paper's re-definition of C "in terms of the number of replicas"
    /// (Sec. 4.1).
    #[inline]
    pub fn replica_slots(&self, bitrate: BitRate, duration_s: u64) -> u64 {
        let per_replica = bitrate.storage_bytes(duration_s);
        if per_replica == 0 {
            return 0;
        }
        self.storage_bytes / per_replica
    }

    /// How many concurrent streams at `bitrate` the outgoing link supports.
    #[inline]
    pub fn stream_capacity(&self, bitrate: BitRate) -> u64 {
        if bitrate.kbps() == 0 {
            return 0;
        }
        self.bandwidth_kbps / bitrate.kbps() as u64
    }
}

/// A cluster of back-end servers behind one dispatcher.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    servers: Vec<ServerSpec>,
}

impl ClusterSpec {
    /// A homogeneous cluster of `n` identical servers (the paper's setting).
    pub fn homogeneous(n: usize, spec: ServerSpec) -> Result<Self, ModelError> {
        if n == 0 {
            return Err(ModelError::Empty);
        }
        Ok(ClusterSpec {
            servers: vec![spec; n],
        })
    }

    /// A heterogeneous cluster from explicit per-server specs (extension).
    pub fn heterogeneous(servers: Vec<ServerSpec>) -> Result<Self, ModelError> {
        if servers.is_empty() {
            return Err(ModelError::Empty);
        }
        Ok(ClusterSpec { servers })
    }

    /// The paper's evaluation cluster: 8 homogeneous servers, 1.8 Gbps
    /// outgoing each, with storage sized to hold `replica_slots` replicas of
    /// a 90-minute 4 Mbps video per server.
    pub fn paper_default(replica_slots: u64) -> Self {
        let per_replica = BitRate::MPEG2.storage_bytes(crate::video::TYPICAL_DURATION_S);
        ClusterSpec::homogeneous(
            8,
            ServerSpec {
                storage_bytes: replica_slots * per_replica,
                bandwidth_kbps: 1_800_000,
            },
        )
        .expect("n = 8 > 0")
    }

    /// Number of servers `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Always false: construction rejects empty clusters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Per-server specifications, in [`crate::ServerId`] order.
    #[inline]
    pub fn servers(&self) -> &[ServerSpec] {
        &self.servers
    }

    /// True when all servers are identical.
    pub fn is_homogeneous(&self) -> bool {
        self.servers.windows(2).all(|w| w[0] == w[1])
    }

    /// Total cluster storage in bytes.
    pub fn total_storage_bytes(&self) -> u64 {
        self.servers.iter().map(|s| s.storage_bytes).sum()
    }

    /// Total cluster outgoing bandwidth in kbps.
    pub fn total_bandwidth_kbps(&self) -> u64 {
        self.servers.iter().map(|s| s.bandwidth_kbps).sum()
    }

    /// Total replica slots across the cluster for a fixed-rate catalog —
    /// the budget `Σ r_i ≤ N·C` of the replication step.
    pub fn total_replica_slots(&self, bitrate: BitRate, duration_s: u64) -> u64 {
        self.servers
            .iter()
            .map(|s| s.replica_slots(bitrate, duration_s))
            .sum()
    }

    /// Total concurrent streams at `bitrate` the cluster's outgoing links
    /// support — the saturation point of the rejection-rate curves.
    pub fn total_stream_capacity(&self, bitrate: BitRate) -> u64 {
        self.servers
            .iter()
            .map(|s| s.stream_capacity(bitrate))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::TYPICAL_DURATION_S;

    #[test]
    fn paper_cluster_capacities() {
        let c = ClusterSpec::paper_default(30);
        assert_eq!(c.len(), 8);
        assert!(c.is_homogeneous());
        // 1.8 Gbps / 4 Mbps = 450 streams per server, 3600 cluster-wide.
        assert_eq!(c.servers()[0].stream_capacity(BitRate::MPEG2), 450);
        assert_eq!(c.total_stream_capacity(BitRate::MPEG2), 3_600);
        // 30 replica slots per server, 240 cluster-wide.
        assert_eq!(
            c.servers()[0].replica_slots(BitRate::MPEG2, TYPICAL_DURATION_S),
            30
        );
        assert_eq!(
            c.total_replica_slots(BitRate::MPEG2, TYPICAL_DURATION_S),
            240
        );
    }

    #[test]
    fn replica_slots_floor() {
        let s = ServerSpec {
            storage_bytes: 2_700_000_000 * 2 + 1_000,
            bandwidth_kbps: 1,
        };
        assert_eq!(s.replica_slots(BitRate::MPEG2, TYPICAL_DURATION_S), 2);
    }

    #[test]
    fn zero_rate_guards() {
        let s = ServerSpec {
            storage_bytes: 1,
            bandwidth_kbps: 1,
        };
        assert_eq!(s.replica_slots(BitRate::from_kbps(0), 100), 0);
        assert_eq!(s.stream_capacity(BitRate::from_kbps(0)), 0);
    }

    #[test]
    fn heterogeneous_detected() {
        let c = ClusterSpec::heterogeneous(vec![
            ServerSpec {
                storage_bytes: 10,
                bandwidth_kbps: 10,
            },
            ServerSpec {
                storage_bytes: 20,
                bandwidth_kbps: 10,
            },
        ])
        .unwrap();
        assert!(!c.is_homogeneous());
        assert_eq!(c.total_storage_bytes(), 30);
        assert_eq!(c.total_bandwidth_kbps(), 20);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            ClusterSpec::homogeneous(
                0,
                ServerSpec {
                    storage_bytes: 1,
                    bandwidth_kbps: 1
                }
            ),
            Err(ModelError::Empty)
        );
        assert_eq!(ClusterSpec::heterogeneous(vec![]), Err(ModelError::Empty));
    }
}
