//! Integer simulation time.
//!
//! Event queues need a *total* order; floating-point minutes would force
//! `total_cmp` wrappers everywhere and invite epsilon bugs. The simulator
//! therefore ticks in whole milliseconds (`u64`): a 90-minute peak period
//! is 5.4 million ticks, and `u64` holds half a billion years of headroom.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A point in simulated time, in milliseconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Converts minutes (e.g. trace arrival times) to ticks, rounding to
    /// the nearest millisecond.
    #[inline]
    pub fn from_min(minutes: f64) -> SimTime {
        debug_assert!(minutes >= 0.0 && minutes.is_finite());
        SimTime((minutes * 60_000.0).round() as u64)
    }

    /// Converts seconds to ticks.
    #[inline]
    pub fn from_secs(seconds: u64) -> SimTime {
        SimTime(seconds * 1_000)
    }

    /// This instant in minutes.
    #[inline]
    pub fn as_min(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// This instant in raw ticks (milliseconds).
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} min", self.as_min())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minute_roundtrip() {
        let t = SimTime::from_min(90.0);
        assert_eq!(t.ticks(), 5_400_000);
        assert!((t.as_min() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn sub_saturates() {
        assert_eq!(SimTime(5) - SimTime(10), SimTime::ZERO);
        assert_eq!(SimTime(10) - SimTime(4), SimTime(6));
    }

    #[test]
    fn add_works() {
        assert_eq!(
            SimTime::from_secs(60) + SimTime::from_secs(30),
            SimTime(90_000)
        );
    }

    #[test]
    fn ordering_total() {
        let mut v = vec![SimTime(3), SimTime(1), SimTime(2)];
        v.sort();
        assert_eq!(v, vec![SimTime(1), SimTime(2), SimTime(3)]);
    }

    #[test]
    fn rounding_to_nearest_ms() {
        assert_eq!(SimTime::from_min(0.0000083).ticks(), 0); // 0.498 ms
        assert_eq!(SimTime::from_min(0.0000084).ticks(), 1); // 0.504 ms
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_min(1.5).to_string(), "1.500 min");
    }
}
