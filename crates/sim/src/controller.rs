//! The online replication controller: sense → decide → actuate.
//!
//! The paper chooses replication degrees once, offline, for a static
//! popularity vector (Eqs. 2–4). This module closes the loop at run
//! time: it *senses* per-video demand from the arrivals the engine
//! actually observes (a windowed EWMA — never the workload generator's
//! true rates), *decides* new target replication degrees under the
//! Eq. 4 storage budget on a periodic control tick, and *actuates*
//! through the same metered copy machinery failure repair uses
//! (`crate::actuation`), so re-replication traffic competes for the
//! [`crate::RepairConfig`] bandwidth budget and never oversubscribes a
//! link or a disk.
//!
//! Three mechanisms keep the controller from thrashing on rank noise:
//!
//! * **hysteresis** — a video's target rises as soon as the apportioned
//!   degree exceeds it, but falls only after
//!   [`ControllerConfig::cooldown_ticks`] *consecutive* ticks of cooled
//!   demand — and even then only on demand: a cooled video is demoted
//!   when (and only when) a pending raise needs its slot, so a cluster
//!   with spare storage never pays retire-then-recopy churn for the
//!   apportionment's marginal-seat noise;
//! * **a change budget** — at most
//!   [`ControllerConfig::max_changes_per_tick`] videos move per tick,
//!   hottest promotions first, coldest demotions last;
//! * **backoff** — a tick does nothing (beyond updating estimators)
//!   while a server is down, failure repair has copies in flight, or
//!   cluster streaming utilization exceeds
//!   [`ControllerConfig::overload_headroom_pct`] — QoS traffic and
//!   outage recovery always win over rebalancing.
//!
//! Determinism: the estimator is integer fixed-point (16.16), the
//! apportionment compares rates by `u128` cross-multiplication (no
//! float division), every tie breaks on the lower video id, and ticks
//! fire at fixed instants *after* all other events due at the same
//! instant. A run with the controller enabled is a pure function of
//! (trace, config); the controller is a cluster-coupling feature, so
//! the sharded engine routes such runs through its serial
//! coupled-fallback path (see `Simulation::decoupled_plan`).

use crate::actuation::ReplicaActuator;
use crate::dispatch::Dispatcher;
use crate::server::LinkState;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use vod_model::ModelError;

/// Fixed-point scale of the rate estimator (16.16).
const FP: u64 = 1 << 16;

/// Online replication controller knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Control-tick cadence in minutes; `0.0` disables the controller
    /// (the default — the engine is byte-identical to pre-controller
    /// builds). Re-replication additionally requires
    /// [`crate::RepairConfig::bandwidth_kbps`] > 0: the controller
    /// actuates through the shared repair-bandwidth budget.
    pub tick_min: f64,
    /// EWMA window in ticks: the per-tick arrival count enters the
    /// estimate with weight `1/ewma_window_ticks`.
    pub ewma_window_ticks: u32,
    /// Consecutive cool ticks required before a video's target is
    /// lowered (raises apply immediately).
    pub cooldown_ticks: u32,
    /// Maximum videos whose target may move in one tick.
    pub max_changes_per_tick: usize,
    /// Back off when cluster streaming utilization exceeds this percent
    /// of effective capacity.
    pub overload_headroom_pct: u8,
}

impl Default for ControllerConfig {
    /// Controller off; sensing/decision knobs at their studied defaults.
    fn default() -> Self {
        ControllerConfig {
            tick_min: 0.0,
            ewma_window_ticks: 4,
            cooldown_ticks: 3,
            max_changes_per_tick: 8,
            overload_headroom_pct: 95,
        }
    }
}

impl ControllerConfig {
    /// Whether the controller runs at all.
    pub fn enabled(&self) -> bool {
        self.tick_min > 0.0
    }

    /// Validates the knobs (called at [`crate::Simulation::new`]).
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.tick_min.is_finite() || self.tick_min < 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "controller.tick_min",
                value: self.tick_min,
            });
        }
        if self.ewma_window_ticks == 0 {
            return Err(ModelError::InvalidParameter {
                name: "controller.ewma_window_ticks",
                value: 0.0,
            });
        }
        if self.enabled() && self.max_changes_per_tick == 0 {
            return Err(ModelError::InvalidParameter {
                name: "controller.max_changes_per_tick",
                value: 0.0,
            });
        }
        if self.overload_headroom_pct > 100 {
            return Err(ModelError::InvalidParameter {
                name: "controller.overload_headroom_pct",
                value: self.overload_headroom_pct as f64,
            });
        }
        Ok(())
    }
}

/// One candidate replica grant in the greedy apportionment: video
/// `video` (estimated rate `rate`, fixed-point) bidding for its
/// `next_degree`-th replica. Max-heap priority is `rate / next_degree`
/// compared exactly by cross-multiplication; ties break to the lower
/// video id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bid {
    rate: u64,
    next_degree: u32,
    video: u32,
}

impl Ord for Bid {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.rate as u128 * other.next_degree as u128;
        let b = other.rate as u128 * self.next_degree as u128;
        a.cmp(&b).then_with(|| other.video.cmp(&self.video))
    }
}

impl PartialOrd for Bid {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Sensing and decision state of the online controller. The engine
/// feeds it observed arrivals ([`Self::observe`]) and fires
/// [`Self::tick`] on the control cadence; actuation goes through the
/// shared [`ReplicaActuator`].
#[derive(Debug)]
pub(crate) struct DriftController {
    cfg: ControllerConfig,
    /// Arrivals per video since the last tick.
    window: Vec<u64>,
    /// Fixed-point (16.16) EWMA of per-tick arrival counts.
    est: Vec<u64>,
    /// The first tick seeds the estimator directly from its window.
    seeded: bool,
    /// Consecutive ticks each video's apportioned degree sat below its
    /// current target (the demotion hysteresis counter).
    cool: Vec<u32>,
    /// Scratch: desired degrees recomputed each tick.
    desired: Vec<u32>,
    /// Scratch: integer weights handed to the actuator's replanner.
    weights: Vec<u64>,
    // Stats (published as `sim.controller.*` and in the report).
    ticks: u64,
    backoffs: u64,
    promotions: u64,
    demotions: u64,
    retired: u64,
}

impl DriftController {
    pub fn new(n_videos: usize, cfg: ControllerConfig) -> Self {
        DriftController {
            cfg,
            window: vec![0; n_videos],
            est: vec![0; n_videos],
            seeded: false,
            cool: vec![0; n_videos],
            desired: vec![0; n_videos],
            weights: vec![0; n_videos],
            ticks: 0,
            backoffs: 0,
            promotions: 0,
            demotions: 0,
            retired: 0,
        }
    }

    /// Records one observed arrival for video `v` (called per request,
    /// before admission — the controller sees offered demand, not the
    /// admitted subset).
    #[inline]
    pub fn observe(&mut self, v: usize) {
        self.window[v] += 1;
    }

    /// Control ticks fired.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Ticks that backed off without moving targets.
    pub fn backoffs(&self) -> u64 {
        self.backoffs
    }

    /// Targets raised.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Targets lowered.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Replicas retired by demotions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Cluster streaming utilization check: busy when used streaming
    /// bandwidth exceeds `overload_headroom_pct` of the effective
    /// capacity of up servers. Pure integer math.
    fn overloaded(&self, links: &LinkState) -> bool {
        let mut used = 0u64;
        let mut cap = 0u64;
        for (j, &u) in links.used_kbps().iter().enumerate() {
            let s = vod_model::ServerId(j as u32);
            if links.is_up(s) {
                used += u;
                cap += links.effective_capacity_kbps(s);
            }
        }
        used * 100 > cap * self.cfg.overload_headroom_pct as u64
    }

    /// Recomputes desired replication degrees from the rate estimates by
    /// greedy proportional apportionment under the cluster-wide replica
    /// slot budget: every video keeps one replica; each further slot
    /// goes to the video maximizing `rate / next_degree` (exact
    /// cross-multiplied comparison, ties to the lower id), capped at one
    /// replica per server. Zero-rate videos never bid beyond degree 1.
    fn apportion(&mut self, budget: u64, n_servers: usize) {
        let m = self.est.len();
        self.desired.iter_mut().for_each(|d| *d = 1);
        let mut heap: BinaryHeap<Bid> = self
            .est
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 0)
            .map(|(v, &r)| Bid {
                rate: r,
                next_degree: 2,
                video: v as u32,
            })
            .collect();
        let mut used = m as u64;
        while used < budget {
            let Some(bid) = heap.pop() else { break };
            let v = bid.video as usize;
            self.desired[v] = bid.next_degree;
            used += 1;
            if (bid.next_degree as usize) < n_servers {
                heap.push(Bid {
                    next_degree: bid.next_degree + 1,
                    ..bid
                });
            }
        }
    }

    /// One control tick: fold the arrival window into the EWMA, then —
    /// unless backing off — reapportion degrees and apply up to the
    /// change budget of target moves, hottest promotions first. A raise
    /// draws on the free slot budget; when that runs dry it demotes
    /// cooled videos (coldest first, past their cooldown) to fund the
    /// slots — demotion never happens without a raise demanding the
    /// space. Actuation: fills are queued and pumped, retired surplus
    /// freed, destinations replanned from the *observed* rate estimates.
    pub fn tick(
        &mut self,
        now: SimTime,
        actuator: &mut ReplicaActuator,
        links: &mut LinkState,
        dispatcher: &mut Dispatcher,
    ) {
        self.ticks += 1;
        let k = self.cfg.ewma_window_ticks as u64;
        for (e, w) in self.est.iter_mut().zip(self.window.iter_mut()) {
            let obs = *w * FP;
            *e = if self.seeded {
                *e - *e / k + obs / k
            } else {
                obs
            };
            *w = 0;
        }
        self.seeded = true;

        // QoS and outage recovery outrank rebalancing: while a server is
        // down, repair owns the copy budget; while streaming runs hot,
        // nothing competes with it.
        if actuator.any_down() || actuator.repair_copies_in_flight() > 0 || self.overloaded(links) {
            self.backoffs += 1;
            return;
        }

        let n = actuator.n_servers();
        self.apportion(actuator.slot_budget(), n);

        // Classify with hysteresis.
        let mut raises: Vec<u32> = Vec::new();
        let mut lowers: Vec<u32> = Vec::new();
        for v in 0..self.desired.len() {
            let cur = actuator.target(v);
            let want = self.desired[v];
            if want > cur {
                self.cool[v] = 0;
                raises.push(v as u32);
            } else if want < cur {
                self.cool[v] += 1;
                if self.cool[v] >= self.cfg.cooldown_ticks {
                    lowers.push(v as u32);
                }
            } else {
                self.cool[v] = 0;
            }
        }
        // Hottest first; ties to the lower id.
        raises.sort_by_key(|&v| (std::cmp::Reverse(self.est[v as usize]), v));
        // Coldest first; ties to the lower id.
        lowers.sort_by_key(|&v| (self.est[v as usize], v));

        let mut changes = self.cfg.max_changes_per_tick;
        let now_min = now.as_min();
        let mut moved = false;
        let mut free = actuator
            .slot_budget()
            .saturating_sub(actuator.target_slots());
        let mut lower_pool = lowers.into_iter();
        for &v in &raises {
            if changes == 0 {
                break;
            }
            let v = v as usize;
            let need = (self.desired[v] - actuator.target(v)) as u64;
            // Fund the raise: demote cooled videos, coldest first, until
            // enough slots are free. No raise pending ⇒ no demotion.
            while free < need && changes > 0 {
                let Some(c) = lower_pool.next() else { break };
                let c = c as usize;
                free += (actuator.target(c) - self.desired[c]) as u64;
                actuator.set_target(now_min, c, self.desired[c]);
                self.retired += actuator.retire_to_target(c) as u64;
                self.cool[c] = 0;
                self.demotions += 1;
                changes -= 1;
                moved = true;
            }
            if changes == 0 || free == 0 {
                break;
            }
            // Partial raises are fine: next tick tops the target up once
            // more slots free.
            let step = need.min(free) as u32;
            actuator.set_target(now_min, v, actuator.target(v) + step);
            actuator.request_fill(v);
            free -= step as u64;
            self.promotions += 1;
            changes -= 1;
            moved = true;
        }

        if moved {
            for (w, &e) in self.weights.iter_mut().zip(&self.est) {
                *w = e / FP;
            }
            let weights = std::mem::take(&mut self.weights);
            actuator.replan(&weights);
            self.weights = weights;
            actuator.pump(now, links, dispatcher);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_off_and_valid() {
        let cfg = ControllerConfig::default();
        assert!(!cfg.enabled());
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_degenerate_knobs() {
        let bad_tick = ControllerConfig {
            tick_min: f64::NAN,
            ..Default::default()
        };
        assert!(bad_tick.validate().is_err());
        let bad_window = ControllerConfig {
            ewma_window_ticks: 0,
            ..Default::default()
        };
        assert!(bad_window.validate().is_err());
        let bad_budget = ControllerConfig {
            tick_min: 5.0,
            max_changes_per_tick: 0,
            ..Default::default()
        };
        assert!(bad_budget.validate().is_err());
        let bad_headroom = ControllerConfig {
            overload_headroom_pct: 101,
            ..Default::default()
        };
        assert!(bad_headroom.validate().is_err());
    }

    #[test]
    fn apportionment_is_proportional_and_capped() {
        let mut d = DriftController::new(4, ControllerConfig::default());
        d.est = vec![8 * FP, 4 * FP, 0, FP];
        // Budget 8 slots over 4 servers (D'Hondt grants: 8/2, 8/3, then
        // the 8/4 = 4/2 tie to the lower id, then 4/2): v0 takes the
        // cap, v2 idle stays at 1.
        d.apportion(8, 4);
        assert_eq!(d.desired, vec![4, 2, 1, 1]);
        // A huge budget caps every bidding video at one replica/server.
        d.apportion(1_000, 4);
        assert_eq!(d.desired, vec![4, 4, 1, 4]);
        // Budget below the floor leaves everyone at one replica.
        d.apportion(2, 4);
        assert_eq!(d.desired, vec![1, 1, 1, 1]);
    }

    #[test]
    fn apportionment_ties_break_to_lower_id() {
        let mut d = DriftController::new(3, ControllerConfig::default());
        d.est = vec![5 * FP, 5 * FP, 5 * FP];
        // One spare slot: equal rates, v0 must win deterministically.
        d.apportion(4, 3);
        assert_eq!(d.desired, vec![2, 1, 1]);
    }

    #[test]
    fn ewma_tracks_and_decays() {
        let cfg = ControllerConfig {
            tick_min: 1.0,
            ewma_window_ticks: 4,
            ..Default::default()
        };
        let mut d = DriftController::new(1, cfg);
        // Seed tick: estimate = observation exactly.
        d.window[0] = 100;
        let k = 4u64;
        let mut est = 100 * FP;
        d.fold_for_test();
        assert_eq!(d.est[0], est);
        // Demand stops: the estimate decays by 1/k per tick, never
        // negative, and matches the closed-form recurrence exactly.
        for _ in 0..10 {
            d.fold_for_test();
            est = est - est / k;
            assert_eq!(d.est[0], est);
        }
        assert!(d.est[0] < 10 * FP);
    }

    impl DriftController {
        /// Test-only: run just the estimator fold of a tick.
        fn fold_for_test(&mut self) {
            let k = self.cfg.ewma_window_ticks as u64;
            for (e, w) in self.est.iter_mut().zip(self.window.iter_mut()) {
                let obs = *w * FP;
                *e = if self.seeded {
                    *e - *e / k + obs / k
                } else {
                    obs
                };
                *w = 0;
            }
            self.seeded = true;
        }
    }
}
