//! Per-server outgoing-link occupancy.
//!
//! "Like many other work, we consider that outgoing network bandwidth is
//! the major performance bottleneck" (paper, Sec. 3.1) — storage is a
//! placement-time constraint, so at run time the only contended resource
//! is each server's outgoing link (plus, under the redirection extension,
//! the shared backbone).

use vod_model::{ClusterSpec, ServerId};

/// Mutable run-time state of the cluster's outgoing links.
///
/// Also tracks availability for failure injection: a *down* server admits
/// nothing, and its failure bumps a per-server epoch so that departures
/// scheduled for killed streams can be recognized as stale.
#[derive(Debug, Clone)]
pub struct LinkState {
    capacity_kbps: Vec<u64>,
    /// Effective (brownout-adjusted) capacity; equals `capacity_kbps`
    /// while the link is healthy.
    effective_kbps: Vec<u64>,
    used_kbps: Vec<u64>,
    repair_kbps: Vec<u64>,
    streams: Vec<u32>,
    /// Availability bitmask, one bit per server (bit set = up), packed
    /// into u64 words so alive-replica scans read 64 servers per load.
    up: Vec<u64>,
    epoch: Vec<u32>,
}

/// Splits a server index into its (word, bit) position in the up-bitmask.
#[inline]
fn bit(j: usize) -> (usize, u64) {
    (j / 64, 1u64 << (j % 64))
}

impl LinkState {
    /// Fresh (idle, all-up) state for a cluster.
    pub fn new(cluster: &ClusterSpec) -> Self {
        let capacity_kbps: Vec<u64> = cluster.servers().iter().map(|s| s.bandwidth_kbps).collect();
        let n = capacity_kbps.len();
        let mut up = vec![u64::MAX; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            // Clear the bits past the last server so the mask is exact.
            *up.last_mut().expect("n > 0 implies a mask word") = (1u64 << (n % 64)) - 1;
        }
        LinkState {
            effective_kbps: capacity_kbps.clone(),
            capacity_kbps,
            used_kbps: vec![0; n],
            repair_kbps: vec![0; n],
            streams: vec![0; n],
            up,
            epoch: vec![0; n],
        }
    }

    /// Whether `server` is currently up.
    #[inline]
    pub fn is_up(&self, server: ServerId) -> bool {
        let (w, m) = bit(server.index());
        self.up[w] & m != 0
    }

    /// The availability bitmask, one bit per server (bit set = up),
    /// packed little-endian into u64 words.
    #[inline]
    pub fn up_mask(&self) -> &[u64] {
        &self.up
    }

    /// The server's failure epoch (bumped on every failure).
    #[inline]
    pub fn epoch(&self, server: ServerId) -> u32 {
        self.epoch[server.index()]
    }

    /// Takes `server` down: every active stream on it is killed and its
    /// bandwidth cleared. Returns the number of disrupted streams.
    pub fn fail(&mut self, server: ServerId) -> u32 {
        let j = server.index();
        let dropped = self.streams[j];
        self.streams[j] = 0;
        self.used_kbps[j] = 0;
        self.repair_kbps[j] = 0;
        let (w, m) = bit(j);
        self.up[w] &= !m;
        self.epoch[j] += 1;
        dropped
    }

    /// Brings `server` back up (idle). An active brownout survives the
    /// outage: the link comes back at its degraded effective capacity
    /// until the scheduled brownout end clears it.
    pub fn recover(&mut self, server: ServerId) {
        let (w, m) = bit(server.index());
        self.up[w] |= m;
    }

    /// Starts a brownout: the link's effective capacity drops to
    /// `capacity × frac` (`frac ∈ (0, 1]`). Returns the bandwidth in kbps
    /// by which current commitments (streams + repair reservations) now
    /// exceed the degraded link — the caller must shed that much.
    pub fn set_brownout(&mut self, server: ServerId, frac: f64) -> u64 {
        let j = server.index();
        debug_assert!(frac > 0.0 && frac <= 1.0);
        self.effective_kbps[j] = (self.capacity_kbps[j] as f64 * frac).floor() as u64;
        (self.used_kbps[j] + self.repair_kbps[j]).saturating_sub(self.effective_kbps[j])
    }

    /// Ends a brownout, restoring the link's full capacity.
    pub fn clear_brownout(&mut self, server: ServerId) {
        let j = server.index();
        self.effective_kbps[j] = self.capacity_kbps[j];
    }

    /// Whether `server`'s link is currently running below full capacity.
    #[inline]
    pub fn is_browned_out(&self, server: ServerId) -> bool {
        let j = server.index();
        self.effective_kbps[j] < self.capacity_kbps[j]
    }

    /// Current effective (brownout-adjusted) capacity of `server`'s link.
    #[inline]
    pub fn effective_capacity_kbps(&self, server: ServerId) -> u64 {
        self.effective_kbps[server.index()]
    }

    /// Number of servers.
    #[inline]
    pub fn len(&self) -> usize {
        self.capacity_kbps.len()
    }

    /// True for a zero-server cluster (construction upstream forbids it).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.capacity_kbps.is_empty()
    }

    /// Whether `server` is up and can admit one more stream of `kbps`.
    /// Repair traffic counts against the link, so an aggressive rebuild
    /// squeezes out admissions.
    #[inline]
    pub fn can_admit(&self, server: ServerId, kbps: u64) -> bool {
        let j = server.index();
        self.is_up(server)
            && self.used_kbps[j] + self.repair_kbps[j] + kbps <= self.effective_kbps[j]
    }

    /// Free outgoing bandwidth on `server`, in kbps (0 while down), net
    /// of any repair-copy reservations and brownout degradation. A
    /// browned-out server thus looks "slow, not dead" to dispatch and
    /// repair source selection.
    #[inline]
    pub fn free_kbps(&self, server: ServerId) -> u64 {
        let j = server.index();
        if !self.is_up(server) {
            return 0;
        }
        self.effective_kbps[j].saturating_sub(self.used_kbps[j] + self.repair_kbps[j])
    }

    /// Admits a stream; panics in debug builds if capacity would be
    /// exceeded (callers must check [`Self::can_admit`] first).
    #[inline]
    pub fn admit(&mut self, server: ServerId, kbps: u64) {
        let j = server.index();
        debug_assert!(self.used_kbps[j] + self.repair_kbps[j] + kbps <= self.effective_kbps[j]);
        self.used_kbps[j] += kbps;
        self.streams[j] += 1;
    }

    /// Reserves `kbps` of repair-copy bandwidth on `server`'s link.
    /// Callers must check [`Self::free_kbps`] first; repair shares the
    /// link with streaming, it does not get a separate pool.
    #[inline]
    pub fn reserve_repair(&mut self, server: ServerId, kbps: u64) {
        let j = server.index();
        debug_assert!(self.is_up(server));
        debug_assert!(self.used_kbps[j] + self.repair_kbps[j] + kbps <= self.effective_kbps[j]);
        self.repair_kbps[j] += kbps;
    }

    /// Releases a repair-copy reservation (copy finished or aborted).
    /// A no-op for a server that failed meanwhile — `fail()` already
    /// cleared its reservations.
    #[inline]
    pub fn release_repair(&mut self, server: ServerId, kbps: u64) {
        let j = server.index();
        if !self.is_up(server) {
            return;
        }
        debug_assert!(self.repair_kbps[j] >= kbps);
        self.repair_kbps[j] -= kbps;
    }

    /// Current per-server repair-copy reservations in kbps.
    #[inline]
    pub fn repair_kbps(&self) -> &[u64] {
        &self.repair_kbps
    }

    /// Releases a completed stream.
    #[inline]
    pub fn release(&mut self, server: ServerId, kbps: u64) {
        let j = server.index();
        debug_assert!(self.used_kbps[j] >= kbps && self.streams[j] > 0);
        self.used_kbps[j] -= kbps;
        self.streams[j] -= 1;
    }

    /// Current per-server used bandwidth in kbps.
    #[inline]
    pub fn used_kbps(&self) -> &[u64] {
        &self.used_kbps
    }

    /// Current per-server active stream counts.
    #[inline]
    pub fn streams(&self) -> &[u32] {
        &self.streams
    }

    /// Per-server loads as floats (for imbalance metrics), in streams.
    pub fn stream_loads(&self) -> Vec<f64> {
        self.streams.iter().map(|&s| s as f64).collect()
    }

    /// [`Self::stream_loads`] into a reusable buffer (cleared first) —
    /// the engine's per-sample path, so steady state allocates nothing.
    pub fn stream_loads_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.streams.iter().map(|&s| s as f64));
    }

    /// Total active streams.
    pub fn total_streams(&self) -> u64 {
        self.streams.iter().map(|&s| s as u64).sum()
    }

    /// Copies server `j`'s full per-server state (occupancy, repair
    /// reservations, effective capacity, stream count, epoch, up bit)
    /// from `src`. Both states must describe the same cluster — nominal
    /// capacities are immutable and assumed identical. This is the
    /// windowed engine's checkout/commit primitive: worker replicas
    /// sync their owned servers from the master at a window open and
    /// write them back at the barrier.
    pub(crate) fn copy_server_from(&mut self, src: &LinkState, j: usize) {
        debug_assert_eq!(self.capacity_kbps[j], src.capacity_kbps[j]);
        self.effective_kbps[j] = src.effective_kbps[j];
        self.used_kbps[j] = src.used_kbps[j];
        self.repair_kbps[j] = src.repair_kbps[j];
        self.streams[j] = src.streams[j];
        self.epoch[j] = src.epoch[j];
        let (w, m) = bit(j);
        self.up[w] = (self.up[w] & !m) | (src.up[w] & m);
    }

    /// Invariant check used by tests, debug assertions, and the runtime
    /// auditor: no link over its effective (brownout-adjusted) capacity.
    pub fn within_capacity(&self) -> bool {
        self.used_kbps
            .iter()
            .zip(&self.repair_kbps)
            .zip(&self.effective_kbps)
            .all(|((&u, &r), &c)| u + r <= c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::ServerSpec;

    fn links(n: usize, kbps: u64) -> LinkState {
        LinkState::new(
            &ClusterSpec::homogeneous(
                n,
                ServerSpec {
                    storage_bytes: 1,
                    bandwidth_kbps: kbps,
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn failure_kills_streams_and_blocks_admission() {
        let mut l = links(2, 10_000);
        l.admit(ServerId(0), 4_000);
        l.admit(ServerId(0), 4_000);
        assert_eq!(l.epoch(ServerId(0)), 0);
        let dropped = l.fail(ServerId(0));
        assert_eq!(dropped, 2);
        assert_eq!(l.epoch(ServerId(0)), 1);
        assert!(!l.is_up(ServerId(0)));
        assert!(!l.can_admit(ServerId(0), 1));
        assert_eq!(l.free_kbps(ServerId(0)), 0);
        assert_eq!(l.total_streams(), 0);
        // Other servers unaffected.
        assert!(l.can_admit(ServerId(1), 10_000));
        // Recovery restores an idle server; the epoch stays bumped.
        l.recover(ServerId(0));
        assert!(l.is_up(ServerId(0)));
        assert!(l.can_admit(ServerId(0), 10_000));
        assert_eq!(l.epoch(ServerId(0)), 1);
    }

    #[test]
    fn repeated_failures_bump_epoch() {
        let mut l = links(1, 5_000);
        l.fail(ServerId(0));
        l.recover(ServerId(0));
        l.fail(ServerId(0));
        assert_eq!(l.epoch(ServerId(0)), 2);
    }

    #[test]
    fn admit_release_cycle() {
        let mut l = links(2, 10_000);
        let s = ServerId(0);
        assert!(l.can_admit(s, 4_000));
        l.admit(s, 4_000);
        l.admit(s, 4_000);
        assert_eq!(l.used_kbps()[0], 8_000);
        assert_eq!(l.streams()[0], 2);
        assert!(!l.can_admit(s, 4_000));
        assert!(l.can_admit(s, 2_000));
        l.release(s, 4_000);
        assert!(l.can_admit(s, 4_000));
        assert_eq!(l.total_streams(), 1);
        assert!(l.within_capacity());
    }

    #[test]
    fn exact_fit_admitted() {
        let mut l = links(1, 4_000);
        assert!(l.can_admit(ServerId(0), 4_000));
        l.admit(ServerId(0), 4_000);
        assert!(!l.can_admit(ServerId(0), 1));
        assert_eq!(l.free_kbps(ServerId(0)), 0);
    }

    #[test]
    fn stream_loads_float() {
        let mut l = links(2, 10_000);
        l.admit(ServerId(1), 1_000);
        assert_eq!(l.stream_loads(), vec![0.0, 1.0]);
    }

    #[test]
    fn repair_reservation_competes_with_streaming() {
        let mut l = links(1, 10_000);
        l.reserve_repair(ServerId(0), 8_000);
        assert_eq!(l.free_kbps(ServerId(0)), 2_000);
        assert!(!l.can_admit(ServerId(0), 4_000));
        assert!(l.can_admit(ServerId(0), 2_000));
        l.release_repair(ServerId(0), 8_000);
        assert!(l.can_admit(ServerId(0), 10_000));
        assert!(l.within_capacity());
    }

    #[test]
    fn failure_clears_repair_reservation() {
        let mut l = links(1, 10_000);
        l.reserve_repair(ServerId(0), 4_000);
        l.fail(ServerId(0));
        assert_eq!(l.repair_kbps()[0], 0);
        // Releasing after the failure must not underflow.
        l.release_repair(ServerId(0), 4_000);
        l.recover(ServerId(0));
        assert_eq!(l.free_kbps(ServerId(0)), 10_000);
    }

    #[test]
    fn brownout_shrinks_effective_capacity_and_reports_excess() {
        let mut l = links(1, 10_000);
        l.admit(ServerId(0), 4_000);
        l.admit(ServerId(0), 4_000);
        // 50% brownout: effective 5 000 kbps, 8 000 committed → shed 3 000.
        let excess = l.set_brownout(ServerId(0), 0.5);
        assert_eq!(excess, 3_000);
        assert!(l.is_browned_out(ServerId(0)));
        assert_eq!(l.effective_capacity_kbps(ServerId(0)), 5_000);
        assert_eq!(l.free_kbps(ServerId(0)), 0); // saturates, no underflow
        assert!(!l.can_admit(ServerId(0), 1));
        assert!(!l.within_capacity());
        l.release(ServerId(0), 4_000);
        assert!(l.within_capacity());
        assert_eq!(l.free_kbps(ServerId(0)), 1_000);
        l.clear_brownout(ServerId(0));
        assert!(!l.is_browned_out(ServerId(0)));
        assert_eq!(l.free_kbps(ServerId(0)), 6_000);
    }

    #[test]
    fn brownout_survives_crash_and_recovery() {
        let mut l = links(1, 10_000);
        l.set_brownout(ServerId(0), 0.3);
        l.fail(ServerId(0));
        l.recover(ServerId(0));
        assert!(l.is_browned_out(ServerId(0)));
        assert_eq!(l.effective_capacity_kbps(ServerId(0)), 3_000);
        assert!(!l.can_admit(ServerId(0), 3_001));
        assert!(l.can_admit(ServerId(0), 3_000));
    }

    #[test]
    fn per_server_isolation() {
        let mut l = links(3, 5_000);
        l.admit(ServerId(1), 5_000);
        assert!(l.can_admit(ServerId(0), 5_000));
        assert!(l.can_admit(ServerId(2), 5_000));
        assert!(!l.can_admit(ServerId(1), 1));
    }
}
