//! Admission policies.
//!
//! The paper's setting: "By the use of a static round robin scheduling
//! policy" requests for a video rotate over its replicas, and "a request
//! was rejected if required communication bandwidth was unavailable"
//! (Sec. 5). That strict policy is [`AdmissionPolicy::StaticRoundRobin`],
//! the default everywhere the paper's figures are reproduced.
//!
//! Three more policies support the ablation study (A-1 in DESIGN.md):
//!
//! * [`AdmissionPolicy::RoundRobinFailover`] — rotate, but try every
//!   replica before rejecting;
//! * [`AdmissionPolicy::LeastLoadedReplica`] — always pick the replica
//!   server with the most free outgoing bandwidth (dynamic dispatch);
//! * [`AdmissionPolicy::BackboneRedirect`] — the request-redirection
//!   strategy of the authors' follow-up work \[19\]: when the scheduled
//!   replica's link is full, any server with spare outgoing bandwidth may
//!   proxy the stream, fetching the content from a replica holder over the
//!   cluster's internal backbone (a shared bandwidth pool).

use crate::server::LinkState;
use serde::{Deserialize, Serialize};
use vod_model::{ServerId, VideoId};

/// How the dispatcher maps an arriving request to a serving server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AdmissionPolicy {
    /// The paper's policy: the request goes to the next replica in
    /// round-robin order; if that server's link is full, reject.
    #[default]
    StaticRoundRobin,
    /// Round-robin start, but probe all replicas before rejecting.
    RoundRobinFailover,
    /// Serve from the replica server with the most free outgoing
    /// bandwidth; reject only if none fits.
    LeastLoadedReplica,
    /// Strict round-robin first; on failure, redirect through the least
    /// loaded server with link headroom, charging the shared backbone
    /// `backbone_kbps` of capacity per redirected stream.
    BackboneRedirect {
        /// Total internal backbone capacity, in kbps.
        backbone_capacity_kbps: u64,
    },
}

/// The dispatcher's routing outcome for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Serve from `server`; `backbone_kbps` > 0 marks a redirected stream.
    Admit {
        /// The server whose outgoing link carries the stream.
        server: ServerId,
        /// Backbone bandwidth consumed (0 for direct service).
        backbone_kbps: u64,
    },
    /// No eligible server had capacity.
    Reject,
}

/// Stateful request router: holds the per-video round-robin pointers and
/// the backbone occupancy.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    policy: AdmissionPolicy,
    rr_next: Vec<u32>,
    /// Cached next round-robin position per video — `rr_next % n`
    /// precomputed by the previous advance, so the dispatch hot path
    /// skips the integer division while the replica count is stable.
    rr_pos: Vec<u32>,
    /// Replica count the cached position was computed against; a
    /// mismatch (replica set grew/shrank mid-run) falls back to the
    /// modulo so the rotation stays exactly `counter % n`.
    rr_len: Vec<u32>,
    backbone_used_kbps: u64,
    probes: u64,
}

impl Dispatcher {
    /// A dispatcher for `n_videos` videos under `policy`.
    pub fn new(policy: AdmissionPolicy, n_videos: usize) -> Self {
        Dispatcher {
            policy,
            rr_next: vec![0; n_videos],
            rr_pos: vec![0; n_videos],
            rr_len: vec![0; n_videos],
            backbone_used_kbps: 0,
            probes: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Current backbone occupancy in kbps (only moves under
    /// [`AdmissionPolicy::BackboneRedirect`]).
    pub fn backbone_used_kbps(&self) -> u64 {
        self.backbone_used_kbps
    }

    /// Total admission-scan iterations (`can_admit` checks) performed
    /// over this dispatcher's lifetime — the policy's scan cost.
    pub fn admission_probes(&self) -> u64 {
        self.probes
    }

    /// Advances the video's round-robin pointer and returns the scheduled
    /// replica position — always exactly `counter % n_replicas`, served
    /// from the cached position when the replica count is unchanged
    /// (`counter == 0` also falls through to the modulo: it covers both
    /// first use and `u32` wraparound, where the cache is unseeded or
    /// one step out of phase).
    pub(crate) fn rr_advance(&mut self, video: VideoId, n_replicas: usize) -> usize {
        let i = video.index();
        let slot = self.rr_next[i];
        let pos = if self.rr_len[i] as usize == n_replicas && slot != 0 {
            self.rr_pos[i] as usize
        } else {
            slot as usize % n_replicas
        };
        self.rr_next[i] = slot.wrapping_add(1);
        self.rr_len[i] = n_replicas as u32;
        let next = pos + 1;
        self.rr_pos[i] = if next >= n_replicas { 0 } else { next as u32 };
        pos
    }

    /// Adds externally performed admission-scan iterations to the probe
    /// counter (the windowed engine's workers route via [`Self::route`]
    /// and fold their scan costs back in at the barrier).
    pub(crate) fn add_probes(&mut self, n: u64) {
        self.probes += n;
    }

    /// The stateless core of [`Self::dispatch`] for the policies whose
    /// routing reads only link state: given the pre-advanced round-robin
    /// `start` position, returns the decision and the number of
    /// admission probes the scan performed. Windowed workers call this
    /// concurrently against their group-local link replicas; the serial
    /// path delegates to it so both are one body of code.
    /// [`AdmissionPolicy::BackboneRedirect`] is stateful (shared
    /// backbone pool) and never routes through here.
    pub(crate) fn route(
        policy: AdmissionPolicy,
        start: usize,
        kbps: u64,
        replicas: &[ServerId],
        links: &LinkState,
    ) -> (Decision, u64) {
        match policy {
            AdmissionPolicy::StaticRoundRobin => {
                let server = replicas[start];
                if links.can_admit(server, kbps) {
                    (
                        Decision::Admit {
                            server,
                            backbone_kbps: 0,
                        },
                        1,
                    )
                } else {
                    (Decision::Reject, 1)
                }
            }
            AdmissionPolicy::RoundRobinFailover => {
                for probe in 0..replicas.len() {
                    let server = replicas[(start + probe) % replicas.len()];
                    if links.can_admit(server, kbps) {
                        return (
                            Decision::Admit {
                                server,
                                backbone_kbps: 0,
                            },
                            probe as u64 + 1,
                        );
                    }
                }
                (Decision::Reject, replicas.len() as u64)
            }
            AdmissionPolicy::LeastLoadedReplica => {
                let best = replicas
                    .iter()
                    .copied()
                    .filter(|&s| links.can_admit(s, kbps))
                    .max_by_key(|&s| (links.free_kbps(s), std::cmp::Reverse(s)));
                let decision = match best {
                    Some(server) => Decision::Admit {
                        server,
                        backbone_kbps: 0,
                    },
                    None => Decision::Reject,
                };
                (decision, replicas.len() as u64)
            }
            AdmissionPolicy::BackboneRedirect { .. } => {
                unreachable!("backbone routing is stateful and stays in dispatch()")
            }
        }
    }

    /// Routes one request for `video` at `kbps` over its current
    /// `replicas` (in round-robin order — the layout's list, possibly
    /// extended by mid-run repair). Does **not** mutate link state; the
    /// engine applies the returned decision (and must call
    /// [`Self::release_backbone`] when a redirected stream ends).
    pub fn dispatch(
        &mut self,
        video: VideoId,
        kbps: u64,
        replicas: &[ServerId],
        links: &LinkState,
    ) -> Decision {
        debug_assert!(!replicas.is_empty());

        match self.policy {
            policy @ (AdmissionPolicy::StaticRoundRobin
            | AdmissionPolicy::RoundRobinFailover
            | AdmissionPolicy::LeastLoadedReplica) => {
                let start = if matches!(policy, AdmissionPolicy::LeastLoadedReplica) {
                    0
                } else {
                    self.rr_advance(video, replicas.len())
                };
                let (decision, probes) = Self::route(policy, start, kbps, replicas, links);
                self.probes += probes;
                decision
            }
            AdmissionPolicy::BackboneRedirect {
                backbone_capacity_kbps,
            } => {
                let pos = self.rr_advance(video, replicas.len());
                let scheduled = replicas[pos];
                self.probes += 1;
                if links.can_admit(scheduled, kbps) {
                    return Decision::Admit {
                        server: scheduled,
                        backbone_kbps: 0,
                    };
                }
                // Redirect: any server with link headroom can proxy,
                // fetching over the backbone; prefer the most free link.
                if self.backbone_used_kbps + kbps <= backbone_capacity_kbps {
                    self.probes += links.len() as u64;
                    let proxy = (0..links.len())
                        .map(|j| ServerId(j as u32))
                        .filter(|&s| links.can_admit(s, kbps))
                        .max_by_key(|&s| (links.free_kbps(s), std::cmp::Reverse(s)));
                    if let Some(server) = proxy {
                        self.backbone_used_kbps += kbps;
                        return Decision::Admit {
                            server,
                            backbone_kbps: kbps,
                        };
                    }
                }
                Decision::Reject
            }
        }
    }

    /// Returns backbone bandwidth when a redirected stream completes.
    /// Saturating in release builds: an over-release is a bug (the debug
    /// assertion and the runtime auditor both catch it) but must not take
    /// the whole run down with an integer underflow.
    pub fn release_backbone(&mut self, kbps: u64) {
        debug_assert!(self.backbone_used_kbps >= kbps);
        self.backbone_used_kbps = self.backbone_used_kbps.saturating_sub(kbps);
    }

    /// Charges a repair copy's inter-server traffic to the backbone pool
    /// when the policy models one. Returns the kbps actually charged
    /// (release it with [`Self::release_backbone`] when the copy ends):
    /// `Some(0)` for policies without a backbone, `None` when the
    /// backbone has no headroom (the copy must wait).
    pub fn try_reserve_repair_backbone(&mut self, kbps: u64) -> Option<u64> {
        match self.policy {
            AdmissionPolicy::BackboneRedirect {
                backbone_capacity_kbps,
            } => {
                if self.backbone_used_kbps + kbps <= backbone_capacity_kbps {
                    self.backbone_used_kbps += kbps;
                    Some(kbps)
                } else {
                    None
                }
            }
            _ => Some(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::{ClusterSpec, Layout, ServerSpec};

    fn layout_2videos() -> Layout {
        // v0 on {s0, s1}; v1 on {s2}.
        Layout::new(3, vec![vec![ServerId(0), ServerId(1)], vec![ServerId(2)]]).unwrap()
    }

    fn links(kbps: u64) -> LinkState {
        LinkState::new(
            &ClusterSpec::homogeneous(
                3,
                ServerSpec {
                    storage_bytes: 1,
                    bandwidth_kbps: kbps,
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn static_rr_rotates() {
        let layout = layout_2videos();
        let links = links(100_000);
        let mut d = Dispatcher::new(AdmissionPolicy::StaticRoundRobin, 2);
        let picks: Vec<_> = (0..4)
            .map(|_| d.dispatch(VideoId(0), 4_000, layout.replicas_of(VideoId(0)), &links))
            .collect();
        assert_eq!(
            picks,
            vec![
                Decision::Admit {
                    server: ServerId(0),
                    backbone_kbps: 0
                },
                Decision::Admit {
                    server: ServerId(1),
                    backbone_kbps: 0
                },
                Decision::Admit {
                    server: ServerId(0),
                    backbone_kbps: 0
                },
                Decision::Admit {
                    server: ServerId(1),
                    backbone_kbps: 0
                },
            ]
        );
        // Static RR scans exactly one server per dispatch.
        assert_eq!(d.admission_probes(), 4);
    }

    #[test]
    fn static_rr_rejects_when_scheduled_server_full() {
        let layout = layout_2videos();
        let mut links = links(4_000);
        links.admit(ServerId(0), 4_000); // s0 saturated
        let mut d = Dispatcher::new(AdmissionPolicy::StaticRoundRobin, 2);
        // First dispatch schedules s0 -> reject even though s1 is free.
        assert_eq!(
            d.dispatch(VideoId(0), 4_000, layout.replicas_of(VideoId(0)), &links),
            Decision::Reject
        );
        // Pointer advanced: next goes to s1 and succeeds.
        assert_eq!(
            d.dispatch(VideoId(0), 4_000, layout.replicas_of(VideoId(0)), &links),
            Decision::Admit {
                server: ServerId(1),
                backbone_kbps: 0
            }
        );
    }

    #[test]
    fn failover_probes_all_replicas() {
        let layout = layout_2videos();
        let mut links = links(4_000);
        links.admit(ServerId(0), 4_000);
        let mut d = Dispatcher::new(AdmissionPolicy::RoundRobinFailover, 2);
        assert_eq!(
            d.dispatch(VideoId(0), 4_000, layout.replicas_of(VideoId(0)), &links),
            Decision::Admit {
                server: ServerId(1),
                backbone_kbps: 0
            }
        );
        links.admit(ServerId(1), 4_000);
        assert_eq!(
            d.dispatch(VideoId(0), 4_000, layout.replicas_of(VideoId(0)), &links),
            Decision::Reject
        );
        // First dispatch probed s0 (full) then s1; second probed both.
        assert_eq!(d.admission_probes(), 4);
    }

    #[test]
    fn least_loaded_picks_most_free() {
        let layout = layout_2videos();
        let mut links = links(100_000);
        links.admit(ServerId(0), 50_000);
        let mut d = Dispatcher::new(AdmissionPolicy::LeastLoadedReplica, 2);
        assert_eq!(
            d.dispatch(VideoId(0), 4_000, layout.replicas_of(VideoId(0)), &links),
            Decision::Admit {
                server: ServerId(1),
                backbone_kbps: 0
            }
        );
    }

    #[test]
    fn backbone_redirect_proxies_when_scheduled_full() {
        let layout = layout_2videos();
        let mut links = links(8_000);
        links.admit(ServerId(0), 8_000); // saturate scheduled server
        let mut d = Dispatcher::new(
            AdmissionPolicy::BackboneRedirect {
                backbone_capacity_kbps: 10_000,
            },
            2,
        );
        // v1 lives only on s2; saturate s2 so redirect is exercised.
        links.admit(ServerId(2), 8_000);
        let decision = d.dispatch(VideoId(1), 4_000, layout.replicas_of(VideoId(1)), &links);
        // Proxy = most free link among all servers = s1.
        assert_eq!(
            decision,
            Decision::Admit {
                server: ServerId(1),
                backbone_kbps: 4_000
            }
        );
        assert_eq!(d.backbone_used_kbps(), 4_000);
        d.release_backbone(4_000);
        assert_eq!(d.backbone_used_kbps(), 0);
    }

    #[test]
    fn backbone_exhaustion_rejects() {
        let layout = layout_2videos();
        let mut links = links(8_000);
        links.admit(ServerId(2), 8_000);
        let mut d = Dispatcher::new(
            AdmissionPolicy::BackboneRedirect {
                backbone_capacity_kbps: 3_999,
            },
            2,
        );
        assert_eq!(
            d.dispatch(VideoId(1), 4_000, layout.replicas_of(VideoId(1)), &links),
            Decision::Reject
        );
    }

    #[test]
    fn backbone_no_proxy_available_rejects() {
        let layout = layout_2videos();
        let mut links = links(4_000);
        for j in 0..3 {
            links.admit(ServerId(j), 4_000);
        }
        let mut d = Dispatcher::new(
            AdmissionPolicy::BackboneRedirect {
                backbone_capacity_kbps: 1_000_000,
            },
            2,
        );
        assert_eq!(
            d.dispatch(VideoId(0), 4_000, layout.replicas_of(VideoId(0)), &links),
            Decision::Reject
        );
    }

    #[test]
    fn rr_cache_stays_congruent_with_the_counter() {
        // The cached position must equal `counter % n` across replica
        // set growth, shrinkage, and return to a previous size.
        let mut d = Dispatcher::new(AdmissionPolicy::StaticRoundRobin, 1);
        let mut counter = 0u32;
        for &n in &[3usize, 3, 3, 5, 5, 2, 3, 3, 1, 4, 4, 4, 4, 4] {
            let pos = d.rr_advance(VideoId(0), n);
            assert_eq!(pos, counter as usize % n, "n={n} counter={counter}");
            counter = counter.wrapping_add(1);
        }
    }

    #[test]
    fn default_policy_is_paper_policy() {
        assert_eq!(
            AdmissionPolicy::default(),
            AdmissionPolicy::StaticRoundRobin
        );
    }
}
