//! The departure event queue.
//!
//! Arrivals replay directly from the (time-sorted) trace, so the only
//! events that need a priority queue are stream completions. The queue is
//! a min-heap keyed by `(time, sequence)`; the sequence number makes
//! ordering fully deterministic when several streams end on the same tick.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vod_model::{ServerId, VideoId};

/// A scheduled stream completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Departure {
    /// When the stream ends.
    pub at: SimTime,
    /// The server whose outgoing link frees up.
    pub server: ServerId,
    /// The video being streamed (for per-video accounting).
    pub video: VideoId,
    /// Outgoing bandwidth released, in kbps.
    pub kbps: u64,
    /// Backbone bandwidth released, in kbps (non-zero only for redirected
    /// streams under the backbone extension).
    pub backbone_kbps: u64,
    /// The serving server's failure epoch at admission time; a departure
    /// whose epoch no longer matches is stale (the stream was killed by a
    /// failure) and must not release link bandwidth.
    pub epoch: u32,
}

/// Deterministic min-heap of departures.
#[derive(Debug, Default)]
pub struct DepartureQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, DepartureRecord)>>,
    seq: u64,
}

/// Heap payload — kept `Ord` by field order, but the `(time, seq)` prefix
/// always decides first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct DepartureRecord {
    server: ServerId,
    video: VideoId,
    kbps: u64,
    backbone_kbps: u64,
    epoch: u32,
}

impl DepartureQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a departure.
    pub fn push(&mut self, d: Departure) {
        self.heap.push(Reverse((
            d.at,
            self.seq,
            DepartureRecord {
                server: d.server,
                video: d.video,
                kbps: d.kbps,
                backbone_kbps: d.backbone_kbps,
                epoch: d.epoch,
            },
        )));
        self.seq += 1;
    }

    /// Removes and returns the next departure at or before `now`, if any.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Departure> {
        let Reverse((at, _, _)) = self.heap.peek()?;
        if *at > now {
            return None;
        }
        let Reverse((at, _, rec)) = self.heap.pop()?;
        Some(Departure {
            at,
            server: rec.server,
            video: rec.video,
            kbps: rec.kbps,
            backbone_kbps: rec.backbone_kbps,
            epoch: rec.epoch,
        })
    }

    /// The next departure's instant, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Removes and returns every departure on `server` whose epoch
    /// matches `epoch` — the streams actually alive there — in
    /// deterministic `(time, sequence)` order. Stale entries (older
    /// epochs) stay queued: under the backbone extension their backbone
    /// reservation is still released at the scheduled end. Used by
    /// stream failover to take over a failing server's streams before
    /// the link state kills them.
    pub fn extract_active(&mut self, server: ServerId, epoch: u32) -> Vec<Departure> {
        let entries = std::mem::take(&mut self.heap).into_sorted_vec();
        let mut extracted = Vec::new();
        for Reverse((at, seq, rec)) in entries.into_iter().rev() {
            if rec.server == server && rec.epoch == epoch {
                extracted.push(Departure {
                    at,
                    server: rec.server,
                    video: rec.video,
                    kbps: rec.kbps,
                    backbone_kbps: rec.backbone_kbps,
                    epoch: rec.epoch,
                });
            } else {
                self.heap.push(Reverse((at, seq, rec)));
            }
        }
        extracted
    }

    /// Drains every remaining departure in time order (end-of-run cleanup).
    pub fn drain_all(&mut self) -> Vec<Departure> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(d) = self.pop_due(SimTime(u64::MAX)) {
            out.push(d);
        }
        out
    }

    /// Number of scheduled departures (active streams).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no streams are active.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(at: u64, server: u32) -> Departure {
        Departure {
            at: SimTime(at),
            server: ServerId(server),
            video: VideoId(0),
            kbps: 4_000,
            backbone_kbps: 0,
            epoch: 0,
        }
    }

    #[test]
    fn next_time_peeks() {
        let mut q = DepartureQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(dep(42, 0));
        q.push(dep(7, 1));
        assert_eq!(q.next_time(), Some(SimTime(7)));
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = DepartureQueue::new();
        q.push(dep(30, 0));
        q.push(dep(10, 1));
        q.push(dep(20, 2));
        assert_eq!(q.pop_due(SimTime(100)).unwrap().at, SimTime(10));
        assert_eq!(q.pop_due(SimTime(100)).unwrap().at, SimTime(20));
        assert_eq!(q.pop_due(SimTime(100)).unwrap().at, SimTime(30));
        assert!(q.pop_due(SimTime(100)).is_none());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = DepartureQueue::new();
        q.push(dep(50, 0));
        assert!(q.pop_due(SimTime(49)).is_none());
        assert!(q.pop_due(SimTime(50)).is_some());
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = DepartureQueue::new();
        q.push(dep(10, 7));
        q.push(dep(10, 3));
        assert_eq!(q.pop_due(SimTime(10)).unwrap().server, ServerId(7));
        assert_eq!(q.pop_due(SimTime(10)).unwrap().server, ServerId(3));
    }

    #[test]
    fn drain_returns_sorted() {
        let mut q = DepartureQueue::new();
        for at in [5u64, 1, 9, 3] {
            q.push(dep(at, 0));
        }
        let times: Vec<u64> = q.drain_all().iter().map(|d| d.at.ticks()).collect();
        assert_eq!(times, vec![1, 3, 5, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn extract_active_partitions_by_server_and_epoch() {
        let mut q = DepartureQueue::new();
        q.push(dep(30, 1));
        q.push(Departure {
            epoch: 1,
            ..dep(10, 0)
        });
        q.push(dep(20, 0)); // epoch 0: stale once we extract epoch 1
        q.push(Departure {
            epoch: 1,
            ..dep(5, 0)
        });
        let got = q.extract_active(ServerId(0), 1);
        assert_eq!(
            got.iter().map(|d| d.at.ticks()).collect::<Vec<_>>(),
            vec![5, 10]
        );
        // The stale epoch-0 entry and the other server's entry survive.
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_due(SimTime(100)).unwrap().at, SimTime(20));
        assert_eq!(q.pop_due(SimTime(100)).unwrap().server, ServerId(1));
    }

    #[test]
    fn len_tracks_active_streams() {
        let mut q = DepartureQueue::new();
        assert_eq!(q.len(), 0);
        q.push(dep(10, 0));
        q.push(dep(20, 0));
        assert_eq!(q.len(), 2);
        q.pop_due(SimTime(15));
        assert_eq!(q.len(), 1);
    }
}
