//! The departure event queue.
//!
//! Arrivals replay directly from the (time-sorted) trace, so the only
//! events that need a priority queue are stream completions. The queue is
//! a min-heap keyed by `(time, sequence)`; the sequence number makes
//! ordering fully deterministic when several streams end on the same tick.
//!
//! Layout: departure records live in a slab indexed by compact `u32`
//! handles; the heap itself is a 4-ary min-heap of compact
//! `(time, sequence, handle)` entries, so sift comparisons read keys
//! sequentially from the heap array (no slab chasing) and touch ~half
//! the levels of a binary heap. Every slot additionally links into
//! an intrusive per-server doubly-linked list, which is what makes
//! [`DepartureQueue::extract_active`] — the crash/brownout failover path —
//! O(k log n) for a server carrying k of the n queued streams, instead of
//! the former drain-and-rebuild of the whole heap.

use crate::time::SimTime;
use vod_model::{ServerId, VideoId};

/// Marks a departure that belongs to no coded stream (a whole-copy
/// replica stream, the only kind the paper's model produces).
pub const NO_STREAM: u32 = u32::MAX;

/// A scheduled stream completion.
///
/// A replicated stream is one departure. A coded stream is `k`
/// departures — one fragment share per serving holder — tied together
/// by a shared `stream` id so failover can find the sibling shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Departure {
    /// When the stream ends.
    pub at: SimTime,
    /// The server whose outgoing link frees up.
    pub server: ServerId,
    /// The video being streamed (for per-video accounting).
    pub video: VideoId,
    /// Outgoing bandwidth released, in kbps.
    pub kbps: u64,
    /// Backbone bandwidth released, in kbps (non-zero only for redirected
    /// streams under the backbone extension).
    pub backbone_kbps: u64,
    /// The serving server's failure epoch at admission time; a departure
    /// whose epoch no longer matches is stale (the stream was killed by a
    /// failure) and must not release link bandwidth.
    pub epoch: u32,
    /// Coded stream id tying the `k` fragment-share departures of one
    /// viewer together, or [`NO_STREAM`] for whole-copy streams.
    pub stream: u32,
}

/// Null handle for slab links and list heads.
const NONE: u32 = u32::MAX;

/// Arity of the handle heap: shallower than binary, and four child keys
/// share a cache line's worth of handle loads per sift-down level.
const ARITY: usize = 4;

/// One slab slot: the departure payload plus its heap position and its
/// links in the owning server's intrusive list. The `(at, seq)` ordering
/// key lives in the heap entry itself (comparison locality), not here;
/// free slots are chained through `next`.
///
/// Bandwidth words are packed to `u32` (a stream rate in kbps tops out
/// in the tens of thousands; `u32` holds 4 Tbps): nine `u32` words, 36
/// bytes per active stream in the slab against the public
/// [`Departure`]'s 48. The widening back to `u64` happens on pop.
#[derive(Debug, Clone, Copy)]
struct Slot {
    kbps: u32,
    backbone_kbps: u32,
    server: ServerId,
    video: VideoId,
    epoch: u32,
    stream: u32,
    /// Index of this slot's entry in `DepartureQueue::heap`.
    heap_pos: u32,
    /// Intrusive per-server list links (`NONE` = end).
    prev: u32,
    next: u32,
}

/// One heap entry: the full ordering key plus the slab handle, so sift
/// comparisons never leave the heap array.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    handle: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// Deterministic indexed min-heap of departures.
#[derive(Debug, Default)]
pub struct DepartureQueue {
    /// Slab of departure records, addressed by `u32` handle.
    slots: Vec<Slot>,
    /// Head of the free-slot chain (threaded through `Slot::next`).
    free_head: u32,
    /// 4-ary min-heap of `(at, seq)`-keyed entries.
    heap: Vec<HeapEntry>,
    /// Head of each server's intrusive list of queued departures.
    server_head: Vec<u32>,
    /// Next sequence number; unique per push, so `(at, seq)` totally
    /// orders the heap and ties pop in FIFO order.
    seq: u64,
    /// High-water mark of `len()` over this queue's lifetime.
    peak_len: usize,
    /// Scratch for sorting extracted departures by `(at, seq)`.
    extract_scratch: Vec<(SimTime, u64, Departure)>,
}

impl DepartureQueue {
    /// An empty queue.
    pub fn new() -> Self {
        DepartureQueue {
            free_head: NONE,
            ..Default::default()
        }
    }

    /// An empty queue with list heads for `servers` servers
    /// pre-allocated (the slab and heap grow on demand and amortize to
    /// zero allocations once the run reaches its concurrency peak).
    pub fn with_capacity(servers: usize) -> Self {
        DepartureQueue {
            free_head: NONE,
            server_head: vec![NONE; servers],
            ..Default::default()
        }
    }

    /// Schedules a departure.
    pub fn push(&mut self, d: Departure) {
        let seq = self.seq;
        self.push_with_seq(d, seq);
    }

    /// Schedules a departure under an externally assigned sequence
    /// number (a sharded wrapper hands out globally unique sequence
    /// numbers so per-shard sub-queues merge in exactly the order a
    /// single queue would pop). The internal counter advances past
    /// `seq` so interleaved [`DepartureQueue::push`] calls stay unique.
    pub fn push_with_seq(&mut self, d: Departure, seq: u64) {
        let j = d.server.index();
        if j >= self.server_head.len() {
            self.server_head.resize(j + 1, NONE);
        }
        self.seq = self.seq.max(seq + 1);
        let head = self.server_head[j];
        debug_assert!(
            d.kbps <= u32::MAX as u64 && d.backbone_kbps <= u32::MAX as u64,
            "stream rate exceeds the packed u32 slab word"
        );
        let slot = Slot {
            kbps: d.kbps as u32,
            backbone_kbps: d.backbone_kbps as u32,
            server: d.server,
            video: d.video,
            epoch: d.epoch,
            stream: d.stream,
            heap_pos: self.heap.len() as u32,
            prev: NONE,
            next: head,
        };
        let h = if self.free_head != NONE {
            let h = self.free_head;
            self.free_head = self.slots[h as usize].next;
            self.slots[h as usize] = slot;
            h
        } else {
            debug_assert!(self.slots.len() < NONE as usize);
            self.slots.push(slot);
            (self.slots.len() - 1) as u32
        };
        if head != NONE {
            self.slots[head as usize].prev = h;
        }
        self.server_head[j] = h;
        self.heap.push(HeapEntry {
            at: d.at,
            seq,
            handle: h,
        });
        self.sift_up(self.heap.len() - 1);
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Removes and returns the next departure at or before `now`, if any.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Departure> {
        let root = *self.heap.first()?;
        if root.at > now {
            return None;
        }
        Some(self.remove(root.handle))
    }

    /// The next departure's instant, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// The next departure's full `(time, sequence)` ordering key, if
    /// any — what a cross-shard merge compares to reproduce the single
    /// queue's deterministic pop order.
    pub fn next_key(&self) -> Option<(SimTime, u64)> {
        self.heap.first().map(HeapEntry::key)
    }

    /// Removes every departure on `server` whose epoch matches `epoch` —
    /// the streams actually alive there — into `out` in deterministic
    /// `(time, sequence)` order (`out` is cleared first). Stale entries
    /// (older epochs) stay queued: under the backbone extension their
    /// backbone reservation is still released at the scheduled end. Used
    /// by stream failover to take over a failing server's streams before
    /// the link state kills them; the per-server index makes this
    /// O(k log n) for the server's k streams.
    pub fn extract_active_into(&mut self, server: ServerId, epoch: u32, out: &mut Vec<Departure>) {
        out.clear();
        let Some(&head) = self.server_head.get(server.index()) else {
            return;
        };
        let mut scratch = std::mem::take(&mut self.extract_scratch);
        let mut h = head;
        while h != NONE {
            let next = self.slots[h as usize].next;
            if self.slots[h as usize].epoch == epoch {
                let entry = self.heap[self.slots[h as usize].heap_pos as usize];
                scratch.push((entry.at, entry.seq, self.remove(h)));
            }
            h = next;
        }
        scratch.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        out.extend(scratch.drain(..).map(|(_, _, d)| d));
        self.extract_scratch = scratch;
    }

    /// [`Self::extract_active_into`] returning a fresh `Vec` (test and
    /// non-hot-path convenience).
    pub fn extract_active(&mut self, server: ServerId, epoch: u32) -> Vec<Departure> {
        let mut out = Vec::new();
        self.extract_active_into(server, epoch, &mut out);
        out
    }

    /// Drains every remaining departure in time order (end-of-run cleanup).
    pub fn drain_all(&mut self) -> Vec<Departure> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(d) = self.pop_due(SimTime(u64::MAX)) {
            out.push(d);
        }
        out
    }

    /// Number of scheduled departures (active streams).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no streams are active.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Most departures ever queued at once over this queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// The next sequence number this queue would hand out — the
    /// high-water mark of every seq it has seen, plus one. A sharded
    /// wrapper reads this when a checked-out sub-queue comes back, to
    /// advance its own global counter past everything the worker pushed.
    pub(crate) fn seq_watermark(&self) -> u64 {
        self.seq
    }

    /// Removes slot `h` from the heap and its server list, frees it, and
    /// returns its departure.
    fn remove(&mut self, h: u32) -> Departure {
        let slot = self.slots[h as usize];
        // Unlink from the server list.
        if slot.prev != NONE {
            self.slots[slot.prev as usize].next = slot.next;
        } else {
            self.server_head[slot.server.index()] = slot.next;
        }
        if slot.next != NONE {
            self.slots[slot.next as usize].prev = slot.prev;
        }
        // Swap-remove from the heap, then restore the heap property at
        // the vacated position (the moved entry can need either sift).
        let pos = slot.heap_pos as usize;
        let at = self.heap[pos].at;
        let last = self.heap.len() - 1;
        self.heap.swap_remove(pos);
        if pos < last {
            let moved = self.heap[pos];
            self.slots[moved.handle as usize].heap_pos = pos as u32;
            self.sift_down(pos);
            self.sift_up(self.slots[moved.handle as usize].heap_pos as usize);
        }
        // Chain the slot into the free list.
        self.slots[h as usize].next = self.free_head;
        self.free_head = h;
        Departure {
            at,
            server: slot.server,
            video: slot.video,
            kbps: slot.kbps as u64,
            backbone_kbps: slot.backbone_kbps as u64,
            epoch: slot.epoch,
            stream: slot.stream,
        }
    }

    /// Resident bytes of this queue's backing storage (slab, heap, list
    /// heads, scratch) — the feed for the engine's bytes-per-active-
    /// stream accounting.
    pub fn mem_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>()
            + self.heap.capacity() * std::mem::size_of::<HeapEntry>()
            + self.server_head.capacity() * std::mem::size_of::<u32>()
            + self.extract_scratch.capacity() * std::mem::size_of::<(SimTime, u64, Departure)>()
    }

    /// Hole-shifting sift toward the root: parents slide down until the
    /// moving entry's key fits, writing each displaced entry (and its
    /// backpointer) once.
    fn sift_up(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if self.heap[parent].key() <= entry.key() {
                break;
            }
            self.heap[pos] = self.heap[parent];
            self.slots[self.heap[pos].handle as usize].heap_pos = pos as u32;
            pos = parent;
        }
        self.heap[pos] = entry;
        self.slots[entry.handle as usize].heap_pos = pos as u32;
    }

    /// Hole-shifting sift toward the leaves: the least of up to `ARITY`
    /// children slides up until the moving entry's key fits.
    fn sift_down(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        loop {
            let first_child = pos * ARITY + 1;
            if first_child >= self.heap.len() {
                break;
            }
            let mut best = first_child;
            let end = (first_child + ARITY).min(self.heap.len());
            for child in first_child + 1..end {
                if self.heap[child].key() < self.heap[best].key() {
                    best = child;
                }
            }
            if entry.key() <= self.heap[best].key() {
                break;
            }
            self.heap[pos] = self.heap[best];
            self.slots[self.heap[pos].handle as usize].heap_pos = pos as u32;
            pos = best;
        }
        self.heap[pos] = entry;
        self.slots[entry.handle as usize].heap_pos = pos as u32;
    }
}

/// A bank of per-shard [`DepartureQueue`]s behind the single-queue API.
///
/// Servers are partitioned across sub-queues by an owner map; every
/// push draws one *global* sequence number and forwards it to the
/// owning sub-queue via [`DepartureQueue::push_with_seq`], so the keys
/// in all sub-queues are drawn from one totally ordered stream. Popping
/// the minimum `(time, sequence)` head across sub-queues therefore
/// reproduces, event for event, the order a single queue would pop —
/// the determinism contract the sharded engine is built on. With one
/// shard this degenerates to a thin wrapper over [`DepartureQueue`].
#[derive(Debug)]
pub struct ShardedDepartureQueue {
    queues: Vec<DepartureQueue>,
    /// Owning sub-queue of each server (contiguous block partition).
    owner: Vec<u32>,
    /// Next global sequence number.
    seq: u64,
    /// Live departures across all sub-queues.
    len: usize,
    /// High-water mark of `len` over this queue's lifetime.
    peak_len: usize,
    /// Pushes routed to each sub-queue (per-shard telemetry).
    pushes: Vec<u64>,
}

impl ShardedDepartureQueue {
    /// A queue bank for `servers` servers split into `shards`
    /// contiguous blocks (server `j` goes to shard `j * shards /
    /// servers`). `shards` is clamped to `[1, max(servers, 1)]`.
    pub fn new(servers: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, servers.max(1));
        let owner: Vec<u32> = (0..servers)
            .map(|j| ((j * shards) / servers.max(1)) as u32)
            .collect();
        let mut queues = Vec::with_capacity(shards);
        for s in 0..shards {
            let servers_in = owner.iter().filter(|&&o| o == s as u32).count();
            queues.push(DepartureQueue::with_capacity(servers_in.max(1)));
        }
        ShardedDepartureQueue {
            queues,
            owner,
            seq: 0,
            len: 0,
            peak_len: 0,
            pushes: vec![0; shards],
        }
    }

    /// A queue bank over an explicit owner map: server `j` goes to
    /// sub-queue `owner[j]`, which must be `< shards`. The windowed
    /// coupled engine uses this to align sub-queues with the
    /// [`crate::shard::ShardPlan`] groups so each worker owns exactly
    /// one sub-queue. Pop order is owner-map independent (the global
    /// `(time, sequence)` minimum), so swapping the partition never
    /// changes what a run observes — only per-shard telemetry shapes.
    pub(crate) fn with_owner(owner: Vec<u32>, shards: usize) -> Self {
        let shards = shards.max(1);
        debug_assert!(owner.iter().all(|&s| (s as usize) < shards));
        let mut queues = Vec::with_capacity(shards);
        for s in 0..shards {
            let servers_in = owner.iter().filter(|&&o| o == s as u32).count();
            queues.push(DepartureQueue::with_capacity(servers_in.max(1)));
        }
        ShardedDepartureQueue {
            queues,
            owner,
            seq: 0,
            len: 0,
            peak_len: 0,
            pushes: vec![0; shards],
        }
    }

    /// Number of sub-queues.
    pub fn n_shards(&self) -> usize {
        self.queues.len()
    }

    /// The owning sub-queue index of `server` (servers past the owner
    /// map — never the case in a validated run — fold into the last).
    #[inline]
    fn shard_of(&self, server: ServerId) -> usize {
        self.owner
            .get(server.index())
            .map(|&s| s as usize)
            .unwrap_or(self.queues.len() - 1)
    }

    /// Schedules a departure under the next global sequence number.
    pub fn push(&mut self, d: Departure) {
        let s = self.shard_of(d.server);
        let seq = self.seq;
        self.seq += 1;
        self.queues[s].push_with_seq(d, seq);
        self.pushes[s] += 1;
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
    }

    /// The sub-queue holding the globally minimal `(time, sequence)`
    /// head, if any departure is queued.
    #[inline]
    fn min_shard(&self) -> Option<usize> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (s, q) in self.queues.iter().enumerate() {
            if let Some((at, seq)) = q.next_key() {
                if best.is_none_or(|(bat, bseq, _)| (at, seq) < (bat, bseq)) {
                    best = Some((at, seq, s));
                }
            }
        }
        best.map(|(_, _, s)| s)
    }

    /// Removes and returns the next departure at or before `now`, in
    /// global `(time, sequence)` order.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Departure> {
        let s = self.min_shard()?;
        let d = self.queues[s].pop_due(now)?;
        self.len -= 1;
        Some(d)
    }

    /// The next departure's instant across all sub-queues, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.queues
            .iter()
            .filter_map(DepartureQueue::next_time)
            .min()
    }

    /// Removes every epoch-matching departure on `server` into `out`
    /// in `(time, sequence)` order; see
    /// [`DepartureQueue::extract_active_into`].
    pub fn extract_active_into(&mut self, server: ServerId, epoch: u32, out: &mut Vec<Departure>) {
        let s = self.shard_of(server);
        self.queues[s].extract_active_into(server, epoch, out);
        self.len -= out.len();
    }

    /// [`Self::extract_active_into`] returning a fresh `Vec` (test and
    /// non-hot-path convenience).
    pub fn extract_active(&mut self, server: ServerId, epoch: u32) -> Vec<Departure> {
        let mut out = Vec::new();
        self.extract_active_into(server, epoch, &mut out);
        out
    }

    /// Drains every remaining departure in global `(time, sequence)`
    /// order (end-of-run cleanup).
    pub fn drain_all(&mut self) -> Vec<Departure> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(d) = self.pop_due(SimTime(u64::MAX)) {
            out.push(d);
        }
        out
    }

    /// Number of scheduled departures across all sub-queues.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no streams are active.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Most departures ever queued at once, cluster-wide.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Pushes routed to each sub-queue over this queue's lifetime.
    pub fn per_shard_pushes(&self) -> &[u64] {
        &self.pushes
    }

    /// Reserves `n` consecutive global sequence numbers and returns the
    /// first. The windowed engine pre-assigns one seq per window
    /// arrival in global arrival order, so departures pushed by
    /// parallel workers carry exactly the keys the serial loop would
    /// have drawn; rejected arrivals leave gaps, which is harmless —
    /// only relative order is observable.
    pub(crate) fn reserve_seqs(&mut self, n: u64) -> u64 {
        let base = self.seq;
        self.seq += n;
        base
    }

    /// Checks sub-queue `k` out for exclusive use by a window worker.
    /// Its departures leave the bank's accounting until
    /// [`Self::put_shard`] returns it.
    pub(crate) fn take_shard(&mut self, k: usize) -> DepartureQueue {
        let q = std::mem::take(&mut self.queues[k]);
        self.len -= q.len();
        q
    }

    /// Returns a checked-out sub-queue, folding the worker's pushes
    /// into telemetry and advancing the global sequence counter past
    /// everything the worker assigned. `peak_len` is refreshed from the
    /// post-merge total — within a window it is approximate (workers
    /// pop and push concurrently), which only affects the
    /// `sim.queue.peak_len` gauge, never a report.
    pub(crate) fn put_shard(&mut self, k: usize, q: DepartureQueue, pushes: u64) {
        self.len += q.len();
        self.pushes[k] += pushes;
        self.seq = self.seq.max(q.seq_watermark());
        self.queues[k] = q;
        self.peak_len = self.peak_len.max(self.len);
    }

    /// Resident bytes across all sub-queues plus the owner map — see
    /// [`DepartureQueue::mem_bytes`].
    pub fn mem_bytes(&self) -> usize {
        self.queues
            .iter()
            .map(DepartureQueue::mem_bytes)
            .sum::<usize>()
            + self.owner.capacity() * std::mem::size_of::<u32>()
            + self.pushes.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(at: u64, server: u32) -> Departure {
        Departure {
            at: SimTime(at),
            server: ServerId(server),
            video: VideoId(0),
            kbps: 4_000,
            backbone_kbps: 0,
            epoch: 0,
            stream: NO_STREAM,
        }
    }

    #[test]
    fn next_time_peeks() {
        let mut q = DepartureQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(dep(42, 0));
        q.push(dep(7, 1));
        assert_eq!(q.next_time(), Some(SimTime(7)));
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = DepartureQueue::new();
        q.push(dep(30, 0));
        q.push(dep(10, 1));
        q.push(dep(20, 2));
        assert_eq!(q.pop_due(SimTime(100)).unwrap().at, SimTime(10));
        assert_eq!(q.pop_due(SimTime(100)).unwrap().at, SimTime(20));
        assert_eq!(q.pop_due(SimTime(100)).unwrap().at, SimTime(30));
        assert!(q.pop_due(SimTime(100)).is_none());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = DepartureQueue::new();
        q.push(dep(50, 0));
        assert!(q.pop_due(SimTime(49)).is_none());
        assert!(q.pop_due(SimTime(50)).is_some());
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = DepartureQueue::new();
        q.push(dep(10, 7));
        q.push(dep(10, 3));
        assert_eq!(q.pop_due(SimTime(10)).unwrap().server, ServerId(7));
        assert_eq!(q.pop_due(SimTime(10)).unwrap().server, ServerId(3));
    }

    #[test]
    fn drain_returns_sorted() {
        let mut q = DepartureQueue::new();
        for at in [5u64, 1, 9, 3] {
            q.push(dep(at, 0));
        }
        let times: Vec<u64> = q.drain_all().iter().map(|d| d.at.ticks()).collect();
        assert_eq!(times, vec![1, 3, 5, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn extract_active_partitions_by_server_and_epoch() {
        let mut q = DepartureQueue::new();
        q.push(dep(30, 1));
        q.push(Departure {
            epoch: 1,
            ..dep(10, 0)
        });
        q.push(dep(20, 0)); // epoch 0: stale once we extract epoch 1
        q.push(Departure {
            epoch: 1,
            ..dep(5, 0)
        });
        let got = q.extract_active(ServerId(0), 1);
        assert_eq!(
            got.iter().map(|d| d.at.ticks()).collect::<Vec<_>>(),
            vec![5, 10]
        );
        // The stale epoch-0 entry and the other server's entry survive.
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_due(SimTime(100)).unwrap().at, SimTime(20));
        assert_eq!(q.pop_due(SimTime(100)).unwrap().server, ServerId(1));
    }

    #[test]
    fn len_tracks_active_streams() {
        let mut q = DepartureQueue::new();
        assert_eq!(q.len(), 0);
        q.push(dep(10, 0));
        q.push(dep(20, 0));
        assert_eq!(q.len(), 2);
        q.pop_due(SimTime(15));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn extract_on_server_with_zero_streams_is_empty() {
        let mut q = DepartureQueue::new();
        q.push(dep(10, 0));
        // In-range server with no streams, and a server the queue has
        // never seen (list heads not even allocated).
        assert!(q.extract_active(ServerId(0), 99).is_empty());
        assert!(q.extract_active(ServerId(7), 0).is_empty());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(SimTime(10)).unwrap().at, SimTime(10));
    }

    #[test]
    fn stale_epochs_survive_repeated_extraction() {
        let mut q = DepartureQueue::new();
        for (at, epoch) in [(10u64, 0u32), (20, 1), (30, 2), (40, 1)] {
            q.push(Departure {
                epoch,
                ..dep(at, 0)
            });
        }
        let got = q.extract_active(ServerId(0), 1);
        assert_eq!(
            got.iter().map(|d| d.at.ticks()).collect::<Vec<_>>(),
            vec![20, 40]
        );
        // The other epochs remain; extracting them later still works.
        assert_eq!(q.len(), 2);
        let got = q.extract_active(ServerId(0), 2);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, SimTime(30));
        assert_eq!(q.pop_due(SimTime(99)).unwrap().at, SimTime(10));
        assert!(q.is_empty());
    }

    #[test]
    fn same_tick_mass_departures_extract_in_push_order() {
        let mut q = DepartureQueue::new();
        for v in 0..100u32 {
            q.push(Departure {
                video: VideoId(v),
                ..dep(10, 0)
            });
        }
        q.push(dep(10, 1));
        let got = q.extract_active(ServerId(0), 0);
        // All same-tick: (time, seq) order is push order.
        assert_eq!(
            got.iter()
                .map(|d| d.video.index() as u32)
                .collect::<Vec<_>>(),
            (0..100).collect::<Vec<_>>()
        );
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut q = DepartureQueue::new();
        for round in 0..10u64 {
            for k in 0..8u64 {
                q.push(dep(round * 100 + k, (k % 4) as u32));
            }
            if round % 2 == 0 {
                let got = q.extract_active(ServerId(0), 0);
                for d in got {
                    q.push(d);
                }
            }
            while q.pop_due(SimTime(round * 100 + 7)).is_some() {}
        }
        assert!(q.is_empty());
        // The slab never grew past one round's worth of live slots plus
        // the re-pushed extractions.
        assert!(q.slots.len() <= 16, "slab grew to {}", q.slots.len());
        assert_eq!(q.peak_len(), 8);
    }

    #[test]
    fn sharded_pop_order_matches_single_queue() {
        // Pseudo-random pushes over 8 servers: the 4-shard bank must
        // pop the exact sequence a single queue pops.
        let mut single = DepartureQueue::new();
        let mut sharded = ShardedDepartureQueue::new(8, 4);
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let d = Departure {
                video: VideoId((x >> 32) as u32 % 10),
                ..dep(x % 50, (x >> 8) as u32 % 8)
            };
            single.push(d);
            sharded.push(d);
        }
        assert_eq!(sharded.len(), single.len());
        loop {
            let a = single.pop_due(SimTime(u64::MAX));
            let b = sharded.pop_due(SimTime(u64::MAX));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert!(sharded.is_empty());
        assert_eq!(sharded.peak_len(), single.peak_len());
    }

    #[test]
    fn sharded_routes_by_block_partition() {
        let mut q = ShardedDepartureQueue::new(8, 4);
        assert_eq!(q.n_shards(), 4);
        for server in 0..8u32 {
            q.push(dep(10, server));
        }
        // Contiguous blocks of two servers per shard.
        assert_eq!(q.per_shard_pushes(), &[2, 2, 2, 2]);
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn sharded_extract_and_drain_preserve_global_order() {
        let mut q = ShardedDepartureQueue::new(4, 2);
        q.push(dep(30, 0)); // seq 0, shard 0
        q.push(dep(10, 3)); // seq 1, shard 1
        q.push(dep(10, 0)); // seq 2, shard 0
        q.push(dep(20, 3)); // seq 3, shard 1
        let got = q.extract_active(ServerId(3), 0);
        assert_eq!(
            got.iter().map(|d| d.at.ticks()).collect::<Vec<_>>(),
            vec![10, 20]
        );
        assert_eq!(q.len(), 2);
        let times: Vec<u64> = q.drain_all().iter().map(|d| d.at.ticks()).collect();
        assert_eq!(times, vec![10, 30]);
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 4);
    }

    #[test]
    fn sharded_same_tick_ties_pop_in_push_order_across_shards() {
        let mut q = ShardedDepartureQueue::new(4, 4);
        for server in [3u32, 0, 2, 1] {
            q.push(dep(10, server));
        }
        let servers: Vec<u32> = q.drain_all().iter().map(|d| d.server.0).collect();
        assert_eq!(servers, vec![3, 0, 2, 1]);
    }

    #[test]
    fn with_owner_routes_by_explicit_map_and_checkout_roundtrips() {
        // Interleaved ownership (servers 0,2 -> shard 0; 1,3 -> shard 1)
        // that the contiguous block partition could never produce.
        let mut q = ShardedDepartureQueue::with_owner(vec![0, 1, 0, 1], 2);
        assert_eq!(q.n_shards(), 2);
        for server in 0..4u32 {
            q.push(dep(10 + server as u64, server));
        }
        assert_eq!(q.per_shard_pushes(), &[2, 2]);
        // Check shard 1 out, push under reserved seqs, return it.
        let base = q.reserve_seqs(2);
        assert_eq!(base, 4);
        let mut sub = q.take_shard(1);
        assert_eq!(q.len(), 2);
        sub.push_with_seq(dep(5, 3), base + 1);
        q.put_shard(1, sub, 1);
        assert_eq!(q.len(), 5);
        assert_eq!(q.per_shard_pushes(), &[2, 3]);
        // Global counter advanced past the reservation: the next direct
        // push stays unique.
        q.push(dep(50, 0));
        let order: Vec<u64> = q.drain_all().iter().map(|d| d.at.ticks()).collect();
        assert_eq!(order, vec![5, 10, 11, 12, 13, 50]);
    }

    #[test]
    fn sharded_clamps_shard_count() {
        let q = ShardedDepartureQueue::new(2, 16);
        assert_eq!(q.n_shards(), 2);
        let q = ShardedDepartureQueue::new(5, 0);
        assert_eq!(q.n_shards(), 1);
    }

    #[test]
    fn slot_stays_packed() {
        // The slab word is the dominant per-active-stream cost; keep it
        // at nine u32 words (the memory-smoke ceiling is sized to it).
        assert_eq!(std::mem::size_of::<Slot>(), 36);
        assert_eq!(std::mem::size_of::<HeapEntry>(), 24);
    }

    #[test]
    fn mem_bytes_tracks_backing_storage() {
        let mut q = DepartureQueue::new();
        assert_eq!(q.mem_bytes(), 0);
        for at in 0..100 {
            q.push(dep(at, 0));
        }
        let bytes = q.mem_bytes();
        assert!(bytes >= 100 * (std::mem::size_of::<Slot>() + std::mem::size_of::<HeapEntry>()));
        // Draining frees no capacity: the slab is reused, so the
        // footprint is set by the concurrency peak, not the run length.
        while q.pop_due(SimTime(u64::MAX)).is_some() {}
        assert_eq!(q.mem_bytes(), bytes);

        let mut sq = ShardedDepartureQueue::new(8, 4);
        sq.push(dep(10, 0));
        assert!(sq.mem_bytes() > 0);
    }

    #[test]
    fn wide_rates_roundtrip_through_the_packed_slab() {
        let mut q = DepartureQueue::new();
        q.push(Departure {
            kbps: u32::MAX as u64,
            backbone_kbps: 123_456,
            ..dep(10, 0)
        });
        let d = q.pop_due(SimTime(10)).unwrap();
        assert_eq!(d.kbps, u32::MAX as u64);
        assert_eq!(d.backbone_kbps, 123_456);
    }

    #[test]
    fn interleaved_push_pop_extract_keeps_order() {
        let mut q = DepartureQueue::new();
        q.push(dep(10, 0));
        q.push(dep(5, 1));
        assert_eq!(q.pop_due(SimTime(5)).unwrap().server, ServerId(1));
        q.push(dep(7, 0));
        q.push(dep(3, 0));
        let got = q.extract_active(ServerId(0), 0);
        assert_eq!(
            got.iter().map(|d| d.at.ticks()).collect::<Vec<_>>(),
            vec![3, 7, 10]
        );
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 3);
    }
}
