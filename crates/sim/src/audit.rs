//! Runtime invariant auditor.
//!
//! Silent state corruption in a discrete-event simulator (a leaked
//! bandwidth reservation, a request counted twice, a queue entry that
//! outlives its deadline) surfaces — if at all — as subtly wrong
//! end-of-run statistics. The auditor turns it into an immediate,
//! located [`ModelError::InvariantViolation`] by re-checking three
//! classes of invariant after every processed event:
//!
//! 1. **Request conservation** — every arrival is, at all times, in
//!    exactly one place: served, finally rejected, abandoned, waiting in
//!    the admission queue, or sleeping until a retry.
//! 2. **Bandwidth non-negativity** — no link is committed beyond its
//!    effective (brownout-adjusted) capacity; the shared backbone pool
//!    is within bounds. (`u64` occupancy makes literal negativity
//!    impossible; over-commitment is its observable twin.)
//! 3. **Queue-deadline monotonicity** — event time never goes backwards,
//!    and once the pump has processed instant `t`, no queued request
//!    with an abandonment deadline `<= t` may remain (it must have been
//!    admitted, retried, or abandoned).
//!
//! The engine runs the auditor on every debug build (so all tests and CI
//! exercise it) and in release builds when [`crate::SimConfig::audit`]
//! is set. It only reads state; enabling it never changes a run's
//! outcome, only whether a corrupted run fails fast.

use crate::admission::AdmissionState;
use crate::server::LinkState;
use crate::time::SimTime;
use vod_model::{ModelError, RedundancyMap, ServerId, VideoId};

/// Running totals the engine feeds the auditor (terminal outcomes only;
/// in-flight counts come from [`AdmissionState`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Ledger {
    pub arrivals: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub abandoned: u64,
}

/// See the module docs. One instance lives for one run.
#[derive(Debug, Default)]
pub(crate) struct Auditor {
    last_event: SimTime,
}

impl Auditor {
    pub fn new() -> Self {
        Auditor::default()
    }

    /// Checks all invariants after an event processed at `at`.
    pub fn check(
        &mut self,
        at: SimTime,
        links: &LinkState,
        backbone_free: bool,
        admission: &mut AdmissionState,
        ledger: Ledger,
    ) -> Result<(), ModelError> {
        if at < self.last_event {
            return Err(violation(
                at,
                format!(
                    "event time moved backwards: {} after {}",
                    at, self.last_event
                ),
            ));
        }
        self.last_event = at;

        let settled = ledger.admitted + ledger.rejected + ledger.abandoned;
        let in_flight = admission.in_flight();
        if settled + in_flight != ledger.arrivals {
            return Err(violation(
                at,
                format!(
                    "request conservation broken: {} arrivals vs {} admitted + {} rejected \
                     + {} abandoned + {} in flight",
                    ledger.arrivals, ledger.admitted, ledger.rejected, ledger.abandoned, in_flight
                ),
            ));
        }

        if !links.within_capacity() {
            return Err(violation(
                at,
                "a link is committed beyond its effective capacity".to_string(),
            ));
        }
        if !backbone_free {
            return Err(violation(
                at,
                "backbone pool committed beyond its capacity".to_string(),
            ));
        }

        // Strict: a deadline *equal* to `at` is still being processed
        // within the current instant (the pump pops one event per step).
        if let Some(deadline) = admission.next_deadline() {
            if deadline < at {
                return Err(violation(
                    at,
                    format!("queued request overdue since {deadline} was not processed"),
                ));
            }
        }
        Ok(())
    }

    /// Anti-affinity audit for redundancy placements (run after every
    /// event of a coded run): no video may keep two fragments/replicas
    /// on one server, and when a rack map is configured (`rack_of[j] !=
    /// u32::MAX` marks server `j`'s rack) no coded stripe may
    /// concentrate more than `⌈(k+m) / n_racks⌉` fragments in one rack —
    /// the tightest bound any placement of `k + m` fragments over
    /// `n_racks` racks can honor.
    pub fn check_placement(
        &self,
        at: SimTime,
        holders: &[Vec<ServerId>],
        schemes: &RedundancyMap,
        rack_of: &[u32],
    ) -> Result<(), ModelError> {
        let n_racks = rack_of
            .iter()
            .filter(|&&r| r != u32::MAX)
            .max()
            .map(|&r| r as usize + 1)
            .unwrap_or(0);
        let mut per_rack: Vec<u32> = vec![0; n_racks];
        for (v, servers) in holders.iter().enumerate() {
            for (i, &a) in servers.iter().enumerate() {
                if servers[..i].contains(&a) {
                    return Err(violation(
                        at,
                        format!(
                            "anti-affinity broken: video {} holds two fragments on {a}",
                            VideoId(v as u32)
                        ),
                    ));
                }
            }
            let scheme = schemes.get(VideoId(v as u32));
            if n_racks == 0 || !scheme.is_coded() {
                continue;
            }
            per_rack.iter_mut().for_each(|c| *c = 0);
            // During repair overlap a stripe briefly holds one extra
            // fragment (the replacement completes before the recovered
            // original retires), so bound by the actual holder count;
            // at steady state it equals k + m and the bound is exact.
            let cap = scheme
                .holders()
                .max(servers.len() as u32)
                .div_ceil(n_racks as u32);
            for &a in servers {
                let Some(&r) = rack_of.get(a.index()) else {
                    continue;
                };
                if r == u32::MAX {
                    continue;
                }
                per_rack[r as usize] += 1;
                if per_rack[r as usize] > cap {
                    return Err(violation(
                        at,
                        format!(
                            "rack anti-affinity broken: video {} has more than {cap} \
                             fragments in rack {r}",
                            VideoId(v as u32)
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

fn violation(at: SimTime, what: String) -> ModelError {
    ModelError::InvariantViolation {
        at_min: at.as_min(),
        what,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AdmissionConfig, AdmissionState, PendingRequest, QueuePolicy};
    use vod_model::{ClusterSpec, ServerId, ServerSpec, VideoId};

    fn links() -> LinkState {
        LinkState::new(
            &ClusterSpec::homogeneous(
                1,
                ServerSpec {
                    storage_bytes: 1,
                    bandwidth_kbps: 10_000,
                },
            )
            .unwrap(),
        )
    }

    fn admission() -> AdmissionState {
        AdmissionState::new(&AdmissionConfig {
            policy: QueuePolicy::Queue { patience_min: 1.0 },
            ..AdmissionConfig::default()
        })
    }

    fn ledger(arrivals: u64, admitted: u64) -> Ledger {
        Ledger {
            arrivals,
            admitted,
            rejected: 0,
            abandoned: 0,
        }
    }

    #[test]
    fn clean_state_passes() {
        let mut a = Auditor::new();
        let mut adm = admission();
        a.check(SimTime::ZERO, &links(), true, &mut adm, ledger(3, 3))
            .unwrap();
        a.check(
            SimTime::from_min(1.0),
            &links(),
            true,
            &mut adm,
            ledger(4, 4),
        )
        .unwrap();
    }

    #[test]
    fn lost_request_is_caught() {
        let mut a = Auditor::new();
        let err = a
            .check(
                SimTime::from_min(2.0),
                &links(),
                true,
                &mut admission(),
                ledger(5, 3),
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::InvariantViolation { .. }));
        assert!(err.to_string().contains("conservation"));
        assert!(err.to_string().contains("t=2.000"));
    }

    #[test]
    fn in_flight_requests_balance_the_ledger() {
        let mut a = Auditor::new();
        let mut adm = admission();
        adm.enqueue(
            SimTime::ZERO,
            PendingRequest {
                video: VideoId(0),
                kbps: 4_000,
                duration_s: 600,
                arrived: SimTime::ZERO,
                retries_left: 0,
                attempt: 0,
            },
        );
        a.check(SimTime::ZERO, &links(), true, &mut adm, ledger(1, 0))
            .unwrap();
    }

    #[test]
    fn overcommitted_link_is_caught() {
        let mut l = links();
        l.admit(ServerId(0), 8_000);
        l.set_brownout(ServerId(0), 0.5); // 8 000 used vs 5 000 effective
        let err = Auditor::new()
            .check(SimTime::ZERO, &l, true, &mut admission(), ledger(1, 1))
            .unwrap_err();
        assert!(err.to_string().contains("effective capacity"));
    }

    #[test]
    fn overdue_queue_entry_is_caught() {
        let mut a = Auditor::new();
        let mut adm = admission();
        let deadline = adm.enqueue(
            SimTime::ZERO,
            PendingRequest {
                video: VideoId(0),
                kbps: 4_000,
                duration_s: 600,
                arrived: SimTime::ZERO,
                retries_left: 0,
                attempt: 0,
            },
        );
        // At the deadline instant itself the entry is still fair game…
        a.check(deadline, &links(), true, &mut adm, ledger(1, 0))
            .unwrap();
        // …one tick past it, an unprocessed entry is a violation.
        let err = a
            .check(
                deadline + SimTime(1),
                &links(),
                true,
                &mut adm,
                ledger(1, 0),
            )
            .unwrap_err();
        assert!(err.to_string().contains("overdue"));
    }

    #[test]
    fn time_reversal_is_caught() {
        let mut a = Auditor::new();
        let mut adm = admission();
        a.check(
            SimTime::from_min(5.0),
            &links(),
            true,
            &mut adm,
            ledger(0, 0),
        )
        .unwrap();
        let err = a
            .check(
                SimTime::from_min(4.0),
                &links(),
                true,
                &mut adm,
                ledger(0, 0),
            )
            .unwrap_err();
        assert!(err.to_string().contains("backwards"));
    }
}
