//! The metered replica-actuation layer shared by the failure-repair
//! policy and the online replication controller.
//!
//! [`ReplicaActuator`] owns the *live* content map — which servers hold
//! a servable replica of each video — together with every mechanism
//! that changes it at run time: metered inter-server copies (bandwidth
//! reserved on the source *and* destination links, and on the shared
//! backbone pool under [`crate::AdmissionPolicy::BackboneRedirect`]),
//! up-front storage reservations so Eq. 4 holds throughout, incremental
//! destination planning, deterministic pumping of pending copies, and
//! surplus retirement.
//!
//! Two policy layers drive it and therefore *compete for the same
//! repair-bandwidth budget*:
//!
//! * the failure-repair hooks ([`Self::on_failure`] /
//!   [`Self::on_recovery`] / [`Self::on_brownout`], historically the
//!   `RepairController` that lived in [`crate::repair`]) restore the
//!   per-video `targets` after outages;
//! * the online controller ([`crate::controller`]) *moves* the targets
//!   themselves ([`Self::set_target`]) as observed popularity drifts,
//!   then fills deficits ([`Self::request_fill`] + [`Self::pump`]) and
//!   retires the surplus of cooled videos ([`Self::retire_to_target`]).
//!
//! Completed copies are attributed to one of the two policies by
//! [`CopyPurpose`]: a copy that restores a video to (at most) the bound
//! layout's original degree is `Repair`; a copy that grows it beyond
//! that baseline is `Rebalance`. With the online controller disabled,
//! targets never leave the baseline, so every copy is `Repair` and the
//! actuator is behaviorally identical to the pre-split
//! `RepairController`.
//!
//! The actuator also integrates the redundancy robustness metrics over
//! simulated time: minutes in which *any* video sat below its current
//! replication target and video·minutes with *zero* servable replicas.

use crate::dispatch::Dispatcher;
use crate::repair::RepairConfig;
use crate::server::LinkState;
use crate::time::SimTime;
use std::collections::BTreeSet;
use vod_model::{Catalog, ClusterSpec, Layout, ModelError, ReplicationScheme, ServerId, VideoId};
use vod_placement::traits::PlacementInput;
use vod_placement::{IncrementalPlacement, PlacementPolicy};

/// Which policy layer a completed copy is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CopyPurpose {
    /// Restoring redundancy the bound layout already had (failure
    /// repair).
    Repair,
    /// Growing a video beyond its original degree (online replication
    /// controller).
    Rebalance,
}

/// One in-flight replica copy (or coded-fragment reconstruction).
#[derive(Debug, Clone)]
struct ActiveCopy {
    video: VideoId,
    src: ServerId,
    dst: ServerId,
    kbps: u64,
    bytes: u64,
    /// Backbone bandwidth actually charged (0 unless the policy models a
    /// backbone).
    backbone_kbps: u64,
    done_at: SimTime,
    seq: u64,
    purpose: CopyPurpose,
    /// Additional read sources of a coded reconstruction: rebuilding one
    /// fragment reads `k` surviving fragments, so `k - 1` extra sources
    /// each hold a `kbps` repair reservation for the copy's duration —
    /// the k× repair-read amplification. Empty for replicated copies.
    extra_srcs: Vec<ServerId>,
}

/// Run-time replica tracker, transfer scheduler and retirement engine.
///
/// Owns the *live* content map: which servers hold a servable replica of
/// each video (the bound [`Layout`] is the initial state; completed
/// copies append to it). Data on a down server is not lost — it becomes
/// servable again on recovery — but it does not count toward redundancy
/// while the server is down.
#[derive(Debug)]
pub(crate) struct ReplicaActuator {
    config: RepairConfig,
    n_servers: usize,
    /// Servers holding a full replica (servable when up), per video, in
    /// round-robin dispatch order; copied replicas append at the end.
    holders: Vec<Vec<ServerId>>,
    /// Current desired replica count per video. Initially the bound
    /// layout's degrees; the online controller moves these at run time.
    targets: Vec<u32>,
    video_bytes: Vec<u64>,
    /// Per-server stored bytes, *including* reservations of in-flight
    /// copies (reserved at copy start so concurrent copies cannot
    /// oversubscribe storage — Eq. 4 holds throughout).
    used_bytes: Vec<u64>,
    capacity_bytes: Vec<u64>,
    up: Vec<bool>,
    /// Number of currently-down servers.
    down_count: u32,
    /// Servable replicas (or fragments) on up servers, per video.
    alive: Vec<u32>,
    /// Live holders needed to serve each video: 1 for replicated, `k`
    /// for a coded stripe (also the fan-in of a reconstruction).
    min_live: Vec<u32>,
    /// Whether any video is coded (false keeps every hot path on the
    /// exact replicated code, preserving byte-identical reports).
    any_coded: bool,
    /// Rack of each server (`u32::MAX` = unracked; empty = no rack
    /// model). Coded repair destinations respect the per-rack fragment
    /// bound `⌈(k+m) / n_racks⌉`.
    rack_of: Vec<u32>,
    /// In-flight copies per video.
    in_flight: Vec<u32>,
    /// Videos that may need a copy (lazily re-checked at pump time).
    pending: BTreeSet<u32>,
    /// Planned destinations for new copies, refreshed on every topology
    /// or target change; empty entries fall back to a greedy choice.
    planned: Vec<Vec<ServerId>>,
    copies: Vec<ActiveCopy>,
    seq: u64,
    // Metrics.
    bytes_copied: u64,
    copies_completed: u64,
    drift_bytes_copied: u64,
    drift_copies_completed: u64,
    deficit_videos: u32,
    unavailable_videos: u32,
    /// Fractional per-video deficit weights: a replicated video below
    /// target weighs 1, a coded video with `j` of its `m` parity margin
    /// lost weighs `j / m` (clamped to 1). `deficit_weight` is their sum
    /// — the integrand of `deficit_video_min`. For all-replicated runs
    /// every weight is exactly 0.0 or 1.0, so the f64 sum equals the
    /// old `deficit_videos as f64` bit for bit.
    weight: Vec<f64>,
    deficit_weight: f64,
    coded_reconstructions: u64,
    coded_bytes_read: u64,
    last_update_min: f64,
    deficit_min: f64,
    deficit_video_min: f64,
    unavailability_video_min: f64,
}

impl ReplicaActuator {
    pub fn new(
        catalog: &Catalog,
        cluster: &ClusterSpec,
        layout: &Layout,
        config: RepairConfig,
    ) -> Self {
        let n = cluster.len();
        let m = layout.n_videos();
        let holders: Vec<Vec<ServerId>> = layout.assignments().to_vec();
        // Coded videos store one fragment (`⌈bytes / k⌉`) per holder, not
        // a full replica — every storage computation below inherits this.
        let video_bytes: Vec<u64> = catalog
            .videos()
            .iter()
            .enumerate()
            .map(|(v, vid)| {
                layout
                    .scheme_of(VideoId(v as u32))
                    .stored_bytes(vid.storage_bytes())
            })
            .collect();
        let min_live: Vec<u32> = (0..m)
            .map(|v| layout.scheme_of(VideoId(v as u32)).min_live())
            .collect();
        let any_coded = layout.any_coded();
        let mut used_bytes = vec![0u64; n];
        for (v, servers) in holders.iter().enumerate() {
            for &s in servers {
                used_bytes[s.index()] += video_bytes[v];
            }
        }
        ReplicaActuator {
            config,
            n_servers: n,
            targets: holders.iter().map(|h| h.len() as u32).collect(),
            alive: holders.iter().map(|h| h.len() as u32).collect(),
            holders,
            video_bytes,
            min_live,
            any_coded,
            rack_of: Vec::new(),
            used_bytes,
            capacity_bytes: cluster.servers().iter().map(|s| s.storage_bytes).collect(),
            up: vec![true; n],
            down_count: 0,
            in_flight: vec![0; m],
            pending: BTreeSet::new(),
            planned: vec![Vec::new(); m],
            copies: Vec::new(),
            seq: 0,
            bytes_copied: 0,
            copies_completed: 0,
            drift_bytes_copied: 0,
            drift_copies_completed: 0,
            deficit_videos: 0,
            unavailable_videos: 0,
            weight: vec![0.0; m],
            deficit_weight: 0.0,
            coded_reconstructions: 0,
            coded_bytes_read: 0,
            last_update_min: 0.0,
            deficit_min: 0.0,
            deficit_video_min: 0.0,
            unavailability_video_min: 0.0,
        }
    }

    /// Current servable holders of `video` (dispatch order). Identical to
    /// the bound layout until a copy completes or a replica is retired.
    #[inline]
    pub fn holders(&self, video: VideoId) -> &[ServerId] {
        &self.holders[video.index()]
    }

    /// The whole live content map, indexed by video (dispatch order per
    /// entry) — what the placement auditor checks anti-affinity against.
    pub fn holders_all(&self) -> &[Vec<ServerId>] {
        &self.holders
    }

    /// Installs the rack map coded repair destinations are bounded by:
    /// `rack_of[j]` is server `j`'s rack, `u32::MAX` marks an unracked
    /// server. An empty map (the default) disables the rack bound.
    pub fn set_rack_map(&mut self, rack_of: Vec<u32>) {
        self.rack_of = rack_of;
    }

    /// Coded fragment reconstructions completed.
    pub fn coded_reconstructions(&self) -> u64 {
        self.coded_reconstructions
    }

    /// Bytes read from surviving fragments by completed reconstructions —
    /// `k ×` the fragment bytes written, the repair-read amplification.
    pub fn coded_bytes_read(&self) -> u64 {
        self.coded_bytes_read
    }

    /// Number of servers in the bound cluster.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// The current replication target of video `v`.
    pub fn target(&self, v: usize) -> u32 {
        self.targets[v]
    }

    /// Total replica slots the current targets claim — what the
    /// controller subtracts from [`Self::slot_budget`] to know how many
    /// raises it can fund without demoting anyone.
    pub fn target_slots(&self) -> u64 {
        self.targets.iter().map(|&t| t as u64).sum()
    }

    /// Whether any server is currently down (failure repair may be
    /// claiming the copy-bandwidth budget).
    pub fn any_down(&self) -> bool {
        self.down_count > 0
    }

    /// In-flight copies attributed to failure repair.
    pub fn repair_copies_in_flight(&self) -> usize {
        self.copies
            .iter()
            .filter(|c| c.purpose == CopyPurpose::Repair)
            .count()
    }

    /// Cluster-wide replica-slot budget: how many replicas of the
    /// *largest* video the cluster's total storage can hold. The online
    /// controller apportions targets under this Eq. 4 budget; per-server
    /// feasibility is enforced again at copy-start time.
    pub fn slot_budget(&self) -> u64 {
        let max_bytes = self.video_bytes.iter().copied().max().unwrap_or(1).max(1);
        self.capacity_bytes.iter().map(|&c| c / max_bytes).sum()
    }

    /// Bytes successfully copied on behalf of the online controller.
    pub fn drift_bytes_copied(&self) -> u64 {
        self.drift_bytes_copied
    }

    /// Copies completed on behalf of the online controller.
    pub fn drift_copies_completed(&self) -> u64 {
        self.drift_copies_completed
    }

    /// Advances the metric integrals to `now_min`.
    fn integrate(&mut self, now_min: f64) {
        let dt = (now_min - self.last_update_min).max(0.0);
        if self.deficit_videos > 0 {
            self.deficit_min += dt;
        }
        self.deficit_video_min += dt * self.deficit_weight;
        self.unavailability_video_min += dt * self.unavailable_videos as f64;
        self.last_update_min = now_min;
    }

    /// Recomputes video `v`'s fractional deficit weight after an alive-
    /// or target-count change. A replicated video weighs exactly 0.0 or
    /// 1.0 (so all-replicated runs integrate the same f64 sequence as
    /// the pre-coded integer counter); a coded video that lost `j` of
    /// its `m = target - k` parity fragments weighs `j / m`, clamping to
    /// 1 once losses dip into data fragments.
    fn refresh_weight(&mut self, v: usize) {
        let (target, alive, min_live) = (self.targets[v], self.alive[v], self.min_live[v]);
        let w = if min_live > 1 {
            let margin = target.saturating_sub(min_live).max(1);
            let lost = target.saturating_sub(alive);
            (lost as f64 / margin as f64).min(1.0)
        } else if alive < target {
            1.0
        } else {
            0.0
        };
        self.deficit_weight += w - self.weight[v];
        self.weight[v] = w;
    }

    /// Applies an alive-count delta, maintaining the deficit and
    /// unavailability counters (call [`Self::integrate`] first).
    fn bump_alive(&mut self, v: usize, delta: i64) {
        let before = self.alive[v];
        let after = (before as i64 + delta) as u32;
        self.alive[v] = after;
        let target = self.targets[v];
        match (before < target, after < target) {
            (false, true) => self.deficit_videos += 1,
            (true, false) => self.deficit_videos -= 1,
            _ => {}
        }
        // A coded video is unavailable below `k` live fragments; a
        // replicated one below its single-copy floor (the old `== 0`).
        let min_live = self.min_live[v];
        match (before < min_live, after < min_live) {
            (false, true) => self.unavailable_videos += 1,
            (true, false) => self.unavailable_videos -= 1,
            _ => {}
        }
        self.refresh_weight(v);
    }

    /// Moves video `v`'s replication target to `target`, keeping the
    /// deficit integral consistent. The caller is responsible for
    /// queueing a fill ([`Self::request_fill`]) after a raise and for
    /// retiring surplus ([`Self::retire_to_target`]) after a lowering.
    pub fn set_target(&mut self, now_min: f64, v: usize, target: u32) {
        self.integrate(now_min);
        let old = self.targets[v];
        if old == target {
            return;
        }
        let alive = self.alive[v];
        match (alive < old, alive < target) {
            (false, true) => self.deficit_videos += 1,
            (true, false) => self.deficit_videos -= 1,
            _ => {}
        }
        self.targets[v] = target;
        self.refresh_weight(v);
    }

    /// Marks video `v` as possibly needing copies; the next
    /// [`Self::pump`] re-checks its deficit.
    pub fn request_fill(&mut self, v: usize) {
        self.pending.insert(v as u32);
    }

    /// Server-down hook. Call *after* [`LinkState::fail`]: updates alive
    /// counts, aborts copies touching the dead server (their partial data
    /// is discarded, their reservations released, the videos re-queued),
    /// re-plans destinations, and pumps.
    pub fn on_failure(
        &mut self,
        at: SimTime,
        server: ServerId,
        weights: &[u64],
        links: &mut LinkState,
        dispatcher: &mut Dispatcher,
    ) {
        self.integrate(at.as_min());
        if self.up[server.index()] {
            self.up[server.index()] = false;
            self.down_count += 1;
        }
        self.abort_copies_touching(server, links, dispatcher);
        for v in 0..self.holders.len() {
            if self.holders[v].contains(&server) {
                self.bump_alive(v, -1);
                if self.alive[v] < self.targets[v] {
                    self.pending.insert(v as u32);
                }
            }
        }
        self.replan(weights);
        self.pump(at, links, dispatcher);
    }

    /// Server-up hook. Call *after* [`LinkState::recover`]: the server's
    /// stored replicas become servable again, and its fresh link may
    /// unblock stalled copies. Videos its return pushes *above* target
    /// shed their surplus — in-flight copies are aborted and servable
    /// extras retired — so spare storage and copy bandwidth recycle
    /// toward the next deficit instead of accreting forever.
    pub fn on_recovery(
        &mut self,
        at: SimTime,
        server: ServerId,
        links: &mut LinkState,
        dispatcher: &mut Dispatcher,
    ) {
        self.integrate(at.as_min());
        if !self.up[server.index()] {
            self.up[server.index()] = true;
            self.down_count -= 1;
        }
        for v in 0..self.holders.len() {
            if self.holders[v].contains(&server) {
                self.bump_alive(v, 1);
            }
        }
        let mut i = 0;
        while i < self.copies.len() {
            let v = self.copies[i].video.index();
            if self.alive[v] >= self.targets[v] {
                let c = self.copies.remove(i);
                Self::release_copy(&c, links, dispatcher);
                self.used_bytes[c.dst.index()] -= c.bytes;
                self.in_flight[v] -= 1;
            } else {
                i += 1;
            }
        }
        for v in 0..self.holders.len() {
            self.retire_surplus(v);
        }
        self.pump(at, links, dispatcher);
    }

    /// Retires servable copies of `v` beyond its current target and
    /// returns how many were removed. Only copies past the target-sized
    /// prefix of the holder list are eligible, so under a stationary
    /// target only repair-added copies are ever retired; when the online
    /// controller *lowers* a target the prefix shrinks with it and
    /// original-layout replicas of the cooled video become retirable
    /// too. Freed storage becomes available to future copies.
    fn retire_surplus(&mut self, v: usize) -> u32 {
        let prefix = self.targets[v] as usize;
        let mut retired = 0;
        while self.alive[v] > self.targets[v] {
            let Some(pos) =
                (prefix..self.holders[v].len()).find(|&i| self.up[self.holders[v][i].index()])
            else {
                break;
            };
            let s = self.holders[v].remove(pos);
            self.used_bytes[s.index()] -= self.video_bytes[v];
            self.bump_alive(v, -1);
            retired += 1;
        }
        retired
    }

    /// Public face of [`Self::retire_surplus`] for the online
    /// controller: call after lowering a target with
    /// [`Self::set_target`]. Returns the number of replicas retired.
    pub fn retire_to_target(&mut self, v: usize) -> u32 {
        self.retire_surplus(v)
    }

    /// Releases every reservation an aborted or completed copy holds:
    /// repair bandwidth on the source, the destination, and — for a
    /// coded reconstruction — each extra read source, plus any backbone
    /// charge.
    fn release_copy(c: &ActiveCopy, links: &mut LinkState, dispatcher: &mut Dispatcher) {
        links.release_repair(c.src, c.kbps);
        for &s in &c.extra_srcs {
            links.release_repair(s, c.kbps);
        }
        links.release_repair(c.dst, c.kbps);
        if c.backbone_kbps > 0 {
            dispatcher.release_backbone(c.backbone_kbps);
        }
    }

    fn abort_copies_touching(
        &mut self,
        server: ServerId,
        links: &mut LinkState,
        dispatcher: &mut Dispatcher,
    ) {
        let mut i = 0;
        while i < self.copies.len() {
            let touches = {
                let c = &self.copies[i];
                c.src == server || c.dst == server || c.extra_srcs.contains(&server)
            };
            if touches {
                let c = self.copies.remove(i);
                // `release_repair` is a no-op on the endpoint that just
                // failed (its reservations were cleared by `fail()`).
                Self::release_copy(&c, links, dispatcher);
                self.used_bytes[c.dst.index()] -= c.bytes;
                self.in_flight[c.video.index()] -= 1;
                self.pending.insert(c.video.0);
            } else {
                i += 1;
            }
        }
    }

    /// Recomputes planned destinations for new copies with the
    /// incremental-placement policy: previous = the full content map,
    /// down servers get zero slot capacity (their replicas are re-placed
    /// on survivors), and per-video weights are the caller's demand
    /// estimate (+1 so cold titles still place). On any placement error
    /// the plan stays empty and the pump falls back to a greedy choice.
    pub fn replan(&mut self, weights: &[u64]) {
        for p in &mut self.planned {
            p.clear();
        }
        if !self.config.enabled() {
            return;
        }
        let m = self.holders.len();
        let counts: Vec<u32> = (0..m)
            .map(|v| self.targets[v].max(self.holders[v].len() as u32))
            .collect();
        let Ok(scheme) = ReplicationScheme::new(counts) else {
            return;
        };
        let w: Vec<f64> = (0..m)
            .map(|v| weights.get(v).copied().unwrap_or(0) as f64 + 1.0)
            .collect();
        let mut held_slots = vec![0u64; self.n_servers];
        let mut held_bytes = vec![0u64; self.n_servers];
        for (v, servers) in self.holders.iter().enumerate() {
            for &s in servers {
                held_slots[s.index()] += 1;
                held_bytes[s.index()] += self.video_bytes[v];
            }
        }
        let uniform = self.video_bytes.windows(2).all(|w| w[0] == w[1]);
        let max_bytes = self.video_bytes.iter().copied().max().unwrap_or(1).max(1);
        let capacities: Vec<u64> = (0..self.n_servers)
            .map(|j| {
                if !self.up[j] {
                    // No additions on a dead server; its kept content is
                    // dropped by the keep phase and re-placed elsewhere.
                    0
                } else if uniform {
                    self.capacity_bytes[j] / max_bytes
                } else {
                    held_slots[j] + self.capacity_bytes[j].saturating_sub(held_bytes[j]) / max_bytes
                }
            })
            .collect();
        let Ok(previous) = Layout::new(self.n_servers, self.holders.clone()) else {
            return;
        };
        let input = PlacementInput {
            scheme: &scheme,
            weights: &w,
            n_servers: self.n_servers,
            capacities: &capacities,
        };
        if let Ok(plan) = IncrementalPlacement::from_previous(previous).place(&input) {
            for v in 0..m {
                let vid = VideoId(v as u32);
                self.planned[v] = plan
                    .replicas_of(vid)
                    .iter()
                    .copied()
                    .filter(|s| !self.holders[v].contains(s))
                    .collect();
            }
        }
    }

    /// True when `dst` can receive a new replica of video `v` right now.
    fn dst_ok(&self, v: usize, dst: ServerId, bw: u64, links: &LinkState) -> bool {
        let j = dst.index();
        self.up[j]
            && links.free_kbps(dst) >= bw
            && !self.holders[v].contains(&dst)
            && self
                .copies
                .iter()
                .all(|c| !(c.video.index() == v && c.dst == dst))
            && self.used_bytes[j] + self.video_bytes[v] <= self.capacity_bytes[j]
            && self.rack_fits(v, dst)
    }

    /// Rack anti-affinity for coded stripes: placing a fragment of `v`
    /// on `dst` must keep `dst`'s rack at or below
    /// `⌈(k+m) / n_racks⌉` *live-or-pending* fragments (down holders do
    /// not count — their rack slot is exactly where the replacement may
    /// go, and recovery retires the surplus). Replicated videos and
    /// rackless clusters are unconstrained.
    fn rack_fits(&self, v: usize, dst: ServerId) -> bool {
        if self.min_live[v] <= 1 || self.rack_of.is_empty() {
            return true;
        }
        let Some(&r) = self.rack_of.get(dst.index()) else {
            return true;
        };
        if r == u32::MAX {
            return true;
        }
        let n_racks = self
            .rack_of
            .iter()
            .filter(|&&x| x != u32::MAX)
            .max()
            .map(|&x| x as usize + 1)
            .unwrap_or(0);
        if n_racks == 0 {
            return true;
        }
        let cap = (self.targets[v] as usize).div_ceil(n_racks) as u32;
        let mut in_rack = 0u32;
        for &h in &self.holders[v] {
            if self.up[h.index()] && self.rack_of.get(h.index()) == Some(&r) {
                in_rack += 1;
            }
        }
        for c in &self.copies {
            if c.video.index() == v && self.rack_of.get(c.dst.index()) == Some(&r) {
                in_rack += 1;
            }
        }
        in_rack < cap
    }

    /// Destination for the next copy of `v`: the incremental plan's pick
    /// when still valid, else greedily the least-full (by stored bytes)
    /// eligible server.
    fn choose_dst(&self, v: usize, bw: u64, links: &LinkState) -> Option<ServerId> {
        if let Some(&dst) = self.planned[v]
            .iter()
            .find(|&&d| self.dst_ok(v, d, bw, links))
        {
            return Some(dst);
        }
        (0..self.n_servers)
            .map(|j| ServerId(j as u32))
            .filter(|&d| self.dst_ok(v, d, bw, links))
            .min_by_key(|&d| (self.used_bytes[d.index()], d))
    }

    /// Starts as many pending copies as bandwidth, storage and the
    /// concurrency cap allow. Deterministic: videos in ascending id
    /// order, sources by most free link (ties to the lowest id). A copy
    /// restoring a video to (at most) its original layout degree is
    /// attributed to failure repair; one growing it past that baseline
    /// to the online controller.
    pub fn pump(&mut self, now: SimTime, links: &mut LinkState, dispatcher: &mut Dispatcher) {
        if !self.config.enabled() || self.pending.is_empty() {
            return;
        }
        let bw = self.config.bandwidth_kbps;
        let mut vids: Vec<u32> = self.pending.iter().copied().collect();
        if self.any_coded {
            // Most-urgent-first: the stripe with the fewest surviving
            // fragments above its serviceability floor repairs first
            // (ties to the lowest video id). All-replicated runs keep the
            // plain ascending order, byte for byte.
            vids.sort_by_key(|&vid| {
                let v = vid as usize;
                (self.alive[v] as i64 - self.min_live[v] as i64, vid)
            });
        }
        for vid in vids {
            if self.copies.len() >= self.config.max_concurrent {
                return;
            }
            let v = vid as usize;
            let need = self.targets[v] as i64 - self.alive[v] as i64 - self.in_flight[v] as i64;
            if need <= 0 {
                if self.in_flight[v] == 0 {
                    self.pending.remove(&vid);
                }
                continue;
            }
            for _ in 0..need {
                if self.copies.len() >= self.config.max_concurrent {
                    return;
                }
                // A coded reconstruction reads `k` surviving fragments at
                // once; a replicated copy reads a single source. Sources
                // rank by most free link, ties to the lowest id —
                // identical to the old `max_by_key` pick at fan-in 1.
                let fan_in = self.min_live[v] as usize;
                let mut srcs: Vec<ServerId> = self.holders[v]
                    .iter()
                    .copied()
                    .filter(|&s| links.is_up(s) && links.free_kbps(s) >= bw)
                    .collect();
                srcs.sort_by_key(|&s| (std::cmp::Reverse(links.free_kbps(s)), s));
                if srcs.len() < fan_in {
                    // Fewer than `k` servable fragments: reconstruction
                    // is impossible until a holder recovers.
                    break;
                }
                srcs.truncate(fan_in);
                let src = srcs[0];
                let extra_srcs: Vec<ServerId> = srcs[1..].to_vec();
                let Some(dst) = self.choose_dst(v, bw, links) else {
                    break;
                };
                // Under a backbone policy the inter-server copy transits
                // the backbone; elsewhere it is charged nowhere extra.
                let Some(backbone_kbps) = dispatcher.try_reserve_repair_backbone(bw) else {
                    // Backbone saturated: nothing else can start either.
                    return;
                };
                // Cause-based attribution: the copy is failure *repair*
                // only when this video currently has a failed holder —
                // that is the only way a replica is ever lost. Anything
                // else (a controller raise, a demote-then-repromote
                // refill) is drift rebalancing. With the controller off,
                // targets equal the layout's degrees and a deficit
                // implies a down holder, so every copy stays Repair —
                // the pre-controller accounting, byte for byte.
                let has_down_holder = self.holders[v].iter().any(|&s| !self.up[s.index()]);
                let purpose = if has_down_holder && self.alive[v] < self.targets[v] {
                    CopyPurpose::Repair
                } else {
                    CopyPurpose::Rebalance
                };
                links.reserve_repair(src, bw);
                for &s in &extra_srcs {
                    links.reserve_repair(s, bw);
                }
                links.reserve_repair(dst, bw);
                self.used_bytes[dst.index()] += self.video_bytes[v];
                self.in_flight[v] += 1;
                let dur_ms = (self.video_bytes[v].saturating_mul(8)).div_ceil(bw).max(1);
                self.copies.push(ActiveCopy {
                    video: VideoId(vid),
                    src,
                    dst,
                    kbps: bw,
                    bytes: self.video_bytes[v],
                    backbone_kbps,
                    done_at: SimTime(now.ticks() + dur_ms),
                    seq: self.seq,
                    purpose,
                    extra_srcs,
                });
                self.seq += 1;
            }
        }
    }

    /// The earliest in-flight copy completion, if any.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.copies.iter().map(|c| c.done_at).min()
    }

    /// Whether any video still waits for a copy to start. While this is
    /// set, freed link bandwidth can start a copy at any event — a
    /// global coupling the windowed engine must not parallelize across,
    /// so it only opens windows when the pending set is empty (in-flight
    /// copies are fine: their completions bound the window).
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Completes the earliest due copy: releases its bandwidth, makes the
    /// replica servable, and updates redundancy accounting. Returns the
    /// `(video, destination)` of the integrated replica — the windowed
    /// engine checks the destination against its shard plan, since a
    /// cross-group copy breaks group containment. Errors when no copy is
    /// in flight (the engine only calls this when
    /// [`Self::next_completion`] reported one).
    pub fn complete_next(
        &mut self,
        links: &mut LinkState,
        dispatcher: &mut Dispatcher,
    ) -> Result<(VideoId, ServerId), ModelError> {
        let idx = self
            .copies
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.done_at, c.seq))
            .map(|(i, _)| i)
            .ok_or(ModelError::Internal {
                context: "complete_next called with no in-flight copies",
            })?;
        let c = self.copies.remove(idx);
        let integrated = (c.video, c.dst);
        Self::release_copy(&c, links, dispatcher);
        self.integrate(c.done_at.as_min());
        // The reservation made at copy start now backs a real replica.
        self.holders[c.video.index()].push(c.dst);
        self.in_flight[c.video.index()] -= 1;
        self.bump_alive(c.video.index(), 1);
        let fan_in = self.min_live[c.video.index()] as u64;
        if fan_in > 1 {
            // Rebuilding the fragment read `k` surviving fragments for
            // the fragment it wrote: the k× repair-read amplification.
            self.coded_reconstructions += 1;
            self.coded_bytes_read += c.bytes * fan_in;
        }
        match c.purpose {
            CopyPurpose::Repair => {
                self.bytes_copied += c.bytes;
                self.copies_completed += 1;
            }
            CopyPurpose::Rebalance => {
                self.drift_bytes_copied += c.bytes;
                self.drift_copies_completed += 1;
            }
        }
        // A recovery may have raced this copy past its target.
        self.retire_surplus(c.video.index());
        self.pump(c.done_at, links, dispatcher);
        Ok(integrated)
    }

    /// Brownout hook: while `server` is committed beyond its shrunken
    /// effective capacity, abort copies touching it — farthest-from-done
    /// first, so the least sunk work is discarded. Aborted videos
    /// re-queue and re-pump once capacity returns. The engine sheds
    /// active streams only for the excess that remains.
    pub fn on_brownout(
        &mut self,
        at: SimTime,
        server: ServerId,
        links: &mut LinkState,
        dispatcher: &mut Dispatcher,
    ) {
        self.integrate(at.as_min());
        let j = server.index();
        while links.used_kbps()[j] + links.repair_kbps()[j] > links.effective_capacity_kbps(server)
        {
            let Some(i) = self
                .copies
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    c.src == server || c.dst == server || c.extra_srcs.contains(&server)
                })
                .max_by_key(|(_, c)| (c.done_at, c.seq))
                .map(|(i, _)| i)
            else {
                break;
            };
            let c = self.copies.remove(i);
            Self::release_copy(&c, links, dispatcher);
            self.used_bytes[c.dst.index()] -= c.bytes;
            self.in_flight[c.video.index()] -= 1;
            self.pending.insert(c.video.0);
        }
    }

    /// End of run: aborts in-flight copies (releasing every reservation,
    /// so the engine's zero-residual asserts hold) and closes the metric
    /// integrals at the horizon.
    pub fn finish(&mut self, horizon_min: f64, links: &mut LinkState, dispatcher: &mut Dispatcher) {
        self.integrate(horizon_min.max(self.last_update_min));
        for c in std::mem::take(&mut self.copies) {
            Self::release_copy(&c, links, dispatcher);
            self.used_bytes[c.dst.index()] -= c.bytes;
            self.in_flight[c.video.index()] -= 1;
        }
    }

    /// Bytes of replica data successfully copied by failure repair.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Failure-repair copies completed (replicas added).
    pub fn copies_completed(&self) -> u64 {
        self.copies_completed
    }

    /// Minutes during which at least one video was below its replication
    /// target — the time to full redundancy, summed over every deficit
    /// window of the run. Under popularity-skewed replication this union
    /// is pinned by the single-replica cold tail (unrepairable while
    /// their server is down); [`Self::deficit_video_min`] is the
    /// discriminating integral. With the online controller active the
    /// integral also covers windows opened by *raised* targets awaiting
    /// their copies.
    pub fn deficit_min(&self) -> f64 {
        self.deficit_min
    }

    /// Video·minutes below replication target — the replica-deficit
    /// integral copying actually drains (each completed copy removes one
    /// video from the deficit for the remainder of the window).
    pub fn deficit_video_min(&self) -> f64 {
        self.deficit_video_min
    }

    /// Video·minutes with zero servable replicas.
    pub fn unavailability_video_min(&self) -> f64 {
        self.unavailability_video_min
    }

    /// Test/debug invariant: per-server stored bytes (including in-flight
    /// reservations) within capacity, and no video with two replicas on
    /// one server.
    #[cfg(test)]
    pub fn check_invariants(&self) {
        for j in 0..self.n_servers {
            assert!(
                self.used_bytes[j] <= self.capacity_bytes[j],
                "server {j} over storage: {} > {}",
                self.used_bytes[j],
                self.capacity_bytes[j]
            );
        }
        let mut down = 0;
        for (j, &up) in self.up.iter().enumerate() {
            if !up {
                down += 1;
            }
            let _ = j;
        }
        assert_eq!(down, self.down_count, "down_count out of sync");
        for (v, servers) in self.holders.iter().enumerate() {
            let alive_holders = servers.iter().filter(|s| self.up[s.index()]).count() as u32;
            assert_eq!(
                alive_holders, self.alive[v],
                "video {v}: alive count {} disagrees with up holders {alive_holders}",
                self.alive[v]
            );
            for (i, &s) in servers.iter().enumerate() {
                assert!(
                    !servers[..i].contains(&s),
                    "video {v} has two replicas on server {}",
                    s.index()
                );
            }
            for c in &self.copies {
                if c.video.index() == v {
                    assert!(
                        !servers.contains(&c.dst),
                        "in-flight copy of video {v} targets a holder"
                    );
                }
            }
        }
        let mut per_video = vec![0u32; self.holders.len()];
        for c in &self.copies {
            per_video[c.video.index()] += 1;
            // A coded reconstruction carries exactly k - 1 extra read
            // sources, all distinct from each other and from src/dst.
            let v = c.video.index();
            let fan_in = self.min_live[v] as usize;
            assert_eq!(
                c.extra_srcs.len(),
                fan_in.saturating_sub(1),
                "video {v}: reconstruction fan-in mismatch"
            );
            let mut ends = vec![c.src, c.dst];
            ends.extend_from_slice(&c.extra_srcs);
            ends.sort();
            for w in ends.windows(2) {
                assert_ne!(w[0], w[1], "video {v}: duplicate copy endpoint");
            }
        }
        assert_eq!(per_video, self.in_flight, "in-flight counters out of sync");
        let fresh: f64 = self.weight.iter().sum();
        assert!(
            (self.deficit_weight - fresh).abs() < 1e-9,
            "deficit weight {} drifted from per-video sum {fresh}",
            self.deficit_weight
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vod_model::redundancy::{RedundancyMap, RedundancyScheme};
    use vod_model::{BitRate, ServerSpec};
    use vod_placement::place_coded;

    fn world(
        n: usize,
        m: usize,
        degree: usize,
        storage_slots: u64,
    ) -> (Catalog, ClusterSpec, Layout) {
        let catalog = Catalog::fixed_rate(m, BitRate::MPEG2, 600).unwrap();
        let bytes = catalog.videos()[0].storage_bytes();
        let cluster = ClusterSpec::homogeneous(
            n,
            ServerSpec {
                storage_bytes: storage_slots * bytes,
                bandwidth_kbps: 100_000,
            },
        )
        .unwrap();
        // Round-robin degree-`degree` layout.
        let assignments: Vec<Vec<ServerId>> = (0..m)
            .map(|v| {
                (0..degree)
                    .map(|r| ServerId(((v * degree + r) % n) as u32))
                    .collect()
            })
            .collect();
        let layout = Layout::new(n, assignments).unwrap();
        (catalog, cluster, layout)
    }

    fn enabled(bandwidth_kbps: u64) -> RepairConfig {
        RepairConfig {
            bandwidth_kbps,
            max_concurrent: 4,
        }
    }

    /// A uniformly `Coded { k, m }` world: fragments are `⌈bytes/k⌉`
    /// each, placed by [`place_coded`] over `racks`.
    fn coded_world(
        n: usize,
        m_videos: usize,
        k: u32,
        par: u32,
        storage_slots: u64,
        racks: &[Vec<ServerId>],
    ) -> (Catalog, ClusterSpec, Layout) {
        let catalog = Catalog::fixed_rate(m_videos, BitRate::MPEG2, 600).unwrap();
        let frag = catalog.videos()[0].storage_bytes().div_ceil(k as u64);
        let cluster = ClusterSpec::homogeneous(
            n,
            ServerSpec {
                storage_bytes: storage_slots * frag,
                bandwidth_kbps: 100_000,
            },
        )
        .unwrap();
        let map = RedundancyMap::uniform(m_videos, RedundancyScheme::Coded { k, m: par }).unwrap();
        let layout = place_coded(n, racks, &map).unwrap();
        (catalog, cluster, layout)
    }

    #[test]
    fn failure_queues_and_repairs_deficit() {
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(50_000));
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(10.0),
            ServerId(0),
            &[0; 8],
            &mut links,
            &mut disp,
        );
        c.check_invariants();
        assert!(c.next_completion().is_some(), "copies must start");
        assert!(links.repair_kbps().iter().any(|&k| k > 0));
        // Complete every copy; redundancy must be fully restored.
        while c.next_completion().is_some() {
            c.complete_next(&mut links, &mut disp).unwrap();
            c.check_invariants();
        }
        for v in 0..8 {
            assert!(
                c.alive[v] >= c.targets[v],
                "video {v}: alive {} < target {}",
                c.alive[v],
                c.targets[v]
            );
        }
        assert_eq!(c.deficit_videos, 0);
        assert!(c.bytes_copied() > 0);
        // Failure rebuilds restore baseline redundancy: Repair purpose.
        assert_eq!(c.drift_bytes_copied(), 0);
        assert_eq!(c.drift_copies_completed(), 0);
        assert_eq!(links.repair_kbps().iter().sum::<u64>(), 0);
    }

    #[test]
    fn disabled_repair_never_copies() {
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, RepairConfig::default());
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(10.0),
            ServerId(0),
            &[0; 8],
            &mut links,
            &mut disp,
        );
        assert!(c.next_completion().is_none());
        assert!(c.deficit_videos > 0);
        // The deficit integral still accrues without repair.
        c.finish(90.0, &mut links, &mut disp);
        assert!(c.deficit_min() > 0.0);
    }

    #[test]
    fn no_alive_source_stalls_until_recovery() {
        // Degree 1: the failed server held the only copy of its videos.
        let (catalog, cluster, layout) = world(2, 4, 1, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 4);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(50_000));
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(5.0),
            ServerId(0),
            &[0; 4],
            &mut links,
            &mut disp,
        );
        // Videos on s0 have zero alive replicas and no source: no copy.
        assert!(c.next_completion().is_none());
        assert!(c.unavailable_videos > 0);
        assert!(c.any_down());
        links.recover(ServerId(0));
        c.on_recovery(SimTime::from_min(25.0), ServerId(0), &mut links, &mut disp);
        assert_eq!(c.unavailable_videos, 0);
        assert_eq!(c.deficit_videos, 0);
        assert!(!c.any_down());
        c.finish(90.0, &mut links, &mut disp);
        // 20 minutes, 2 videos were on s0 (m=4 over 2 servers at degree 1).
        assert!((c.unavailability_video_min() - 40.0).abs() < 1e-6);
        assert!((c.deficit_min() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn storage_reservation_blocks_oversubscription() {
        // Survivor has exactly one free slot: only one of the two lost
        // replicas can be rebuilt.
        let catalog = Catalog::fixed_rate(3, BitRate::MPEG2, 600).unwrap();
        let bytes = catalog.videos()[0].storage_bytes();
        let cluster_tight = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: 2 * bytes,
                bandwidth_kbps: 100_000,
            },
        )
        .unwrap();
        let layout = Layout::new(
            2,
            vec![vec![ServerId(0)], vec![ServerId(0)], vec![ServerId(1)]],
        )
        .unwrap();
        let mut links = LinkState::new(&cluster_tight);
        let mut disp = Dispatcher::new(Default::default(), 3);
        let mut c = ReplicaActuator::new(&catalog, &cluster_tight, &layout, enabled(50_000));
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(1.0),
            ServerId(0),
            &[0; 3],
            &mut links,
            &mut disp,
        );
        c.check_invariants();
        // Both lost videos have no alive source (degree 1) — no copies.
        assert_eq!(c.copies.len(), 0);
    }

    #[test]
    fn recovery_retires_repair_added_surplus() {
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(50_000));
        let used_before = c.used_bytes.clone();
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(10.0),
            ServerId(0),
            &[0; 8],
            &mut links,
            &mut disp,
        );
        while c.next_completion().is_some() {
            c.complete_next(&mut links, &mut disp).unwrap();
        }
        assert!(c.bytes_copied() > 0);
        // The rebuilt copies occupy extra storage while s0 is down...
        assert!(c.used_bytes.iter().sum::<u64>() > used_before.iter().sum::<u64>());
        links.recover(ServerId(0));
        c.on_recovery(SimTime::from_min(30.0), ServerId(0), &mut links, &mut disp);
        c.check_invariants();
        // ...and are retired on its return: every video back at exactly
        // its target, all spare storage reclaimed.
        for v in 0..8 {
            assert_eq!(c.alive[v], c.targets[v]);
            assert_eq!(c.holders[v].len(), c.targets[v] as usize);
        }
        assert_eq!(c.used_bytes, used_before);
        assert_eq!(links.repair_kbps().iter().sum::<u64>(), 0);
    }

    #[test]
    fn recovery_aborts_unneeded_in_flight_copies() {
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(50_000));
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(10.0),
            ServerId(0),
            &[0; 8],
            &mut links,
            &mut disp,
        );
        assert!(!c.copies.is_empty());
        assert!(c.repair_copies_in_flight() > 0);
        // The server comes back before any copy completes: every copy is
        // now pointless and must be aborted with its reservations freed.
        links.recover(ServerId(0));
        c.on_recovery(SimTime::from_min(10.5), ServerId(0), &mut links, &mut disp);
        c.check_invariants();
        assert!(c.copies.is_empty());
        assert_eq!(c.bytes_copied(), 0);
        assert_eq!(links.repair_kbps().iter().sum::<u64>(), 0);
        assert_eq!(c.in_flight.iter().sum::<u32>(), 0);
    }

    #[test]
    fn repair_bandwidth_cap_limits_concurrency() {
        // Source link 100 Mbps, repair bw 60 Mbps: only one copy can read
        // from a given survivor at a time.
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(60_000));
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(10.0),
            ServerId(0),
            &[0; 8],
            &mut links,
            &mut disp,
        );
        c.check_invariants();
        for j in 0..4 {
            assert!(links.repair_kbps()[j] <= 100_000);
        }
        assert!(links.within_capacity());
    }

    #[test]
    fn source_failure_aborts_and_requeues() {
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(50_000));
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(10.0),
            ServerId(0),
            &[0; 8],
            &mut links,
            &mut disp,
        );
        let in_flight_before: u32 = c.in_flight.iter().sum();
        assert!(in_flight_before > 0);
        // Fail one of the copy endpoints.
        let victim = c.copies[0].src;
        links.fail(victim);
        c.on_failure(
            SimTime::from_min(11.0),
            victim,
            &[0; 8],
            &mut links,
            &mut disp,
        );
        c.check_invariants();
        assert!(links.within_capacity());
        // No copy may still touch the dead server.
        assert!(c.copies.iter().all(|x| x.src != victim && x.dst != victim));
    }

    #[test]
    fn raised_target_fills_and_attributes_to_rebalance() {
        // m=4, degree 1 over n=4 with spare slots: raise v0's target to 3.
        let (catalog, cluster, layout) = world(4, 4, 1, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 4);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(50_000));
        c.set_target(5.0, 0, 3);
        assert_eq!(c.target(0), 3);
        assert_eq!(c.deficit_videos, 1);
        c.request_fill(0);
        c.replan(&[10, 0, 0, 0]);
        c.pump(SimTime::from_min(5.0), &mut links, &mut disp);
        c.check_invariants();
        assert_eq!(c.in_flight[0], 2);
        // Growth beyond the layout's baseline degree is Rebalance traffic.
        assert_eq!(c.repair_copies_in_flight(), 0);
        while c.next_completion().is_some() {
            c.complete_next(&mut links, &mut disp).unwrap();
            c.check_invariants();
        }
        assert_eq!(c.alive[0], 3);
        assert_eq!(c.deficit_videos, 0);
        assert_eq!(c.drift_copies_completed(), 2);
        assert!(c.drift_bytes_copied() > 0);
        assert_eq!(c.bytes_copied(), 0, "no Repair traffic in a drift fill");
    }

    #[test]
    fn lowered_target_retires_original_replicas() {
        // Degree 2; cool v0 down to a single replica.
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(50_000));
        let used_before: u64 = c.used_bytes.iter().sum();
        c.set_target(5.0, 0, 1);
        assert_eq!(c.retire_to_target(0), 1);
        c.check_invariants();
        assert_eq!(c.alive[0], 1);
        assert_eq!(c.holders[0].len(), 1);
        assert_eq!(c.deficit_videos, 0);
        let bytes = c.video_bytes[0];
        assert_eq!(c.used_bytes.iter().sum::<u64>(), used_before - bytes);
    }

    #[test]
    fn target_moves_keep_deficit_counter_consistent() {
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(50_000));
        // Raise two targets, lower one back before any copy: the counter
        // must track exactly the videos currently below target.
        c.set_target(1.0, 0, 4);
        c.set_target(1.0, 1, 3);
        assert_eq!(c.deficit_videos, 2);
        c.set_target(2.0, 0, 2);
        assert_eq!(c.deficit_videos, 1);
        c.set_target(3.0, 1, 2);
        assert_eq!(c.deficit_videos, 0);
        // Deficit integral accrued over [1.0, 3.0): >= 2 video·min.
        c.finish(10.0, &mut links, &mut disp);
        assert!(c.deficit_video_min() >= 2.0 - 1e-9);
        c.check_invariants();
    }

    #[test]
    fn slot_budget_counts_whole_cluster() {
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(50_000));
        // 4 servers x 8 slots each (uniform catalog).
        assert_eq!(c.slot_budget(), 32);
    }

    #[test]
    fn coded_failure_reconstructs_with_k_sources() {
        let (catalog, cluster, layout) = coded_world(6, 4, 2, 1, 8, &[]);
        let frag = catalog.videos()[0].storage_bytes().div_ceil(2);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 4);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(50_000));
        assert_eq!(c.video_bytes[0], frag, "coded videos store fragments");
        let victim = layout.replicas_of(VideoId(0))[0];
        links.fail(victim);
        c.on_failure(
            SimTime::from_min(10.0),
            victim,
            &[0; 4],
            &mut links,
            &mut disp,
        );
        c.check_invariants();
        assert!(!c.copies.is_empty(), "reconstruction must start");
        for copy in &c.copies {
            // k = 2: one primary + one extra read source, both reserved.
            assert_eq!(copy.extra_srcs.len(), 1);
            assert!(links.repair_kbps()[copy.extra_srcs[0].index()] > 0);
        }
        while c.next_completion().is_some() {
            c.complete_next(&mut links, &mut disp).unwrap();
            c.check_invariants();
        }
        for v in 0..4 {
            assert!(c.alive[v] >= c.targets[v]);
        }
        let recon = c.coded_reconstructions();
        assert!(recon > 0);
        // Each reconstruction read k fragments for the one it wrote.
        assert_eq!(c.coded_bytes_read(), recon * 2 * frag);
        assert_eq!(links.repair_kbps().iter().sum::<u64>(), 0);
    }

    #[test]
    fn coded_repair_never_starts_below_k_survivors() {
        // One (2, 1) stripe over 3 of 4 servers.
        let (catalog, cluster, layout) = coded_world(4, 1, 2, 1, 8, &[]);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 1);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(50_000));
        let holders: Vec<ServerId> = layout.replicas_of(VideoId(0)).to_vec();
        links.fail(holders[0]);
        c.on_failure(
            SimTime::from_min(1.0),
            holders[0],
            &[0; 1],
            &mut links,
            &mut disp,
        );
        // Two survivors = k: reconstruction runs.
        assert_eq!(c.copies.len(), 1);
        assert_eq!(c.unavailable_videos, 0);
        // Losing a second fragment drops below k: the in-flight
        // reconstruction (it read the dying server) aborts and no new
        // one may start — the stripe is unavailable until recovery.
        links.fail(holders[1]);
        c.on_failure(
            SimTime::from_min(2.0),
            holders[1],
            &[0; 1],
            &mut links,
            &mut disp,
        );
        c.check_invariants();
        assert!(c.copies.is_empty(), "no reconstruction below k survivors");
        assert_eq!(c.unavailable_videos, 1);
        assert_eq!(links.repair_kbps().iter().sum::<u64>(), 0);
        c.finish(12.0, &mut links, &mut disp);
        // Unavailable over [2, 12): 10 video·min.
        assert!((c.unavailability_video_min() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_deficit_integrates_parity_margin() {
        // (2, 2): margin m = 2, so one lost fragment weighs 1/2.
        let (catalog, cluster, layout) = coded_world(6, 1, 2, 2, 8, &[]);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 1);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, RepairConfig::default());
        let victim = layout.replicas_of(VideoId(0))[0];
        links.fail(victim);
        c.on_failure(
            SimTime::from_min(10.0),
            victim,
            &[0; 1],
            &mut links,
            &mut disp,
        );
        c.check_invariants();
        c.finish(20.0, &mut links, &mut disp);
        // Half a video below target for 10 minutes.
        assert!((c.deficit_video_min() - 5.0).abs() < 1e-9);
        assert!((c.deficit_min() - 10.0).abs() < 1e-9);
        assert!((c.unavailability_video_min()).abs() < 1e-9);
    }

    #[test]
    fn rack_bound_steers_reconstruction_into_dead_rack() {
        // 3 racks of 2; a (2, 1) stripe holds one fragment per rack, so
        // the only rack below the ⌈3/3⌉ = 1 live-fragment cap is the
        // dead holder's own — the rebuild must land on its rack buddy.
        let racks: Vec<Vec<ServerId>> = (0..3)
            .map(|r| vec![ServerId(2 * r), ServerId(2 * r + 1)])
            .collect();
        let (catalog, cluster, layout) = coded_world(6, 1, 2, 1, 8, &racks);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 1);
        let mut c = ReplicaActuator::new(&catalog, &cluster, &layout, enabled(50_000));
        c.set_rack_map(vec![0, 0, 1, 1, 2, 2]);
        let victim = layout.replicas_of(VideoId(0))[0];
        let buddy = ServerId(victim.0 ^ 1);
        links.fail(victim);
        c.on_failure(
            SimTime::from_min(1.0),
            victim,
            &[0; 1],
            &mut links,
            &mut disp,
        );
        c.check_invariants();
        assert_eq!(c.copies.len(), 1);
        assert_eq!(c.copies[0].dst, buddy, "rebuild must stay in the dead rack");
        c.complete_next(&mut links, &mut disp).unwrap();
        // Recovery retires the replacement: back to the original stripe.
        links.recover(victim);
        c.on_recovery(SimTime::from_min(5.0), victim, &mut links, &mut disp);
        c.check_invariants();
        assert_eq!(c.holders[0].len(), 3);
        assert_eq!(c.alive[0], 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Eq. (4) (per-server storage, counting in-flight reservations)
        /// and replica uniqueness survive any interleaving of failures,
        /// recoveries, and copy completions the actuator can see.
        #[test]
        fn random_fault_sequences_never_break_storage_or_uniqueness(
            n in 2usize..=5,
            m in 4usize..=16,
            degree in 1usize..=3,
            spare in 0u64..=4,
            bw_idx in 0usize..4,
            // Each event packs (server index, drain-one-copy flag).
            events in prop::collection::vec(0usize..16, 1..24),
        ) {
            let bw = [0u64, 20_000, 50_000, 120_000][bw_idx];
            let degree = degree.min(n);
            // Enough slots for the round-robin layout plus `spare` extras.
            let slots = ((m * degree).div_ceil(n)) as u64 + spare;
            let (catalog, cluster, layout) = world(n, m, degree, slots);
            let mut links = LinkState::new(&cluster);
            let mut disp = Dispatcher::new(Default::default(), m);
            let mut c = ReplicaActuator::new(
                &catalog,
                &cluster,
                &layout,
                RepairConfig { bandwidth_kbps: bw, max_concurrent: 4 },
            );
            let weights = vec![0u64; m];
            let mut t = 0.0f64;
            for (step, event) in events.into_iter().enumerate() {
                let (srv, drain_one) = (event % 8, event / 8 == 1);
                t += 1.0 + step as f64 * 0.5;
                let s = ServerId((srv % n) as u32);
                if links.is_up(s) {
                    links.fail(s);
                    c.on_failure(SimTime::from_min(t), s, &weights, &mut links, &mut disp);
                } else {
                    links.recover(s);
                    c.on_recovery(SimTime::from_min(t), s, &mut links, &mut disp);
                }
                if drain_one && c.next_completion().is_some() {
                    c.complete_next(&mut links, &mut disp).unwrap();
                }
                c.check_invariants();
                prop_assert!(links.within_capacity());
            }
            c.finish(t + 100.0, &mut links, &mut disp);
            c.check_invariants();
            prop_assert_eq!(links.repair_kbps().iter().sum::<u64>(), 0);
        }

        /// Rapid flap of one server — fail, come back mid-repair, fail
        /// again, with copies draining in between — never double-counts
        /// redundancy: after every hook `alive[v]` equals the number of
        /// *up* holders, completed+in-flight+servable never exceeds what
        /// storage allows, and a final full recovery returns every video
        /// to exactly its target with zero residual reservations.
        #[test]
        fn rapid_flap_mid_repair_never_double_counts(
            n in 3usize..=5,
            m in 4usize..=12,
            spare in 1u64..=4,
            flaps in prop::collection::vec(0usize..4, 2..16),
        ) {
            let degree = 2usize.min(n);
            let slots = ((m * degree).div_ceil(n)) as u64 + spare;
            let (catalog, cluster, layout) = world(n, m, degree, slots);
            let mut links = LinkState::new(&cluster);
            let mut disp = Dispatcher::new(Default::default(), m);
            let mut c = ReplicaActuator::new(
                &catalog, &cluster, &layout,
                RepairConfig { bandwidth_kbps: 50_000, max_concurrent: 4 },
            );
            let weights = vec![0u64; m];
            let victim = ServerId(0);
            let mut t = 0.0f64;
            // Each flap: fail victim, optionally drain 0..3 completions
            // while it's down, then bring it back mid-repair.
            for (step, drains) in flaps.into_iter().enumerate() {
                t += 0.5 + step as f64 * 0.25;
                links.fail(victim);
                c.on_failure(SimTime::from_min(t), victim, &weights, &mut links, &mut disp);
                c.check_invariants();
                for _ in 0..drains {
                    if c.next_completion().is_none() {
                        break;
                    }
                    c.complete_next(&mut links, &mut disp).unwrap();
                    c.check_invariants();
                }
                t += 0.25;
                // Comeback mid-repair: in-flight copies for videos the
                // return pushes to/above target must abort, and servable
                // surplus must retire — without double-counting.
                links.recover(victim);
                c.on_recovery(SimTime::from_min(t), victim, &mut links, &mut disp);
                c.check_invariants();
                prop_assert!(links.within_capacity());
                for v in 0..m {
                    prop_assert!(
                        c.alive[v] <= c.targets[v] + c.in_flight[v],
                        "video {}: alive {} exceeds target {} with {} in flight",
                        v, c.alive[v], c.targets[v], c.in_flight[v]
                    );
                }
            }
            // Drain everything; with all servers up each video must sit at
            // exactly its target (no surplus survives a full recovery).
            while c.next_completion().is_some() {
                c.complete_next(&mut links, &mut disp).unwrap();
                c.check_invariants();
            }
            for v in 0..m {
                prop_assert_eq!(c.alive[v], c.targets[v]);
                prop_assert_eq!(c.holders[v].len(), c.targets[v] as usize);
            }
            c.finish(t + 100.0, &mut links, &mut disp);
            prop_assert_eq!(links.repair_kbps().iter().sum::<u64>(), 0);
            prop_assert_eq!(c.in_flight.iter().sum::<u32>(), 0);
        }

        /// Coded repair under arbitrary fault/recovery/drain
        /// interleavings never oversubscribes reserved link bandwidth
        /// and never runs a reconstruction with fewer than `k` read
        /// sources (`check_invariants` asserts every in-flight copy
        /// carries exactly `k - 1` live extras).
        #[test]
        fn coded_fault_sequences_respect_bandwidth_and_fan_in(
            n in 5usize..=7,
            m in 2usize..=6,
            par in 1u32..=2,
            spare in 1u64..=4,
            events in prop::collection::vec(0usize..16, 1..24),
        ) {
            let k = 2u32;
            let slots = ((m * (k + par) as usize).div_ceil(n)) as u64 + spare + 2;
            let (catalog, cluster, layout) = coded_world(n, m, k, par, slots, &[]);
            let mut links = LinkState::new(&cluster);
            let mut disp = Dispatcher::new(Default::default(), m);
            let mut c = ReplicaActuator::new(
                &catalog, &cluster, &layout,
                RepairConfig { bandwidth_kbps: 40_000, max_concurrent: 4 },
            );
            let weights = vec![0u64; m];
            let mut t = 0.0f64;
            for (step, event) in events.into_iter().enumerate() {
                let (srv, drain_one) = (event % 8, event / 8 == 1);
                t += 1.0 + step as f64 * 0.5;
                let s = ServerId((srv % n) as u32);
                if links.is_up(s) {
                    links.fail(s);
                    c.on_failure(SimTime::from_min(t), s, &weights, &mut links, &mut disp);
                } else {
                    links.recover(s);
                    c.on_recovery(SimTime::from_min(t), s, &mut links, &mut disp);
                }
                if drain_one && c.next_completion().is_some() {
                    c.complete_next(&mut links, &mut disp).unwrap();
                }
                c.check_invariants();
                prop_assert!(links.within_capacity());
                for copy in &c.copies {
                    prop_assert_eq!(copy.extra_srcs.len() + 1, k as usize);
                }
            }
            c.finish(t + 100.0, &mut links, &mut disp);
            c.check_invariants();
            prop_assert_eq!(links.repair_kbps().iter().sum::<u64>(), 0);
            prop_assert_eq!(c.in_flight.iter().sum::<u32>(), 0);
        }
    }
}
