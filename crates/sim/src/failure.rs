//! Server-failure injection: fixed plans and stochastic models.
//!
//! The paper motivates replication with availability: "Replication …
//! can simplify the administration and enhance scalability and
//! reliability of the clusters" and "multiple replicas also offer the
//! flexibility in reconfiguration" (Sec. 1). This module makes that
//! claim measurable two ways:
//!
//! * a [`FailurePlan`] takes servers down (and optionally back up) at
//!   fixed instants — the scripted outages of the A-2 experiment;
//! * a [`FailureModel`] draws outages stochastically — per-server
//!   exponential MTBF/MTTR renewal processes plus optional correlated
//!   rack failures — from a seeded RNG, so a run is deterministic per
//!   seed. The model *compiles* to a `FailurePlan`, so the engine
//!   consumes one transition stream regardless of provenance.
//!
//! A failing server kills its active streams (counted as *disrupted*
//! unless the engine's failover policy rescues them) and admits nothing
//! until recovery; whether the cluster keeps serving its videos depends
//! on the replication degree, the admission policy, and — with the
//! repair controller enabled — how fast lost redundancy is rebuilt.

use crate::time::SimTime;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use vod_model::{ModelError, ServerId};

/// One outage: `server` fails at `down_at_min` and recovers at
/// `up_at_min` (or stays down for the rest of the run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// The failing server.
    pub server: ServerId,
    /// Failure instant, minutes from the simulation epoch.
    pub down_at_min: f64,
    /// Recovery instant; `None` = permanent for this run.
    pub up_at_min: Option<f64>,
}

/// A validated set of outages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FailurePlan {
    outages: Vec<Outage>,
}

/// Internal: a single up/down transition, sorted by time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Transition {
    pub at: SimTime,
    pub server: ServerId,
    pub up: bool,
}

fn check_times(o: &Outage) -> Result<(), ModelError> {
    if !o.down_at_min.is_finite() || o.down_at_min < 0.0 {
        return Err(ModelError::InvalidParameter {
            name: "down_at_min",
            value: o.down_at_min,
        });
    }
    if let Some(up) = o.up_at_min {
        if !up.is_finite() || up <= o.down_at_min {
            return Err(ModelError::InvalidParameter {
                name: "up_at_min",
                value: up,
            });
        }
    }
    Ok(())
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Validates and builds: non-negative finite times, recovery after
    /// failure, and no overlapping outages of one server.
    pub fn new(mut outages: Vec<Outage>) -> Result<Self, ModelError> {
        for o in &outages {
            check_times(o)?;
        }
        outages.sort_by(|a, b| {
            a.down_at_min
                .total_cmp(&b.down_at_min)
                .then(a.server.cmp(&b.server))
        });
        // Overlap check per server: sort an index by (server, down) so
        // only *adjacent* outages of one server need comparing — O(n log n)
        // total, which matters once stochastic models generate hundreds
        // of outages per run.
        let mut by_server: Vec<usize> = (0..outages.len()).collect();
        by_server.sort_by(|&a, &b| {
            outages[a]
                .server
                .cmp(&outages[b].server)
                .then(outages[a].down_at_min.total_cmp(&outages[b].down_at_min))
        });
        for w in by_server.windows(2) {
            let (prev, next) = (&outages[w[0]], &outages[w[1]]);
            if prev.server != next.server {
                continue;
            }
            let prev_end = prev.up_at_min.unwrap_or(f64::INFINITY);
            if next.down_at_min < prev_end {
                return Err(ModelError::InvalidParameter {
                    name: "overlapping outages",
                    value: next.down_at_min,
                });
            }
        }
        Ok(FailurePlan { outages })
    }

    /// Builds a plan from outages that may overlap per server (e.g. a
    /// rack failure overlapping an independent server failure), merging
    /// overlapping or touching intervals into one outage. Used by
    /// [`FailureModel::compile`], where a server can be down for more
    /// than one cause at once.
    pub fn merged(mut outages: Vec<Outage>) -> Result<Self, ModelError> {
        for o in &outages {
            check_times(o)?;
        }
        outages.sort_by(|a, b| {
            a.server
                .cmp(&b.server)
                .then(a.down_at_min.total_cmp(&b.down_at_min))
        });
        let mut merged: Vec<Outage> = Vec::with_capacity(outages.len());
        for o in outages {
            match merged.last_mut() {
                Some(last)
                    if last.server == o.server
                        && o.down_at_min <= last.up_at_min.unwrap_or(f64::INFINITY) =>
                {
                    last.up_at_min = match (last.up_at_min, o.up_at_min) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    };
                }
                _ => merged.push(o),
            }
        }
        FailurePlan::new(merged)
    }

    /// Checks every outage references a server inside an `n_servers`
    /// cluster; the simulation engines call this at bind time so a
    /// `ServerId(99)` outage on an 8-server cluster is a
    /// [`ModelError::UnknownServer`], not a silent no-op or a panic.
    pub fn validate_servers(&self, n_servers: usize) -> Result<(), ModelError> {
        for o in &self.outages {
            if o.server.index() >= n_servers {
                return Err(ModelError::UnknownServer(o.server));
            }
        }
        Ok(())
    }

    /// The outages, sorted by failure time.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// Flattens into time-sorted up/down transitions for the engine.
    pub(crate) fn transitions(&self) -> Vec<Transition> {
        let mut t: Vec<Transition> = Vec::with_capacity(self.outages.len() * 2);
        for o in &self.outages {
            t.push(Transition {
                at: SimTime::from_min(o.down_at_min),
                server: o.server,
                up: false,
            });
            if let Some(up) = o.up_at_min {
                t.push(Transition {
                    at: SimTime::from_min(up),
                    server: o.server,
                    up: true,
                });
            }
        }
        t.sort_by_key(|x| (x.at, x.server, x.up));
        t
    }
}

/// Correlated failures of a group of servers (a rack, a power domain):
/// the whole group fails and recovers together, on its own exponential
/// MTBF/MTTR renewal process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackFailures {
    /// Members that fail together.
    pub servers: Vec<ServerId>,
    /// Mean time between rack failures, minutes (exponential).
    pub mtbf_min: f64,
    /// Mean time to repair the rack, minutes (exponential).
    pub mttr_min: f64,
}

/// Stochastic fault injection: each server fails on an independent
/// exponential MTBF/MTTR alternating-renewal process, optionally
/// overlaid with correlated [`RackFailures`]. Deterministic per `seed`
/// — every server and rack derives its own RNG stream from it, so the
/// drawn outages do not depend on iteration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Per-server mean time between failures, minutes. `f64::INFINITY`
    /// disables independent per-server failures (rack failures only).
    pub mtbf_min: f64,
    /// Per-server mean time to repair, minutes.
    pub mttr_min: f64,
    /// Base RNG seed; identical seeds produce identical outage sets.
    pub seed: u64,
    /// Correlated group failures overlaid on the per-server processes.
    pub racks: Vec<RackFailures>,
}

impl FailureModel {
    /// A rack-free model: independent per-server MTBF/MTTR.
    pub fn exponential(mtbf_min: f64, mttr_min: f64, seed: u64) -> Self {
        FailureModel {
            mtbf_min,
            mttr_min,
            seed,
            racks: Vec::new(),
        }
    }

    /// Parameter validation: positive MTBF (infinity allowed — "never"),
    /// positive finite MTTR, rack members inside the cluster.
    pub fn validate(&self, n_servers: usize) -> Result<(), ModelError> {
        if self.mtbf_min.is_nan() || self.mtbf_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "mtbf_min",
                value: self.mtbf_min,
            });
        }
        if !self.mttr_min.is_finite() || self.mttr_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "mttr_min",
                value: self.mttr_min,
            });
        }
        for rack in &self.racks {
            if rack.mtbf_min.is_nan() || rack.mtbf_min <= 0.0 {
                return Err(ModelError::InvalidParameter {
                    name: "rack mtbf_min",
                    value: rack.mtbf_min,
                });
            }
            if !rack.mttr_min.is_finite() || rack.mttr_min <= 0.0 {
                return Err(ModelError::InvalidParameter {
                    name: "rack mttr_min",
                    value: rack.mttr_min,
                });
            }
            for &s in &rack.servers {
                if s.index() >= n_servers {
                    return Err(ModelError::UnknownServer(s));
                }
            }
        }
        Ok(())
    }

    /// Draws every outage in `[0, horizon_min)` and compiles them into a
    /// [`FailurePlan`] (per-server and rack intervals merged), which the
    /// engine consumes exactly like a scripted plan.
    pub fn compile(&self, n_servers: usize, horizon_min: f64) -> Result<FailurePlan, ModelError> {
        self.validate(n_servers)?;
        if !horizon_min.is_finite() || horizon_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "horizon_min",
                value: horizon_min,
            });
        }
        let mut outages = Vec::new();
        if self.mtbf_min.is_finite() {
            for j in 0..n_servers {
                let mut rng = self.stream_rng(0x5EC0_0000 + j as u64);
                draw_renewal_outages(
                    &mut rng,
                    self.mtbf_min,
                    self.mttr_min,
                    horizon_min,
                    &[ServerId(j as u32)],
                    &mut outages,
                );
            }
        }
        for (k, rack) in self.racks.iter().enumerate() {
            if !rack.mtbf_min.is_finite() || rack.servers.is_empty() {
                continue;
            }
            let mut rng = self.stream_rng(0x2ACC_0000 + k as u64);
            draw_renewal_outages(
                &mut rng,
                rack.mtbf_min,
                rack.mttr_min,
                horizon_min,
                &rack.servers,
                &mut outages,
            );
        }
        FailurePlan::merged(outages)
    }

    /// One independent, order-insensitive RNG stream per entity.
    fn stream_rng(&self, stream: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(
            self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17),
        )
    }
}

/// Samples an exponential with the given mean. `u ∈ [0, 1)` so
/// `1 - u ∈ (0, 1]` and the log is finite.
fn sample_exp(rng: &mut ChaCha8Rng, mean_min: f64) -> f64 {
    let u: f64 = rng.gen();
    -mean_min * (1.0 - u).ln()
}

/// Walks one alternating up/down renewal process over `[0, horizon)`,
/// appending one outage per failure for each server in `servers`.
fn draw_renewal_outages(
    rng: &mut ChaCha8Rng,
    mtbf_min: f64,
    mttr_min: f64,
    horizon_min: f64,
    servers: &[ServerId],
    out: &mut Vec<Outage>,
) {
    let mut t = 0.0f64;
    loop {
        let down = t + sample_exp(rng, mtbf_min);
        if down >= horizon_min {
            break;
        }
        let up = down + sample_exp(rng, mttr_min);
        // An outage running past the horizon is permanent for the run.
        let up_at_min = (up < horizon_min).then_some(up);
        for &server in servers {
            out.push(Outage {
                server,
                down_at_min: down,
                up_at_min,
            });
        }
        match up_at_min {
            Some(up) => t = up,
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_plan_sorted() {
        let plan = FailurePlan::new(vec![
            Outage {
                server: ServerId(1),
                down_at_min: 30.0,
                up_at_min: Some(60.0),
            },
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: None,
            },
        ])
        .unwrap();
        assert_eq!(plan.outages()[0].server, ServerId(0));
        let t = plan.transitions();
        assert_eq!(t.len(), 3);
        assert!(t.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn rejects_bad_times() {
        assert!(FailurePlan::new(vec![Outage {
            server: ServerId(0),
            down_at_min: -1.0,
            up_at_min: None,
        }])
        .is_err());
        assert!(FailurePlan::new(vec![Outage {
            server: ServerId(0),
            down_at_min: 10.0,
            up_at_min: Some(10.0),
        }])
        .is_err());
    }

    #[test]
    fn rejects_overlaps() {
        // Permanent failure followed by another outage of the same server.
        assert!(FailurePlan::new(vec![
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: None,
            },
            Outage {
                server: ServerId(0),
                down_at_min: 50.0,
                up_at_min: Some(60.0),
            },
        ])
        .is_err());
        // Back-to-back outages are fine.
        assert!(FailurePlan::new(vec![
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: Some(20.0),
            },
            Outage {
                server: ServerId(0),
                down_at_min: 20.0,
                up_at_min: Some(30.0),
            },
        ])
        .is_ok());
        // Overlap hiding between non-adjacent entries of the time-sorted
        // order (another server's outage sorts in between).
        assert!(FailurePlan::new(vec![
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: Some(40.0),
            },
            Outage {
                server: ServerId(1),
                down_at_min: 15.0,
                up_at_min: Some(16.0),
            },
            Outage {
                server: ServerId(0),
                down_at_min: 20.0,
                up_at_min: Some(25.0),
            },
        ])
        .is_err());
    }

    #[test]
    fn empty_plan() {
        assert!(FailurePlan::none().is_empty());
        assert!(FailurePlan::none().transitions().is_empty());
    }

    #[test]
    fn merged_coalesces_overlaps() {
        let plan = FailurePlan::merged(vec![
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: Some(30.0),
            },
            Outage {
                server: ServerId(0),
                down_at_min: 20.0,
                up_at_min: Some(40.0),
            },
            Outage {
                server: ServerId(1),
                down_at_min: 5.0,
                up_at_min: Some(6.0),
            },
        ])
        .unwrap();
        assert_eq!(plan.outages().len(), 2);
        let s0 = plan
            .outages()
            .iter()
            .find(|o| o.server == ServerId(0))
            .unwrap();
        assert_eq!((s0.down_at_min, s0.up_at_min), (10.0, Some(40.0)));
    }

    #[test]
    fn merged_absorbs_permanent() {
        let plan = FailurePlan::merged(vec![
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: None,
            },
            Outage {
                server: ServerId(0),
                down_at_min: 50.0,
                up_at_min: Some(60.0),
            },
        ])
        .unwrap();
        assert_eq!(plan.outages().len(), 1);
        assert_eq!(plan.outages()[0].up_at_min, None);
    }

    #[test]
    fn validate_servers_bounds() {
        let plan = FailurePlan::new(vec![Outage {
            server: ServerId(7),
            down_at_min: 1.0,
            up_at_min: None,
        }])
        .unwrap();
        assert!(plan.validate_servers(8).is_ok());
        assert_eq!(
            plan.validate_servers(7),
            Err(ModelError::UnknownServer(ServerId(7)))
        );
    }

    #[test]
    fn model_is_deterministic_per_seed() {
        let model = FailureModel::exponential(120.0, 15.0, 42);
        let a = model.compile(8, 90.0).unwrap();
        let b = model.compile(8, 90.0).unwrap();
        assert_eq!(a, b);
        let c = FailureModel::exponential(120.0, 15.0, 43)
            .compile(8, 90.0)
            .unwrap();
        assert_ne!(a, c, "different seeds should draw different outages");
    }

    #[test]
    fn model_outages_inside_horizon() {
        let model = FailureModel::exponential(30.0, 10.0, 7);
        let plan = model.compile(8, 90.0).unwrap();
        assert!(!plan.is_empty(), "MTBF 30 over 90 min should fail someone");
        for o in plan.outages() {
            assert!(o.down_at_min >= 0.0 && o.down_at_min < 90.0);
            if let Some(up) = o.up_at_min {
                assert!(up < 90.0);
            }
        }
        plan.validate_servers(8).unwrap();
    }

    #[test]
    fn infinite_mtbf_means_rack_only() {
        let model = FailureModel {
            mtbf_min: f64::INFINITY,
            mttr_min: 10.0,
            seed: 1,
            racks: vec![RackFailures {
                servers: vec![ServerId(0), ServerId(1)],
                mtbf_min: 20.0,
                mttr_min: 5.0,
            }],
        };
        let plan = model.compile(4, 90.0).unwrap();
        assert!(!plan.is_empty());
        // Every drawn outage hits a rack member, and members fail in pairs.
        for o in plan.outages() {
            assert!(o.server.index() <= 1);
        }
        let downs_s0: Vec<f64> = plan
            .outages()
            .iter()
            .filter(|o| o.server == ServerId(0))
            .map(|o| o.down_at_min)
            .collect();
        let downs_s1: Vec<f64> = plan
            .outages()
            .iter()
            .filter(|o| o.server == ServerId(1))
            .map(|o| o.down_at_min)
            .collect();
        assert_eq!(downs_s0, downs_s1, "rack members fail together");
    }

    #[test]
    fn model_validation_rejects_bad_parameters() {
        assert!(FailureModel::exponential(0.0, 10.0, 1).validate(4).is_err());
        assert!(FailureModel::exponential(10.0, 0.0, 1).validate(4).is_err());
        assert!(FailureModel::exponential(10.0, f64::INFINITY, 1)
            .validate(4)
            .is_err());
        let bad_rack = FailureModel {
            mtbf_min: f64::INFINITY,
            mttr_min: 1.0,
            seed: 0,
            racks: vec![RackFailures {
                servers: vec![ServerId(9)],
                mtbf_min: 10.0,
                mttr_min: 1.0,
            }],
        };
        assert_eq!(
            bad_rack.validate(4),
            Err(ModelError::UnknownServer(ServerId(9)))
        );
    }

    #[test]
    fn overlap_check_scales_past_hundreds_of_outages() {
        // 600 back-to-back outages on one server: valid, and fast with the
        // adjacent-pair check.
        let outages: Vec<Outage> = (0..600)
            .map(|k| Outage {
                server: ServerId(0),
                down_at_min: k as f64,
                up_at_min: Some(k as f64 + 1.0),
            })
            .collect();
        assert!(FailurePlan::new(outages).is_ok());
    }
}
