//! Server-failure injection: fixed plans and stochastic models.
//!
//! The paper motivates replication with availability: "Replication …
//! can simplify the administration and enhance scalability and
//! reliability of the clusters" and "multiple replicas also offer the
//! flexibility in reconfiguration" (Sec. 1). This module makes that
//! claim measurable two ways:
//!
//! * a [`FailurePlan`] takes servers down (and optionally back up) at
//!   fixed instants — the scripted outages of the A-2 experiment;
//! * a [`FailureModel`] draws outages stochastically — per-server
//!   exponential MTBF/MTTR renewal processes plus optional correlated
//!   rack failures — from a seeded RNG, so a run is deterministic per
//!   seed. The model *compiles* to a `FailurePlan`, so the engine
//!   consumes one transition stream regardless of provenance.
//!
//! A failing server kills its active streams (counted as *disrupted*
//! unless the engine's failover policy rescues them) and admits nothing
//! until recovery; whether the cluster keeps serving its videos depends
//! on the replication degree, the admission policy, and — with the
//! repair controller enabled — how fast lost redundancy is rebuilt.

use crate::time::SimTime;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use vod_model::{ModelError, ServerId};

/// One outage: `server` fails at `down_at_min` and recovers at
/// `up_at_min` (or stays down for the rest of the run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// The failing server.
    pub server: ServerId,
    /// Failure instant, minutes from the simulation epoch.
    pub down_at_min: f64,
    /// Recovery instant; `None` = permanent for this run.
    pub up_at_min: Option<f64>,
}

/// One brownout: `server`'s outgoing link runs at `capacity_frac` of its
/// nominal bandwidth from `start_min` until `end_min` (or the end of the
/// run). The server stays *up* — it is slow, not dead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Brownout {
    /// The degraded server.
    pub server: ServerId,
    /// Degradation onset, minutes from the simulation epoch.
    pub start_min: f64,
    /// Restoration instant; `None` = degraded for the rest of the run.
    pub end_min: Option<f64>,
    /// Remaining fraction of link capacity, in `(0, 1]`.
    pub capacity_frac: f64,
}

/// A validated set of outages plus (optionally) brownouts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FailurePlan {
    outages: Vec<Outage>,
    #[serde(default)]
    brownouts: Vec<Brownout>,
}

/// Internal: what happens to a server at a transition instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum TransitionKind {
    /// Server crashes (fail-stop).
    Down,
    /// Server recovers from a crash.
    Up,
    /// A brownout ends; full link capacity restored.
    BrownoutEnd,
    /// A brownout begins; effective capacity drops to this fraction.
    BrownoutStart(f64),
}

impl TransitionKind {
    /// Deterministic tie-break rank at equal (time, server). Down before
    /// Up preserves the pre-brownout ordering; a brownout that ends the
    /// instant another starts is processed end-first.
    fn rank(self) -> u8 {
        match self {
            TransitionKind::Down => 0,
            TransitionKind::Up => 1,
            TransitionKind::BrownoutEnd => 2,
            TransitionKind::BrownoutStart(_) => 3,
        }
    }
}

/// Internal: a single state transition, sorted by time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Transition {
    pub at: SimTime,
    pub server: ServerId,
    pub kind: TransitionKind,
}

fn check_brownout(b: &Brownout) -> Result<(), ModelError> {
    if !b.start_min.is_finite() || b.start_min < 0.0 {
        return Err(ModelError::InvalidParameter {
            name: "brownout start_min",
            value: b.start_min,
        });
    }
    if let Some(end) = b.end_min {
        if !end.is_finite() || end <= b.start_min {
            return Err(ModelError::InvalidParameter {
                name: "brownout end_min",
                value: end,
            });
        }
    }
    if !b.capacity_frac.is_finite() || b.capacity_frac <= 0.0 || b.capacity_frac > 1.0 {
        return Err(ModelError::InvalidParameter {
            name: "brownout capacity_frac (must be in (0, 1])",
            value: b.capacity_frac,
        });
    }
    Ok(())
}

fn check_times(o: &Outage) -> Result<(), ModelError> {
    if !o.down_at_min.is_finite() || o.down_at_min < 0.0 {
        return Err(ModelError::InvalidParameter {
            name: "down_at_min",
            value: o.down_at_min,
        });
    }
    if let Some(up) = o.up_at_min {
        if !up.is_finite() || up <= o.down_at_min {
            return Err(ModelError::InvalidParameter {
                name: "up_at_min",
                value: up,
            });
        }
    }
    Ok(())
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Validates and builds: non-negative finite times, recovery after
    /// failure, and no overlapping outages of one server.
    pub fn new(mut outages: Vec<Outage>) -> Result<Self, ModelError> {
        for o in &outages {
            check_times(o)?;
        }
        outages.sort_by(|a, b| {
            a.down_at_min
                .total_cmp(&b.down_at_min)
                .then(a.server.cmp(&b.server))
        });
        // Overlap check per server: sort an index by (server, down) so
        // only *adjacent* outages of one server need comparing — O(n log n)
        // total, which matters once stochastic models generate hundreds
        // of outages per run.
        let mut by_server: Vec<usize> = (0..outages.len()).collect();
        by_server.sort_by(|&a, &b| {
            outages[a]
                .server
                .cmp(&outages[b].server)
                .then(outages[a].down_at_min.total_cmp(&outages[b].down_at_min))
        });
        for w in by_server.windows(2) {
            let (prev, next) = (&outages[w[0]], &outages[w[1]]);
            if prev.server != next.server {
                continue;
            }
            let prev_end = prev.up_at_min.unwrap_or(f64::INFINITY);
            if next.down_at_min < prev_end {
                return Err(ModelError::InvalidParameter {
                    name: "overlapping outages",
                    value: next.down_at_min,
                });
            }
        }
        Ok(FailurePlan {
            outages,
            brownouts: Vec::new(),
        })
    }

    /// Validates and builds a plan carrying both outages and brownouts.
    pub fn with_brownouts(
        outages: Vec<Outage>,
        brownouts: Vec<Brownout>,
    ) -> Result<Self, ModelError> {
        Self::new(outages)?.add_brownouts(brownouts)
    }

    /// Attaches brownouts to this plan, validating times, capacity
    /// fractions in `(0, 1]`, and per-server non-overlap (two concurrent
    /// brownouts of one link would make the effective capacity ambiguous).
    pub fn add_brownouts(mut self, brownouts: Vec<Brownout>) -> Result<Self, ModelError> {
        self.brownouts.extend(brownouts);
        for b in &self.brownouts {
            check_brownout(b)?;
        }
        self.brownouts.sort_by(|a, b| {
            a.start_min
                .total_cmp(&b.start_min)
                .then(a.server.cmp(&b.server))
        });
        let mut by_server: Vec<usize> = (0..self.brownouts.len()).collect();
        by_server.sort_by(|&a, &b| {
            self.brownouts[a]
                .server
                .cmp(&self.brownouts[b].server)
                .then(
                    self.brownouts[a]
                        .start_min
                        .total_cmp(&self.brownouts[b].start_min),
                )
        });
        for w in by_server.windows(2) {
            let (prev, next) = (&self.brownouts[w[0]], &self.brownouts[w[1]]);
            if prev.server != next.server {
                continue;
            }
            let prev_end = prev.end_min.unwrap_or(f64::INFINITY);
            if next.start_min < prev_end {
                return Err(ModelError::InvalidParameter {
                    name: "overlapping brownouts",
                    value: next.start_min,
                });
            }
        }
        Ok(self)
    }

    /// Builds a plan from outages that may overlap per server (e.g. a
    /// rack failure overlapping an independent server failure), merging
    /// overlapping or touching intervals into one outage. Used by
    /// [`FailureModel::compile`], where a server can be down for more
    /// than one cause at once.
    pub fn merged(mut outages: Vec<Outage>) -> Result<Self, ModelError> {
        for o in &outages {
            check_times(o)?;
        }
        outages.sort_by(|a, b| {
            a.server
                .cmp(&b.server)
                .then(a.down_at_min.total_cmp(&b.down_at_min))
        });
        let mut merged: Vec<Outage> = Vec::with_capacity(outages.len());
        for o in outages {
            match merged.last_mut() {
                Some(last)
                    if last.server == o.server
                        && o.down_at_min <= last.up_at_min.unwrap_or(f64::INFINITY) =>
                {
                    last.up_at_min = match (last.up_at_min, o.up_at_min) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    };
                }
                _ => merged.push(o),
            }
        }
        FailurePlan::new(merged)
    }

    /// Checks every outage references a server inside an `n_servers`
    /// cluster; the simulation engines call this at bind time so a
    /// `ServerId(99)` outage on an 8-server cluster is a
    /// [`ModelError::UnknownServer`], not a silent no-op or a panic.
    pub fn validate_servers(&self, n_servers: usize) -> Result<(), ModelError> {
        for o in &self.outages {
            if o.server.index() >= n_servers {
                return Err(ModelError::UnknownServer(o.server));
            }
        }
        for b in &self.brownouts {
            if b.server.index() >= n_servers {
                return Err(ModelError::UnknownServer(b.server));
            }
        }
        Ok(())
    }

    /// The outages, sorted by failure time.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// The brownouts, sorted by start time.
    pub fn brownouts(&self) -> &[Brownout] {
        &self.brownouts
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty() && self.brownouts.is_empty()
    }

    /// Decomposes the plan into its outages and brownouts. Used by the
    /// engine to merge a compiled stochastic plan with fixed failures
    /// without re-cloning either side.
    pub(crate) fn into_parts(self) -> (Vec<Outage>, Vec<Brownout>) {
        (self.outages, self.brownouts)
    }

    /// Flattens into time-sorted state transitions for the engine.
    pub(crate) fn transitions(&self) -> Vec<Transition> {
        let mut t: Vec<Transition> =
            Vec::with_capacity(self.outages.len() * 2 + self.brownouts.len() * 2);
        for o in &self.outages {
            t.push(Transition {
                at: SimTime::from_min(o.down_at_min),
                server: o.server,
                kind: TransitionKind::Down,
            });
            if let Some(up) = o.up_at_min {
                t.push(Transition {
                    at: SimTime::from_min(up),
                    server: o.server,
                    kind: TransitionKind::Up,
                });
            }
        }
        for b in &self.brownouts {
            t.push(Transition {
                at: SimTime::from_min(b.start_min),
                server: b.server,
                kind: TransitionKind::BrownoutStart(b.capacity_frac),
            });
            if let Some(end) = b.end_min {
                t.push(Transition {
                    at: SimTime::from_min(end),
                    server: b.server,
                    kind: TransitionKind::BrownoutEnd,
                });
            }
        }
        t.sort_by_key(|a| (a.at, a.server, a.kind.rank()));
        t
    }
}

/// Correlated failures of a group of servers (a rack, a power domain):
/// the whole group fails and recovers together, on its own exponential
/// MTBF/MTTR renewal process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackFailures {
    /// Members that fail together.
    pub servers: Vec<ServerId>,
    /// Mean time between rack failures, minutes (exponential).
    pub mtbf_min: f64,
    /// Mean time to repair the rack, minutes (exponential).
    pub mttr_min: f64,
}

/// Stochastic partial-degradation model: each server's outgoing link
/// browns out on an independent exponential MTBF/MTTR renewal process,
/// with the surviving capacity fraction drawn uniformly from
/// `[min_capacity_frac, max_capacity_frac]` per episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrownoutModel {
    /// Mean time between brownouts per server, minutes (exponential).
    /// `f64::INFINITY` disables the model.
    pub mtbf_min: f64,
    /// Mean brownout duration, minutes (exponential).
    pub mttr_min: f64,
    /// Lower bound of the surviving capacity fraction, in `(0, 1]`.
    pub min_capacity_frac: f64,
    /// Upper bound of the surviving capacity fraction, in `(0, 1]`.
    pub max_capacity_frac: f64,
}

impl BrownoutModel {
    /// Parameter validation (positive times, fractions in `(0, 1]`,
    /// `min ≤ max`).
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.mtbf_min.is_nan() || self.mtbf_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "brownout mtbf_min",
                value: self.mtbf_min,
            });
        }
        if !self.mttr_min.is_finite() || self.mttr_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "brownout mttr_min",
                value: self.mttr_min,
            });
        }
        for (name, v) in [
            ("brownout min_capacity_frac", self.min_capacity_frac),
            ("brownout max_capacity_frac", self.max_capacity_frac),
        ] {
            if !v.is_finite() || v <= 0.0 || v > 1.0 {
                return Err(ModelError::InvalidParameter { name, value: v });
            }
        }
        if self.min_capacity_frac > self.max_capacity_frac {
            return Err(ModelError::InvalidParameter {
                name: "brownout min_capacity_frac > max_capacity_frac",
                value: self.min_capacity_frac,
            });
        }
        Ok(())
    }
}

/// Stochastic fault injection: each server fails on an independent
/// exponential MTBF/MTTR alternating-renewal process, optionally
/// overlaid with correlated [`RackFailures`] and partial-capacity
/// [`BrownoutModel`] episodes. Deterministic per `seed` — every server,
/// rack, and brownout process derives its own RNG stream from it, so
/// the drawn faults do not depend on iteration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Per-server mean time between failures, minutes. `f64::INFINITY`
    /// disables independent per-server failures (rack failures only).
    pub mtbf_min: f64,
    /// Per-server mean time to repair, minutes.
    pub mttr_min: f64,
    /// Base RNG seed; identical seeds produce identical outage sets.
    pub seed: u64,
    /// Correlated group failures overlaid on the per-server processes.
    pub racks: Vec<RackFailures>,
    /// Optional partial bandwidth degradation overlaid on the crash
    /// processes (`None` = links always run at full capacity).
    #[serde(default)]
    pub brownouts: Option<BrownoutModel>,
}

impl FailureModel {
    /// A rack-free model: independent per-server MTBF/MTTR.
    pub fn exponential(mtbf_min: f64, mttr_min: f64, seed: u64) -> Self {
        FailureModel {
            mtbf_min,
            mttr_min,
            seed,
            racks: Vec::new(),
            brownouts: None,
        }
    }

    /// A model that injects only brownouts: no crashes, no racks.
    pub fn brownouts_only(model: BrownoutModel, seed: u64) -> Self {
        FailureModel {
            mtbf_min: f64::INFINITY,
            mttr_min: 1.0, // unused: infinite MTBF draws no crashes
            seed,
            racks: Vec::new(),
            brownouts: Some(model),
        }
    }

    /// Parameter validation: positive MTBF (infinity allowed — "never"),
    /// positive finite MTTR, rack members inside the cluster.
    pub fn validate(&self, n_servers: usize) -> Result<(), ModelError> {
        if self.mtbf_min.is_nan() || self.mtbf_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "mtbf_min",
                value: self.mtbf_min,
            });
        }
        if !self.mttr_min.is_finite() || self.mttr_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "mttr_min",
                value: self.mttr_min,
            });
        }
        for rack in &self.racks {
            if rack.mtbf_min.is_nan() || rack.mtbf_min <= 0.0 {
                return Err(ModelError::InvalidParameter {
                    name: "rack mtbf_min",
                    value: rack.mtbf_min,
                });
            }
            if !rack.mttr_min.is_finite() || rack.mttr_min <= 0.0 {
                return Err(ModelError::InvalidParameter {
                    name: "rack mttr_min",
                    value: rack.mttr_min,
                });
            }
            for &s in &rack.servers {
                if s.index() >= n_servers {
                    return Err(ModelError::UnknownServer(s));
                }
            }
        }
        if let Some(b) = &self.brownouts {
            b.validate()?;
        }
        Ok(())
    }

    /// Draws every outage in `[0, horizon_min)` and compiles them into a
    /// [`FailurePlan`] (per-server and rack intervals merged), which the
    /// engine consumes exactly like a scripted plan.
    pub fn compile(&self, n_servers: usize, horizon_min: f64) -> Result<FailurePlan, ModelError> {
        self.validate(n_servers)?;
        if !horizon_min.is_finite() || horizon_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "horizon_min",
                value: horizon_min,
            });
        }
        let mut outages = Vec::new();
        if self.mtbf_min.is_finite() {
            for j in 0..n_servers {
                let mut rng = self.stream_rng(0x5EC0_0000 + j as u64);
                draw_renewal_outages(
                    &mut rng,
                    self.mtbf_min,
                    self.mttr_min,
                    horizon_min,
                    &[ServerId(j as u32)],
                    &mut outages,
                );
            }
        }
        for (k, rack) in self.racks.iter().enumerate() {
            if !rack.mtbf_min.is_finite() || rack.servers.is_empty() {
                continue;
            }
            let mut rng = self.stream_rng(0x2ACC_0000 + k as u64);
            draw_renewal_outages(
                &mut rng,
                rack.mtbf_min,
                rack.mttr_min,
                horizon_min,
                &rack.servers,
                &mut outages,
            );
        }
        let mut brownouts = Vec::new();
        if let Some(model) = &self.brownouts {
            if model.mtbf_min.is_finite() {
                for j in 0..n_servers {
                    let mut rng = self.stream_rng(0xB120_0000 + j as u64);
                    draw_renewal_brownouts(
                        &mut rng,
                        model,
                        horizon_min,
                        ServerId(j as u32),
                        &mut brownouts,
                    );
                }
            }
        }
        FailurePlan::merged(outages)?.add_brownouts(brownouts)
    }

    /// One independent, order-insensitive RNG stream per entity.
    fn stream_rng(&self, stream: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(
            self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17),
        )
    }
}

/// Samples an exponential with the given mean. `u ∈ [0, 1)` so
/// `1 - u ∈ (0, 1]` and the log is finite.
fn sample_exp(rng: &mut ChaCha8Rng, mean_min: f64) -> f64 {
    let u: f64 = rng.gen();
    -mean_min * (1.0 - u).ln()
}

/// Walks one alternating healthy/degraded renewal process over
/// `[0, horizon)`, appending one brownout per episode with a fresh
/// uniform capacity-fraction draw.
fn draw_renewal_brownouts(
    rng: &mut ChaCha8Rng,
    model: &BrownoutModel,
    horizon_min: f64,
    server: ServerId,
    out: &mut Vec<Brownout>,
) {
    let mut t = 0.0f64;
    loop {
        let start = t + sample_exp(rng, model.mtbf_min);
        if start >= horizon_min {
            break;
        }
        let end = start + sample_exp(rng, model.mttr_min);
        let u: f64 = rng.gen();
        let frac =
            model.min_capacity_frac + u * (model.max_capacity_frac - model.min_capacity_frac);
        let end_min = (end < horizon_min).then_some(end);
        out.push(Brownout {
            server,
            start_min: start,
            end_min,
            capacity_frac: frac.clamp(model.min_capacity_frac, model.max_capacity_frac),
        });
        match end_min {
            Some(end) => t = end,
            None => break,
        }
    }
}

/// Walks one alternating up/down renewal process over `[0, horizon)`,
/// appending one outage per failure for each server in `servers`.
fn draw_renewal_outages(
    rng: &mut ChaCha8Rng,
    mtbf_min: f64,
    mttr_min: f64,
    horizon_min: f64,
    servers: &[ServerId],
    out: &mut Vec<Outage>,
) {
    let mut t = 0.0f64;
    loop {
        let down = t + sample_exp(rng, mtbf_min);
        if down >= horizon_min {
            break;
        }
        let up = down + sample_exp(rng, mttr_min);
        // An outage running past the horizon is permanent for the run.
        let up_at_min = (up < horizon_min).then_some(up);
        for &server in servers {
            out.push(Outage {
                server,
                down_at_min: down,
                up_at_min,
            });
        }
        match up_at_min {
            Some(up) => t = up,
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_plan_sorted() {
        let plan = FailurePlan::new(vec![
            Outage {
                server: ServerId(1),
                down_at_min: 30.0,
                up_at_min: Some(60.0),
            },
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: None,
            },
        ])
        .unwrap();
        assert_eq!(plan.outages()[0].server, ServerId(0));
        let t = plan.transitions();
        assert_eq!(t.len(), 3);
        assert!(t.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn rejects_bad_times() {
        assert!(FailurePlan::new(vec![Outage {
            server: ServerId(0),
            down_at_min: -1.0,
            up_at_min: None,
        }])
        .is_err());
        assert!(FailurePlan::new(vec![Outage {
            server: ServerId(0),
            down_at_min: 10.0,
            up_at_min: Some(10.0),
        }])
        .is_err());
    }

    #[test]
    fn rejects_overlaps() {
        // Permanent failure followed by another outage of the same server.
        assert!(FailurePlan::new(vec![
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: None,
            },
            Outage {
                server: ServerId(0),
                down_at_min: 50.0,
                up_at_min: Some(60.0),
            },
        ])
        .is_err());
        // Back-to-back outages are fine.
        assert!(FailurePlan::new(vec![
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: Some(20.0),
            },
            Outage {
                server: ServerId(0),
                down_at_min: 20.0,
                up_at_min: Some(30.0),
            },
        ])
        .is_ok());
        // Overlap hiding between non-adjacent entries of the time-sorted
        // order (another server's outage sorts in between).
        assert!(FailurePlan::new(vec![
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: Some(40.0),
            },
            Outage {
                server: ServerId(1),
                down_at_min: 15.0,
                up_at_min: Some(16.0),
            },
            Outage {
                server: ServerId(0),
                down_at_min: 20.0,
                up_at_min: Some(25.0),
            },
        ])
        .is_err());
    }

    #[test]
    fn empty_plan() {
        assert!(FailurePlan::none().is_empty());
        assert!(FailurePlan::none().transitions().is_empty());
    }

    #[test]
    fn merged_coalesces_overlaps() {
        let plan = FailurePlan::merged(vec![
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: Some(30.0),
            },
            Outage {
                server: ServerId(0),
                down_at_min: 20.0,
                up_at_min: Some(40.0),
            },
            Outage {
                server: ServerId(1),
                down_at_min: 5.0,
                up_at_min: Some(6.0),
            },
        ])
        .unwrap();
        assert_eq!(plan.outages().len(), 2);
        let s0 = plan
            .outages()
            .iter()
            .find(|o| o.server == ServerId(0))
            .unwrap();
        assert_eq!((s0.down_at_min, s0.up_at_min), (10.0, Some(40.0)));
    }

    #[test]
    fn merged_absorbs_permanent() {
        let plan = FailurePlan::merged(vec![
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: None,
            },
            Outage {
                server: ServerId(0),
                down_at_min: 50.0,
                up_at_min: Some(60.0),
            },
        ])
        .unwrap();
        assert_eq!(plan.outages().len(), 1);
        assert_eq!(plan.outages()[0].up_at_min, None);
    }

    #[test]
    fn validate_servers_bounds() {
        let plan = FailurePlan::new(vec![Outage {
            server: ServerId(7),
            down_at_min: 1.0,
            up_at_min: None,
        }])
        .unwrap();
        assert!(plan.validate_servers(8).is_ok());
        assert_eq!(
            plan.validate_servers(7),
            Err(ModelError::UnknownServer(ServerId(7)))
        );
    }

    #[test]
    fn model_is_deterministic_per_seed() {
        let model = FailureModel::exponential(120.0, 15.0, 42);
        let a = model.compile(8, 90.0).unwrap();
        let b = model.compile(8, 90.0).unwrap();
        assert_eq!(a, b);
        let c = FailureModel::exponential(120.0, 15.0, 43)
            .compile(8, 90.0)
            .unwrap();
        assert_ne!(a, c, "different seeds should draw different outages");
    }

    #[test]
    fn model_outages_inside_horizon() {
        let model = FailureModel::exponential(30.0, 10.0, 7);
        let plan = model.compile(8, 90.0).unwrap();
        assert!(!plan.is_empty(), "MTBF 30 over 90 min should fail someone");
        for o in plan.outages() {
            assert!(o.down_at_min >= 0.0 && o.down_at_min < 90.0);
            if let Some(up) = o.up_at_min {
                assert!(up < 90.0);
            }
        }
        plan.validate_servers(8).unwrap();
    }

    #[test]
    fn infinite_mtbf_means_rack_only() {
        let model = FailureModel {
            mtbf_min: f64::INFINITY,
            mttr_min: 10.0,
            seed: 1,
            racks: vec![RackFailures {
                servers: vec![ServerId(0), ServerId(1)],
                mtbf_min: 20.0,
                mttr_min: 5.0,
            }],
            brownouts: None,
        };
        let plan = model.compile(4, 90.0).unwrap();
        assert!(!plan.is_empty());
        // Every drawn outage hits a rack member, and members fail in pairs.
        for o in plan.outages() {
            assert!(o.server.index() <= 1);
        }
        let downs_s0: Vec<f64> = plan
            .outages()
            .iter()
            .filter(|o| o.server == ServerId(0))
            .map(|o| o.down_at_min)
            .collect();
        let downs_s1: Vec<f64> = plan
            .outages()
            .iter()
            .filter(|o| o.server == ServerId(1))
            .map(|o| o.down_at_min)
            .collect();
        assert_eq!(downs_s0, downs_s1, "rack members fail together");
    }

    #[test]
    fn model_validation_rejects_bad_parameters() {
        assert!(FailureModel::exponential(0.0, 10.0, 1).validate(4).is_err());
        assert!(FailureModel::exponential(10.0, 0.0, 1).validate(4).is_err());
        assert!(FailureModel::exponential(10.0, f64::INFINITY, 1)
            .validate(4)
            .is_err());
        let bad_rack = FailureModel {
            mtbf_min: f64::INFINITY,
            mttr_min: 1.0,
            seed: 0,
            racks: vec![RackFailures {
                servers: vec![ServerId(9)],
                mtbf_min: 10.0,
                mttr_min: 1.0,
            }],
            brownouts: None,
        };
        assert_eq!(
            bad_rack.validate(4),
            Err(ModelError::UnknownServer(ServerId(9)))
        );
    }

    #[test]
    fn brownout_plan_validates_and_flattens() {
        let plan = FailurePlan::with_brownouts(
            vec![Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: Some(20.0),
            }],
            vec![Brownout {
                server: ServerId(1),
                start_min: 5.0,
                end_min: Some(30.0),
                capacity_frac: 0.5,
            }],
        )
        .unwrap();
        assert!(!plan.is_empty());
        let t = plan.transitions();
        assert_eq!(t.len(), 4);
        assert!(t.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(t[0].kind, TransitionKind::BrownoutStart(0.5));
        assert_eq!(t[3].kind, TransitionKind::BrownoutEnd);
        plan.validate_servers(2).unwrap();
        assert!(plan.validate_servers(1).is_err());
    }

    #[test]
    fn brownout_validation_rejects_bad_fractions_and_overlaps() {
        let bo = |start: f64, end: Option<f64>, frac: f64| Brownout {
            server: ServerId(0),
            start_min: start,
            end_min: end,
            capacity_frac: frac,
        };
        assert!(FailurePlan::with_brownouts(vec![], vec![bo(0.0, Some(5.0), 0.0)]).is_err());
        assert!(FailurePlan::with_brownouts(vec![], vec![bo(0.0, Some(5.0), 1.5)]).is_err());
        assert!(FailurePlan::with_brownouts(vec![], vec![bo(5.0, Some(5.0), 0.5)]).is_err());
        assert!(FailurePlan::with_brownouts(vec![], vec![bo(-1.0, None, 0.5)]).is_err());
        // Overlapping brownouts of one server are ambiguous.
        assert!(FailurePlan::with_brownouts(
            vec![],
            vec![bo(0.0, Some(10.0), 0.5), bo(5.0, Some(15.0), 0.7)]
        )
        .is_err());
        // Back-to-back is fine.
        assert!(FailurePlan::with_brownouts(
            vec![],
            vec![bo(0.0, Some(10.0), 0.5), bo(10.0, Some(15.0), 0.7)]
        )
        .is_ok());
    }

    #[test]
    fn brownout_model_compiles_deterministically_inside_horizon() {
        let model = FailureModel::brownouts_only(
            BrownoutModel {
                mtbf_min: 30.0,
                mttr_min: 10.0,
                min_capacity_frac: 0.3,
                max_capacity_frac: 0.7,
            },
            99,
        );
        let a = model.compile(8, 90.0).unwrap();
        let b = model.compile(8, 90.0).unwrap();
        assert_eq!(a, b);
        assert!(a.outages().is_empty(), "brownouts_only draws no crashes");
        assert!(!a.brownouts().is_empty());
        for br in a.brownouts() {
            assert!(br.start_min >= 0.0 && br.start_min < 90.0);
            assert!((0.3..=0.7).contains(&br.capacity_frac));
            if let Some(end) = br.end_min {
                assert!(end < 90.0);
            }
        }
        let c = FailureModel::brownouts_only(
            BrownoutModel {
                mtbf_min: 30.0,
                mttr_min: 10.0,
                min_capacity_frac: 0.3,
                max_capacity_frac: 0.7,
            },
            100,
        )
        .compile(8, 90.0)
        .unwrap();
        assert_ne!(a, c, "different seeds draw different brownouts");
    }

    #[test]
    fn brownout_model_validation() {
        let bad = |m: BrownoutModel| FailureModel::brownouts_only(m, 0).validate(4).is_err();
        let base = BrownoutModel {
            mtbf_min: 30.0,
            mttr_min: 10.0,
            min_capacity_frac: 0.3,
            max_capacity_frac: 0.7,
        };
        assert!(FailureModel::brownouts_only(base.clone(), 0)
            .validate(4)
            .is_ok());
        assert!(bad(BrownoutModel {
            mtbf_min: 0.0,
            ..base.clone()
        }));
        assert!(bad(BrownoutModel {
            mttr_min: f64::INFINITY,
            ..base.clone()
        }));
        assert!(bad(BrownoutModel {
            min_capacity_frac: 0.0,
            ..base.clone()
        }));
        assert!(bad(BrownoutModel {
            max_capacity_frac: 1.2,
            ..base.clone()
        }));
        assert!(bad(BrownoutModel {
            min_capacity_frac: 0.8,
            max_capacity_frac: 0.4,
            ..base
        }));
    }

    #[test]
    fn legacy_plan_json_still_deserializes() {
        // Pre-brownout serialized plans have no `brownouts` field.
        let plan: FailurePlan = serde_json::from_str(
            r#"{"outages":[{"server":3,"down_at_min":1.0,"up_at_min":null}]}"#,
        )
        .unwrap();
        assert_eq!(plan.outages().len(), 1);
        assert!(plan.brownouts().is_empty());
    }

    #[test]
    fn overlap_check_scales_past_hundreds_of_outages() {
        // 600 back-to-back outages on one server: valid, and fast with the
        // adjacent-pair check.
        let outages: Vec<Outage> = (0..600)
            .map(|k| Outage {
                server: ServerId(0),
                down_at_min: k as f64,
                up_at_min: Some(k as f64 + 1.0),
            })
            .collect();
        assert!(FailurePlan::new(outages).is_ok());
    }
}
