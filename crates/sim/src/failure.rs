//! Server-failure injection.
//!
//! The paper motivates replication with availability: "Replication …
//! can simplify the administration and enhance scalability and
//! reliability of the clusters" and "multiple replicas also offer the
//! flexibility in reconfiguration" (Sec. 1). This module makes that
//! claim measurable: a [`FailurePlan`] takes servers down (and
//! optionally back up) at fixed instants during the run. A failing
//! server kills its active streams (counted as *disrupted*) and admits
//! nothing until recovery; whether the cluster keeps serving its videos
//! depends on the replication degree and the admission policy.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use vod_model::{ModelError, ServerId};

/// One outage: `server` fails at `down_at_min` and recovers at
/// `up_at_min` (or stays down for the rest of the run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// The failing server.
    pub server: ServerId,
    /// Failure instant, minutes from the simulation epoch.
    pub down_at_min: f64,
    /// Recovery instant; `None` = permanent for this run.
    pub up_at_min: Option<f64>,
}

/// A validated set of outages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FailurePlan {
    outages: Vec<Outage>,
}

/// Internal: a single up/down transition, sorted by time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Transition {
    pub at: SimTime,
    pub server: ServerId,
    pub up: bool,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Validates and builds: non-negative finite times, recovery after
    /// failure, and no overlapping outages of one server.
    pub fn new(mut outages: Vec<Outage>) -> Result<Self, ModelError> {
        for o in &outages {
            if !o.down_at_min.is_finite() || o.down_at_min < 0.0 {
                return Err(ModelError::InvalidParameter {
                    name: "down_at_min",
                    value: o.down_at_min,
                });
            }
            if let Some(up) = o.up_at_min {
                if !up.is_finite() || up <= o.down_at_min {
                    return Err(ModelError::InvalidParameter {
                        name: "up_at_min",
                        value: up,
                    });
                }
            }
        }
        outages.sort_by(|a, b| {
            a.down_at_min
                .total_cmp(&b.down_at_min)
                .then(a.server.cmp(&b.server))
        });
        // Overlap check per server.
        for i in 0..outages.len() {
            for j in (i + 1)..outages.len() {
                if outages[i].server != outages[j].server {
                    continue;
                }
                let i_end = outages[i].up_at_min.unwrap_or(f64::INFINITY);
                if outages[j].down_at_min < i_end {
                    return Err(ModelError::InvalidParameter {
                        name: "overlapping outages",
                        value: outages[j].down_at_min,
                    });
                }
            }
        }
        Ok(FailurePlan { outages })
    }

    /// The outages, sorted by failure time.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// Flattens into time-sorted up/down transitions for the engine.
    pub(crate) fn transitions(&self) -> Vec<Transition> {
        let mut t: Vec<Transition> = Vec::with_capacity(self.outages.len() * 2);
        for o in &self.outages {
            t.push(Transition {
                at: SimTime::from_min(o.down_at_min),
                server: o.server,
                up: false,
            });
            if let Some(up) = o.up_at_min {
                t.push(Transition {
                    at: SimTime::from_min(up),
                    server: o.server,
                    up: true,
                });
            }
        }
        t.sort_by_key(|x| (x.at, x.server, x.up));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_plan_sorted() {
        let plan = FailurePlan::new(vec![
            Outage {
                server: ServerId(1),
                down_at_min: 30.0,
                up_at_min: Some(60.0),
            },
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: None,
            },
        ])
        .unwrap();
        assert_eq!(plan.outages()[0].server, ServerId(0));
        let t = plan.transitions();
        assert_eq!(t.len(), 3);
        assert!(t.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn rejects_bad_times() {
        assert!(FailurePlan::new(vec![Outage {
            server: ServerId(0),
            down_at_min: -1.0,
            up_at_min: None,
        }])
        .is_err());
        assert!(FailurePlan::new(vec![Outage {
            server: ServerId(0),
            down_at_min: 10.0,
            up_at_min: Some(10.0),
        }])
        .is_err());
    }

    #[test]
    fn rejects_overlaps() {
        // Permanent failure followed by another outage of the same server.
        assert!(FailurePlan::new(vec![
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: None,
            },
            Outage {
                server: ServerId(0),
                down_at_min: 50.0,
                up_at_min: Some(60.0),
            },
        ])
        .is_err());
        // Back-to-back outages are fine.
        assert!(FailurePlan::new(vec![
            Outage {
                server: ServerId(0),
                down_at_min: 10.0,
                up_at_min: Some(20.0),
            },
            Outage {
                server: ServerId(0),
                down_at_min: 20.0,
                up_at_min: Some(30.0),
            },
        ])
        .is_ok());
    }

    #[test]
    fn empty_plan() {
        assert!(FailurePlan::none().is_empty());
        assert!(FailurePlan::none().transitions().is_empty());
    }
}
