//! Mid-run repair policy knobs: re-replication of lost redundancy.
//!
//! The paper's replication degrees are chosen offline; a failure at run
//! time silently reduces them. When a server goes down, the engine
//! identifies every video whose servable replica count dropped below its
//! planned target, picks destinations for replacement copies via the
//! incremental-placement machinery, and streams the copies from
//! surviving holders at a configurable repair bandwidth. Repair traffic
//! is metered against the source *and* destination links (and against
//! the shared backbone pool under
//! [`crate::AdmissionPolicy::BackboneRedirect`]), so it competes with
//! streaming — aggressive repair raises rejection during the rebuild
//! window. A replica becomes servable only when its copy completes.
//! When a failed server returns, replicas its comeback pushes above
//! target are retired (repair-added copies first), so spare storage
//! recycles across failures instead of filling up monotonically.
//!
//! This module holds the *policy knobs* ([`RepairConfig`],
//! [`FailoverPolicy`]); the mechanism — the live content map, metered
//! transfers, storage reservations and surplus retirement — lives in the
//! actuation layer (`crate::actuation`), which the online replication
//! controller ([`crate::controller`]) shares. Both policies draw from
//! the same repair-bandwidth budget configured here.

use serde::{Deserialize, Serialize};

/// Repair knobs (shared with the online controller's re-replication
/// traffic — both draw copies from this bandwidth budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairConfig {
    /// Bandwidth of one repair copy, in kbps, reserved on both the source
    /// and destination links for the copy's duration. `0` disables repair
    /// (today's passive behavior).
    pub bandwidth_kbps: u64,
    /// Maximum simultaneous repair copies cluster-wide.
    pub max_concurrent: usize,
}

impl Default for RepairConfig {
    /// Repair off — failures permanently cost redundancy, as before.
    fn default() -> Self {
        RepairConfig {
            bandwidth_kbps: 0,
            max_concurrent: 4,
        }
    }
}

impl RepairConfig {
    /// Whether the actuation layer starts copies at all.
    pub fn enabled(&self) -> bool {
        self.bandwidth_kbps > 0 && self.max_concurrent > 0
    }
}

/// What happens to the streams of a failing server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FailoverPolicy {
    /// Kill them (the original behavior): every active stream on the
    /// failed server counts as disrupted.
    #[default]
    Kill,
    /// Try to migrate each stream to a surviving replica holder with
    /// full-rate headroom, charging the remaining duration's bandwidth
    /// there; streams that fit nowhere are disrupted.
    Resume,
    /// Like [`FailoverPolicy::Resume`], but a stream that fits nowhere at
    /// full rate may continue at a lower bit rate from
    /// [`vod_model::BitRate::LADDER`] (graceful degradation); only
    /// streams that fit at no rate are disrupted.
    ResumeOrDegrade,
}
