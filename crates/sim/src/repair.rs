//! Mid-run repair: re-replication of lost redundancy.
//!
//! The paper's replication degrees are chosen offline; a failure at run
//! time silently reduces them. This module rebuilds the lost replicas
//! *during* the run: when a server goes down, the [`RepairController`]
//! identifies every video whose servable replica count dropped below its
//! planned target, picks destinations for replacement copies via the
//! incremental-placement machinery ([`IncrementalPlacement`]), and
//! streams the copies from surviving holders at a configurable repair
//! bandwidth. Repair traffic is metered against the source *and*
//! destination links (and against the shared backbone pool under
//! [`crate::AdmissionPolicy::BackboneRedirect`]), so it competes with
//! streaming — aggressive repair raises rejection during the rebuild
//! window. A replica becomes servable only when its copy completes.
//! When a failed server returns, replicas its comeback pushes above
//! target are retired (repair-added copies first), so spare storage
//! recycles across failures instead of filling up monotonically.
//!
//! The controller also integrates two robustness metrics over simulated
//! time: minutes in which *any* video sat below its replication target
//! (time to full redundancy) and video·minutes with *zero* servable
//! replicas (unavailability).

use crate::dispatch::Dispatcher;
use crate::server::LinkState;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use vod_model::{Catalog, ClusterSpec, Layout, ModelError, ReplicationScheme, ServerId, VideoId};
use vod_placement::traits::PlacementInput;
use vod_placement::{IncrementalPlacement, PlacementPolicy};

/// Repair-controller knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairConfig {
    /// Bandwidth of one repair copy, in kbps, reserved on both the source
    /// and destination links for the copy's duration. `0` disables repair
    /// (today's passive behavior).
    pub bandwidth_kbps: u64,
    /// Maximum simultaneous repair copies cluster-wide.
    pub max_concurrent: usize,
}

impl Default for RepairConfig {
    /// Repair off — failures permanently cost redundancy, as before.
    fn default() -> Self {
        RepairConfig {
            bandwidth_kbps: 0,
            max_concurrent: 4,
        }
    }
}

impl RepairConfig {
    /// Whether the controller starts copies at all.
    pub fn enabled(&self) -> bool {
        self.bandwidth_kbps > 0 && self.max_concurrent > 0
    }
}

/// What happens to the streams of a failing server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FailoverPolicy {
    /// Kill them (the original behavior): every active stream on the
    /// failed server counts as disrupted.
    #[default]
    Kill,
    /// Try to migrate each stream to a surviving replica holder with
    /// full-rate headroom, charging the remaining duration's bandwidth
    /// there; streams that fit nowhere are disrupted.
    Resume,
    /// Like [`FailoverPolicy::Resume`], but a stream that fits nowhere at
    /// full rate may continue at a lower bit rate from
    /// [`vod_model::BitRate::LADDER`] (graceful degradation); only
    /// streams that fit at no rate are disrupted.
    ResumeOrDegrade,
}

/// One in-flight replica copy.
#[derive(Debug, Clone, Copy)]
struct ActiveCopy {
    video: VideoId,
    src: ServerId,
    dst: ServerId,
    kbps: u64,
    bytes: u64,
    /// Backbone bandwidth actually charged (0 unless the policy models a
    /// backbone).
    backbone_kbps: u64,
    done_at: SimTime,
    seq: u64,
}

/// Run-time replica tracker and repair scheduler.
///
/// Owns the *live* content map: which servers hold a servable replica of
/// each video (the bound [`Layout`] is the initial state; completed
/// repairs append to it). Data on a down server is not lost — it becomes
/// servable again on recovery — but it does not count toward redundancy
/// while the server is down.
#[derive(Debug)]
pub(crate) struct RepairController {
    config: RepairConfig,
    n_servers: usize,
    /// Servers holding a full replica (servable when up), per video, in
    /// round-robin dispatch order; repaired copies append at the end.
    holders: Vec<Vec<ServerId>>,
    /// Planned replica count per video (the bound layout's degrees).
    targets: Vec<u32>,
    video_bytes: Vec<u64>,
    /// Per-server stored bytes, *including* reservations of in-flight
    /// copies (reserved at copy start so concurrent repairs cannot
    /// oversubscribe storage — Eq. 4 holds throughout).
    used_bytes: Vec<u64>,
    capacity_bytes: Vec<u64>,
    up: Vec<bool>,
    /// Servable replicas on up servers, per video.
    alive: Vec<u32>,
    /// In-flight copies per video.
    in_flight: Vec<u32>,
    /// Videos that may need repair (lazily re-checked at pump time).
    pending: BTreeSet<u32>,
    /// Planned destinations for replacement copies, refreshed on every
    /// topology change; empty entries fall back to a greedy choice.
    planned: Vec<Vec<ServerId>>,
    copies: Vec<ActiveCopy>,
    seq: u64,
    // Metrics.
    bytes_copied: u64,
    copies_completed: u64,
    deficit_videos: u32,
    unavailable_videos: u32,
    last_update_min: f64,
    deficit_min: f64,
    deficit_video_min: f64,
    unavailability_video_min: f64,
}

impl RepairController {
    pub fn new(
        catalog: &Catalog,
        cluster: &ClusterSpec,
        layout: &Layout,
        config: RepairConfig,
    ) -> Self {
        let n = cluster.len();
        let m = layout.n_videos();
        let holders: Vec<Vec<ServerId>> = layout.assignments().to_vec();
        let video_bytes: Vec<u64> = catalog.videos().iter().map(|v| v.storage_bytes()).collect();
        let mut used_bytes = vec![0u64; n];
        for (v, servers) in holders.iter().enumerate() {
            for &s in servers {
                used_bytes[s.index()] += video_bytes[v];
            }
        }
        RepairController {
            config,
            n_servers: n,
            targets: holders.iter().map(|h| h.len() as u32).collect(),
            alive: holders.iter().map(|h| h.len() as u32).collect(),
            holders,
            video_bytes,
            used_bytes,
            capacity_bytes: cluster.servers().iter().map(|s| s.storage_bytes).collect(),
            up: vec![true; n],
            in_flight: vec![0; m],
            pending: BTreeSet::new(),
            planned: vec![Vec::new(); m],
            copies: Vec::new(),
            seq: 0,
            bytes_copied: 0,
            copies_completed: 0,
            deficit_videos: 0,
            unavailable_videos: 0,
            last_update_min: 0.0,
            deficit_min: 0.0,
            deficit_video_min: 0.0,
            unavailability_video_min: 0.0,
        }
    }

    /// Current servable holders of `video` (dispatch order). Identical to
    /// the bound layout until a repair completes.
    #[inline]
    pub fn holders(&self, video: VideoId) -> &[ServerId] {
        &self.holders[video.index()]
    }

    /// Advances the metric integrals to `now_min`.
    fn integrate(&mut self, now_min: f64) {
        let dt = (now_min - self.last_update_min).max(0.0);
        if self.deficit_videos > 0 {
            self.deficit_min += dt;
        }
        self.deficit_video_min += dt * self.deficit_videos as f64;
        self.unavailability_video_min += dt * self.unavailable_videos as f64;
        self.last_update_min = now_min;
    }

    /// Applies an alive-count delta, maintaining the deficit and
    /// unavailability counters (call [`Self::integrate`] first).
    fn bump_alive(&mut self, v: usize, delta: i64) {
        let before = self.alive[v];
        let after = (before as i64 + delta) as u32;
        self.alive[v] = after;
        let target = self.targets[v];
        match (before < target, after < target) {
            (false, true) => self.deficit_videos += 1,
            (true, false) => self.deficit_videos -= 1,
            _ => {}
        }
        match (before == 0, after == 0) {
            (false, true) => self.unavailable_videos += 1,
            (true, false) => self.unavailable_videos -= 1,
            _ => {}
        }
    }

    /// Server-down hook. Call *after* [`LinkState::fail`]: updates alive
    /// counts, aborts copies touching the dead server (their partial data
    /// is discarded, their reservations released, the videos re-queued),
    /// re-plans destinations, and pumps.
    pub fn on_failure(
        &mut self,
        at: SimTime,
        server: ServerId,
        weights: &[u64],
        links: &mut LinkState,
        dispatcher: &mut Dispatcher,
    ) {
        self.integrate(at.as_min());
        self.up[server.index()] = false;
        self.abort_copies_touching(server, links, dispatcher);
        for v in 0..self.holders.len() {
            if self.holders[v].contains(&server) {
                self.bump_alive(v, -1);
                if self.alive[v] < self.targets[v] {
                    self.pending.insert(v as u32);
                }
            }
        }
        self.replan(weights);
        self.pump(at, links, dispatcher);
    }

    /// Server-up hook. Call *after* [`LinkState::recover`]: the server's
    /// stored replicas become servable again, and its fresh link may
    /// unblock stalled repairs. Videos its return pushes *above* target
    /// shed their repair-added surplus — in-flight copies are aborted and
    /// servable extras retired — so spare storage and repair bandwidth
    /// recycle toward the next failure instead of accreting forever.
    pub fn on_recovery(
        &mut self,
        at: SimTime,
        server: ServerId,
        links: &mut LinkState,
        dispatcher: &mut Dispatcher,
    ) {
        self.integrate(at.as_min());
        self.up[server.index()] = true;
        for v in 0..self.holders.len() {
            if self.holders[v].contains(&server) {
                self.bump_alive(v, 1);
            }
        }
        let mut i = 0;
        while i < self.copies.len() {
            let c = self.copies[i];
            if self.alive[c.video.index()] >= self.targets[c.video.index()] {
                self.copies.remove(i);
                links.release_repair(c.src, c.kbps);
                links.release_repair(c.dst, c.kbps);
                if c.backbone_kbps > 0 {
                    dispatcher.release_backbone(c.backbone_kbps);
                }
                self.used_bytes[c.dst.index()] -= c.bytes;
                self.in_flight[c.video.index()] -= 1;
            } else {
                i += 1;
            }
        }
        for v in 0..self.holders.len() {
            self.retire_surplus(v);
        }
        self.pump(at, links, dispatcher);
    }

    /// Retires servable copies of `v` beyond its target. Only repair-added
    /// copies are eligible — they sit past the original prefix of the
    /// holder list (the bound layout's replicas), and only those can push
    /// a video above its planned count. Freed storage becomes available
    /// to future rebuilds.
    fn retire_surplus(&mut self, v: usize) {
        let prefix = self.targets[v] as usize;
        while self.alive[v] > self.targets[v] {
            let Some(pos) =
                (prefix..self.holders[v].len()).find(|&i| self.up[self.holders[v][i].index()])
            else {
                break;
            };
            let s = self.holders[v].remove(pos);
            self.used_bytes[s.index()] -= self.video_bytes[v];
            self.bump_alive(v, -1);
        }
    }

    fn abort_copies_touching(
        &mut self,
        server: ServerId,
        links: &mut LinkState,
        dispatcher: &mut Dispatcher,
    ) {
        let mut i = 0;
        while i < self.copies.len() {
            let c = self.copies[i];
            if c.src == server || c.dst == server {
                self.copies.remove(i);
                // `release_repair` is a no-op on the endpoint that just
                // failed (its reservations were cleared by `fail()`).
                links.release_repair(c.src, c.kbps);
                links.release_repair(c.dst, c.kbps);
                if c.backbone_kbps > 0 {
                    dispatcher.release_backbone(c.backbone_kbps);
                }
                self.used_bytes[c.dst.index()] -= c.bytes;
                self.in_flight[c.video.index()] -= 1;
                self.pending.insert(c.video.0);
            } else {
                i += 1;
            }
        }
    }

    /// Recomputes planned destinations for replacement copies with the
    /// incremental-placement policy: previous = the full content map,
    /// down servers get zero slot capacity (their replicas are re-placed
    /// on survivors), and per-video weights are the observed demand so
    /// far (+1 so cold titles still place). On any placement error the
    /// plan stays empty and the pump falls back to a greedy choice.
    fn replan(&mut self, weights: &[u64]) {
        for p in &mut self.planned {
            p.clear();
        }
        if !self.config.enabled() {
            return;
        }
        let m = self.holders.len();
        let counts: Vec<u32> = (0..m)
            .map(|v| self.targets[v].max(self.holders[v].len() as u32))
            .collect();
        let Ok(scheme) = ReplicationScheme::new(counts) else {
            return;
        };
        let w: Vec<f64> = (0..m)
            .map(|v| weights.get(v).copied().unwrap_or(0) as f64 + 1.0)
            .collect();
        let mut held_slots = vec![0u64; self.n_servers];
        let mut held_bytes = vec![0u64; self.n_servers];
        for (v, servers) in self.holders.iter().enumerate() {
            for &s in servers {
                held_slots[s.index()] += 1;
                held_bytes[s.index()] += self.video_bytes[v];
            }
        }
        let uniform = self.video_bytes.windows(2).all(|w| w[0] == w[1]);
        let max_bytes = self.video_bytes.iter().copied().max().unwrap_or(1).max(1);
        let capacities: Vec<u64> = (0..self.n_servers)
            .map(|j| {
                if !self.up[j] {
                    // No additions on a dead server; its kept content is
                    // dropped by the keep phase and re-placed elsewhere.
                    0
                } else if uniform {
                    self.capacity_bytes[j] / max_bytes
                } else {
                    held_slots[j] + self.capacity_bytes[j].saturating_sub(held_bytes[j]) / max_bytes
                }
            })
            .collect();
        let Ok(previous) = Layout::new(self.n_servers, self.holders.clone()) else {
            return;
        };
        let input = PlacementInput {
            scheme: &scheme,
            weights: &w,
            n_servers: self.n_servers,
            capacities: &capacities,
        };
        if let Ok(plan) = IncrementalPlacement::from_previous(previous).place(&input) {
            for v in 0..m {
                let vid = VideoId(v as u32);
                self.planned[v] = plan
                    .replicas_of(vid)
                    .iter()
                    .copied()
                    .filter(|s| !self.holders[v].contains(s))
                    .collect();
            }
        }
    }

    /// True when `dst` can receive a new replica of video `v` right now.
    fn dst_ok(&self, v: usize, dst: ServerId, bw: u64, links: &LinkState) -> bool {
        let j = dst.index();
        self.up[j]
            && links.free_kbps(dst) >= bw
            && !self.holders[v].contains(&dst)
            && self
                .copies
                .iter()
                .all(|c| !(c.video.index() == v && c.dst == dst))
            && self.used_bytes[j] + self.video_bytes[v] <= self.capacity_bytes[j]
    }

    /// Destination for the next copy of `v`: the incremental plan's pick
    /// when still valid, else greedily the least-full (by stored bytes)
    /// eligible server.
    fn choose_dst(&self, v: usize, bw: u64, links: &LinkState) -> Option<ServerId> {
        if let Some(&dst) = self.planned[v]
            .iter()
            .find(|&&d| self.dst_ok(v, d, bw, links))
        {
            return Some(dst);
        }
        (0..self.n_servers)
            .map(|j| ServerId(j as u32))
            .filter(|&d| self.dst_ok(v, d, bw, links))
            .min_by_key(|&d| (self.used_bytes[d.index()], d))
    }

    /// Starts as many pending copies as bandwidth, storage and the
    /// concurrency cap allow. Deterministic: videos in ascending id
    /// order, sources by most free link (ties to the lowest id).
    pub fn pump(&mut self, now: SimTime, links: &mut LinkState, dispatcher: &mut Dispatcher) {
        if !self.config.enabled() || self.pending.is_empty() {
            return;
        }
        let bw = self.config.bandwidth_kbps;
        let vids: Vec<u32> = self.pending.iter().copied().collect();
        for vid in vids {
            if self.copies.len() >= self.config.max_concurrent {
                return;
            }
            let v = vid as usize;
            let need = self.targets[v] as i64 - self.alive[v] as i64 - self.in_flight[v] as i64;
            if need <= 0 {
                if self.in_flight[v] == 0 {
                    self.pending.remove(&vid);
                }
                continue;
            }
            for _ in 0..need {
                if self.copies.len() >= self.config.max_concurrent {
                    return;
                }
                let src = self.holders[v]
                    .iter()
                    .copied()
                    .filter(|&s| links.is_up(s) && links.free_kbps(s) >= bw)
                    .max_by_key(|&s| (links.free_kbps(s), std::cmp::Reverse(s)));
                let Some(src) = src else { break };
                let Some(dst) = self.choose_dst(v, bw, links) else {
                    break;
                };
                // Under a backbone policy the inter-server copy transits
                // the backbone; elsewhere it is charged nowhere extra.
                let Some(backbone_kbps) = dispatcher.try_reserve_repair_backbone(bw) else {
                    // Backbone saturated: nothing else can start either.
                    return;
                };
                links.reserve_repair(src, bw);
                links.reserve_repair(dst, bw);
                self.used_bytes[dst.index()] += self.video_bytes[v];
                self.in_flight[v] += 1;
                let dur_ms = (self.video_bytes[v].saturating_mul(8)).div_ceil(bw).max(1);
                self.copies.push(ActiveCopy {
                    video: VideoId(vid),
                    src,
                    dst,
                    kbps: bw,
                    bytes: self.video_bytes[v],
                    backbone_kbps,
                    done_at: SimTime(now.ticks() + dur_ms),
                    seq: self.seq,
                });
                self.seq += 1;
            }
        }
    }

    /// The earliest in-flight copy completion, if any.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.copies.iter().map(|c| c.done_at).min()
    }

    /// Completes the earliest due copy: releases its bandwidth, makes the
    /// replica servable, and updates redundancy accounting. Errors when
    /// no copy is in flight (the engine only calls this when
    /// [`Self::next_completion`] reported one).
    pub fn complete_next(
        &mut self,
        links: &mut LinkState,
        dispatcher: &mut Dispatcher,
    ) -> Result<(), ModelError> {
        let idx = self
            .copies
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.done_at, c.seq))
            .map(|(i, _)| i)
            .ok_or(ModelError::Internal {
                context: "complete_next called with no in-flight copies",
            })?;
        let c = self.copies.remove(idx);
        links.release_repair(c.src, c.kbps);
        links.release_repair(c.dst, c.kbps);
        if c.backbone_kbps > 0 {
            dispatcher.release_backbone(c.backbone_kbps);
        }
        self.integrate(c.done_at.as_min());
        // The reservation made at copy start now backs a real replica.
        self.holders[c.video.index()].push(c.dst);
        self.in_flight[c.video.index()] -= 1;
        self.bump_alive(c.video.index(), 1);
        self.bytes_copied += c.bytes;
        self.copies_completed += 1;
        // A recovery may have raced this copy past its target.
        self.retire_surplus(c.video.index());
        self.pump(c.done_at, links, dispatcher);
        Ok(())
    }

    /// Brownout hook: while `server` is committed beyond its shrunken
    /// effective capacity, abort repair copies touching it —
    /// farthest-from-done first, so the least sunk work is discarded.
    /// Aborted videos re-queue and re-pump once capacity returns. The
    /// engine sheds active streams only for the excess that remains.
    pub fn on_brownout(
        &mut self,
        at: SimTime,
        server: ServerId,
        links: &mut LinkState,
        dispatcher: &mut Dispatcher,
    ) {
        self.integrate(at.as_min());
        let j = server.index();
        while links.used_kbps()[j] + links.repair_kbps()[j] > links.effective_capacity_kbps(server)
        {
            let Some(i) = self
                .copies
                .iter()
                .enumerate()
                .filter(|(_, c)| c.src == server || c.dst == server)
                .max_by_key(|(_, c)| (c.done_at, c.seq))
                .map(|(i, _)| i)
            else {
                break;
            };
            let c = self.copies.remove(i);
            links.release_repair(c.src, c.kbps);
            links.release_repair(c.dst, c.kbps);
            if c.backbone_kbps > 0 {
                dispatcher.release_backbone(c.backbone_kbps);
            }
            self.used_bytes[c.dst.index()] -= c.bytes;
            self.in_flight[c.video.index()] -= 1;
            self.pending.insert(c.video.0);
        }
    }

    /// End of run: aborts in-flight copies (releasing every reservation,
    /// so the engine's zero-residual asserts hold) and closes the metric
    /// integrals at the horizon.
    pub fn finish(&mut self, horizon_min: f64, links: &mut LinkState, dispatcher: &mut Dispatcher) {
        self.integrate(horizon_min.max(self.last_update_min));
        for c in std::mem::take(&mut self.copies) {
            links.release_repair(c.src, c.kbps);
            links.release_repair(c.dst, c.kbps);
            if c.backbone_kbps > 0 {
                dispatcher.release_backbone(c.backbone_kbps);
            }
            self.used_bytes[c.dst.index()] -= c.bytes;
            self.in_flight[c.video.index()] -= 1;
        }
    }

    /// Bytes of replica data successfully copied.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Copies completed (replicas added).
    pub fn copies_completed(&self) -> u64 {
        self.copies_completed
    }

    /// Minutes during which at least one video was below its replication
    /// target — the time to full redundancy, summed over every deficit
    /// window of the run. Under popularity-skewed replication this union
    /// is pinned by the single-replica cold tail (unrepairable while
    /// their server is down); [`Self::deficit_video_min`] is the
    /// discriminating integral.
    pub fn deficit_min(&self) -> f64 {
        self.deficit_min
    }

    /// Video·minutes below replication target — the replica-deficit
    /// integral repair actually drains (each rebuilt copy removes one
    /// video from the deficit for the remainder of the outage).
    pub fn deficit_video_min(&self) -> f64 {
        self.deficit_video_min
    }

    /// Video·minutes with zero servable replicas.
    pub fn unavailability_video_min(&self) -> f64 {
        self.unavailability_video_min
    }

    /// Test/debug invariant: per-server stored bytes (including in-flight
    /// reservations) within capacity, and no video with two replicas on
    /// one server.
    #[cfg(test)]
    pub fn check_invariants(&self) {
        for j in 0..self.n_servers {
            assert!(
                self.used_bytes[j] <= self.capacity_bytes[j],
                "server {j} over storage: {} > {}",
                self.used_bytes[j],
                self.capacity_bytes[j]
            );
        }
        for (v, servers) in self.holders.iter().enumerate() {
            for (i, &s) in servers.iter().enumerate() {
                assert!(
                    !servers[..i].contains(&s),
                    "video {v} has two replicas on server {}",
                    s.index()
                );
            }
            for c in &self.copies {
                if c.video.index() == v {
                    assert!(
                        !servers.contains(&c.dst),
                        "in-flight copy of video {v} targets a holder"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vod_model::{BitRate, ServerSpec};

    fn world(
        n: usize,
        m: usize,
        degree: usize,
        storage_slots: u64,
    ) -> (Catalog, ClusterSpec, Layout) {
        let catalog = Catalog::fixed_rate(m, BitRate::MPEG2, 600).unwrap();
        let bytes = catalog.videos()[0].storage_bytes();
        let cluster = ClusterSpec::homogeneous(
            n,
            ServerSpec {
                storage_bytes: storage_slots * bytes,
                bandwidth_kbps: 100_000,
            },
        )
        .unwrap();
        // Round-robin degree-`degree` layout.
        let assignments: Vec<Vec<ServerId>> = (0..m)
            .map(|v| {
                (0..degree)
                    .map(|r| ServerId(((v * degree + r) % n) as u32))
                    .collect()
            })
            .collect();
        let layout = Layout::new(n, assignments).unwrap();
        (catalog, cluster, layout)
    }

    fn enabled(bandwidth_kbps: u64) -> RepairConfig {
        RepairConfig {
            bandwidth_kbps,
            max_concurrent: 4,
        }
    }

    #[test]
    fn failure_queues_and_repairs_deficit() {
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = RepairController::new(&catalog, &cluster, &layout, enabled(50_000));
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(10.0),
            ServerId(0),
            &[0; 8],
            &mut links,
            &mut disp,
        );
        c.check_invariants();
        assert!(c.next_completion().is_some(), "copies must start");
        assert!(links.repair_kbps().iter().any(|&k| k > 0));
        // Complete every copy; redundancy must be fully restored.
        while c.next_completion().is_some() {
            c.complete_next(&mut links, &mut disp).unwrap();
            c.check_invariants();
        }
        for v in 0..8 {
            assert!(
                c.alive[v] >= c.targets[v],
                "video {v}: alive {} < target {}",
                c.alive[v],
                c.targets[v]
            );
        }
        assert_eq!(c.deficit_videos, 0);
        assert!(c.bytes_copied() > 0);
        assert_eq!(links.repair_kbps().iter().sum::<u64>(), 0);
    }

    #[test]
    fn disabled_repair_never_copies() {
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = RepairController::new(&catalog, &cluster, &layout, RepairConfig::default());
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(10.0),
            ServerId(0),
            &[0; 8],
            &mut links,
            &mut disp,
        );
        assert!(c.next_completion().is_none());
        assert!(c.deficit_videos > 0);
        // The deficit integral still accrues without repair.
        c.finish(90.0, &mut links, &mut disp);
        assert!(c.deficit_min() > 0.0);
    }

    #[test]
    fn no_alive_source_stalls_until_recovery() {
        // Degree 1: the failed server held the only copy of its videos.
        let (catalog, cluster, layout) = world(2, 4, 1, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 4);
        let mut c = RepairController::new(&catalog, &cluster, &layout, enabled(50_000));
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(5.0),
            ServerId(0),
            &[0; 4],
            &mut links,
            &mut disp,
        );
        // Videos on s0 have zero alive replicas and no source: no copy.
        assert!(c.next_completion().is_none());
        assert!(c.unavailable_videos > 0);
        links.recover(ServerId(0));
        c.on_recovery(SimTime::from_min(25.0), ServerId(0), &mut links, &mut disp);
        assert_eq!(c.unavailable_videos, 0);
        assert_eq!(c.deficit_videos, 0);
        c.finish(90.0, &mut links, &mut disp);
        // 20 minutes, 2 videos were on s0 (m=4 over 2 servers at degree 1).
        assert!((c.unavailability_video_min() - 40.0).abs() < 1e-6);
        assert!((c.deficit_min() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn storage_reservation_blocks_oversubscription() {
        // Survivor has exactly one free slot: only one of the two lost
        // replicas can be rebuilt.
        let catalog = Catalog::fixed_rate(3, BitRate::MPEG2, 600).unwrap();
        let bytes = catalog.videos()[0].storage_bytes();
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: 3 * bytes,
                bandwidth_kbps: 100_000,
            },
        )
        .unwrap();
        // s0: v0 v1; s1: v2. s0 dies; s1 has slots for 2 more but assume
        // capacity 3 slots -> 2 free. Shrink capacity to 2 slots instead:
        let cluster_tight = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: 2 * bytes,
                bandwidth_kbps: 100_000,
            },
        )
        .unwrap();
        let layout = Layout::new(
            2,
            vec![vec![ServerId(0)], vec![ServerId(0)], vec![ServerId(1)]],
        )
        .unwrap();
        let mut links = LinkState::new(&cluster_tight);
        let mut disp = Dispatcher::new(Default::default(), 3);
        let mut c = RepairController::new(&catalog, &cluster_tight, &layout, enabled(50_000));
        let _ = cluster;
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(1.0),
            ServerId(0),
            &[0; 3],
            &mut links,
            &mut disp,
        );
        c.check_invariants();
        // Both lost videos have no alive source (degree 1) — no copies.
        assert_eq!(c.copies.len(), 0);
    }

    #[test]
    fn recovery_retires_repair_added_surplus() {
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = RepairController::new(&catalog, &cluster, &layout, enabled(50_000));
        let used_before = c.used_bytes.clone();
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(10.0),
            ServerId(0),
            &[0; 8],
            &mut links,
            &mut disp,
        );
        while c.next_completion().is_some() {
            c.complete_next(&mut links, &mut disp).unwrap();
        }
        assert!(c.bytes_copied() > 0);
        // The rebuilt copies occupy extra storage while s0 is down...
        assert!(c.used_bytes.iter().sum::<u64>() > used_before.iter().sum::<u64>());
        links.recover(ServerId(0));
        c.on_recovery(SimTime::from_min(30.0), ServerId(0), &mut links, &mut disp);
        c.check_invariants();
        // ...and are retired on its return: every video back at exactly
        // its target, all spare storage reclaimed.
        for v in 0..8 {
            assert_eq!(c.alive[v], c.targets[v]);
            assert_eq!(c.holders[v].len(), c.targets[v] as usize);
        }
        assert_eq!(c.used_bytes, used_before);
        assert_eq!(links.repair_kbps().iter().sum::<u64>(), 0);
    }

    #[test]
    fn recovery_aborts_unneeded_in_flight_copies() {
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = RepairController::new(&catalog, &cluster, &layout, enabled(50_000));
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(10.0),
            ServerId(0),
            &[0; 8],
            &mut links,
            &mut disp,
        );
        assert!(!c.copies.is_empty());
        // The server comes back before any copy completes: every copy is
        // now pointless and must be aborted with its reservations freed.
        links.recover(ServerId(0));
        c.on_recovery(SimTime::from_min(10.5), ServerId(0), &mut links, &mut disp);
        c.check_invariants();
        assert!(c.copies.is_empty());
        assert_eq!(c.bytes_copied(), 0);
        assert_eq!(links.repair_kbps().iter().sum::<u64>(), 0);
        assert_eq!(c.in_flight.iter().sum::<u32>(), 0);
    }

    #[test]
    fn repair_bandwidth_cap_limits_concurrency() {
        // Source link 100 Mbps, repair bw 60 Mbps: only one copy can read
        // from a given survivor at a time.
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = RepairController::new(&catalog, &cluster, &layout, enabled(60_000));
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(10.0),
            ServerId(0),
            &[0; 8],
            &mut links,
            &mut disp,
        );
        c.check_invariants();
        for j in 0..4 {
            assert!(links.repair_kbps()[j] <= 100_000);
        }
        assert!(links.within_capacity());
    }

    #[test]
    fn source_failure_aborts_and_requeues() {
        let (catalog, cluster, layout) = world(4, 8, 2, 8);
        let mut links = LinkState::new(&cluster);
        let mut disp = Dispatcher::new(Default::default(), 8);
        let mut c = RepairController::new(&catalog, &cluster, &layout, enabled(50_000));
        links.fail(ServerId(0));
        c.on_failure(
            SimTime::from_min(10.0),
            ServerId(0),
            &[0; 8],
            &mut links,
            &mut disp,
        );
        let in_flight_before: u32 = c.in_flight.iter().sum();
        assert!(in_flight_before > 0);
        // Fail one of the copy endpoints.
        let victim = c.copies[0].src;
        links.fail(victim);
        c.on_failure(
            SimTime::from_min(11.0),
            victim,
            &[0; 8],
            &mut links,
            &mut disp,
        );
        c.check_invariants();
        assert!(links.within_capacity());
        // No copy may still touch the dead server.
        assert!(c.copies.iter().all(|x| x.src != victim && x.dst != victim));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Eq. (4) (per-server storage, counting in-flight reservations)
        /// and replica uniqueness survive any interleaving of failures,
        /// recoveries, and copy completions the controller can see.
        #[test]
        fn random_fault_sequences_never_break_storage_or_uniqueness(
            n in 2usize..=5,
            m in 4usize..=16,
            degree in 1usize..=3,
            spare in 0u64..=4,
            bw_idx in 0usize..4,
            // Each event packs (server index, drain-one-copy flag).
            events in prop::collection::vec(0usize..16, 1..24),
        ) {
            let bw = [0u64, 20_000, 50_000, 120_000][bw_idx];
            let degree = degree.min(n);
            // Enough slots for the round-robin layout plus `spare` extras.
            let slots = ((m * degree).div_ceil(n)) as u64 + spare;
            let (catalog, cluster, layout) = world(n, m, degree, slots);
            let mut links = LinkState::new(&cluster);
            let mut disp = Dispatcher::new(Default::default(), m);
            let mut c = RepairController::new(
                &catalog,
                &cluster,
                &layout,
                RepairConfig { bandwidth_kbps: bw, max_concurrent: 4 },
            );
            let weights = vec![0u64; m];
            let mut t = 0.0f64;
            for (step, event) in events.into_iter().enumerate() {
                let (srv, drain_one) = (event % 8, event / 8 == 1);
                t += 1.0 + step as f64 * 0.5;
                let s = ServerId((srv % n) as u32);
                if links.is_up(s) {
                    links.fail(s);
                    c.on_failure(SimTime::from_min(t), s, &weights, &mut links, &mut disp);
                } else {
                    links.recover(s);
                    c.on_recovery(SimTime::from_min(t), s, &mut links, &mut disp);
                }
                if drain_one && c.next_completion().is_some() {
                    c.complete_next(&mut links, &mut disp).unwrap();
                }
                c.check_invariants();
                prop_assert!(links.within_capacity());
            }
            c.finish(t + 100.0, &mut links, &mut disp);
            c.check_invariants();
            prop_assert_eq!(links.repair_kbps().iter().sum::<u64>(), 0);
        }
    }
}
