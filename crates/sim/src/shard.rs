//! Server-group sharding for the parallel engine.
//!
//! The decoupled parallel path (see [`crate::engine`]) runs one full
//! mini-engine per server group. That is only sound when no event on
//! one group can influence another: every replica of a video must live
//! inside a single group, so dispatch, admission and departures for
//! that video never touch another group's servers. [`ShardPlan`]
//! computes the finest such partition — connected components of the
//! servers-joined-by-replica-sets graph — and packs the components
//! into at most the requested number of shards, largest first, so
//! shard sizes stay balanced (LPT packing).
//!
//! Everything here is deterministic: components are ordered by size
//! (descending) then by their smallest server id, and ties in the
//! packing go to the lowest-indexed shard, so the same layout always
//! yields the same plan.

use vod_model::Layout;

/// A deterministic partition of servers (and their videos) into
/// engine shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of shards actually used (`1..=requested`).
    pub n_shards: usize,
    /// Owning shard of each video.
    pub video_shard: Vec<u32>,
    /// Owning shard of each server.
    pub server_shard: Vec<u32>,
}

/// Union-find over server indices (path-halving + union by size).
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

impl ShardPlan {
    /// The decoupled partition of `layout` into at most `max_shards`
    /// shards. Servers sharing any video's replica set land in the
    /// same shard; videos with no replicas (never admittable, but
    /// legal) are spread round-robin. With a fully connected replica
    /// graph this degenerates to a single shard — the caller should
    /// then fall back to the serial engine.
    pub fn decoupled(layout: &Layout, max_shards: usize) -> ShardPlan {
        let n_servers = layout.n_servers();
        let n_videos = layout.n_videos();
        let mut dsu = Dsu::new(n_servers);
        for v in 0..n_videos {
            let replicas = layout.replicas_of(vod_model::VideoId(v as u32));
            if let Some((&first, rest)) = replicas.split_first() {
                for &r in rest {
                    dsu.union(first.0, r.0);
                }
            }
        }
        // Components in deterministic order: size descending, then
        // smallest member server id ascending.
        let mut comp_of = vec![u32::MAX; n_servers];
        let mut comps: Vec<(u32, u32, u32)> = Vec::new(); // (size, min_server, root)
        for j in 0..n_servers as u32 {
            let root = dsu.find(j);
            if comp_of[root as usize] == u32::MAX {
                comp_of[root as usize] = comps.len() as u32;
                comps.push((dsu.size[root as usize], j, root));
            }
        }
        comps.sort_unstable_by_key(|&(size, min_server, _)| (std::cmp::Reverse(size), min_server));
        let n_shards = max_shards.clamp(1, comps.len().max(1));
        // LPT packing: each component goes to the currently smallest
        // shard (ties to the lowest shard index).
        let mut shard_sizes = vec![0u32; n_shards];
        let mut shard_of_comp = vec![0u32; comps.len()];
        let mut comp_index = vec![0u32; n_servers]; // root -> sorted position
        for (pos, &(size, _, root)) in comps.iter().enumerate() {
            let target = (0..n_shards)
                .min_by_key(|&s| shard_sizes[s])
                .unwrap_or_default();
            shard_sizes[target] += size;
            shard_of_comp[pos] = target as u32;
            comp_index[root as usize] = pos as u32;
        }
        let server_shard: Vec<u32> = (0..n_servers as u32)
            .map(|j| shard_of_comp[comp_index[dsu.find(j) as usize] as usize])
            .collect();
        let mut video_shard = vec![0u32; n_videos];
        let mut orphan_rr = 0u32;
        for (v, slot) in video_shard.iter_mut().enumerate() {
            let replicas = layout.replicas_of(vod_model::VideoId(v as u32));
            *slot = match replicas.first() {
                Some(&s) => server_shard[s.index()],
                None => {
                    // No replicas: any shard can (vacuously) own it.
                    let s = orphan_rr % n_shards as u32;
                    orphan_rr += 1;
                    s
                }
            };
        }
        ShardPlan {
            n_shards,
            video_shard,
            server_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::{Layout, ServerId};

    fn layout(n_servers: usize, replicas: Vec<Vec<u32>>) -> Layout {
        Layout::new(
            n_servers,
            replicas
                .into_iter()
                .map(|rs| rs.into_iter().map(ServerId).collect())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn pod_layout_splits_into_pods() {
        // Two independent pods of two servers each.
        let l = layout(4, vec![vec![0, 1], vec![2, 3], vec![0], vec![3]]);
        let plan = ShardPlan::decoupled(&l, 8);
        assert_eq!(plan.n_shards, 2);
        assert_eq!(plan.server_shard[0], plan.server_shard[1]);
        assert_eq!(plan.server_shard[2], plan.server_shard[3]);
        assert_ne!(plan.server_shard[0], plan.server_shard[2]);
        assert_eq!(plan.video_shard[0], plan.server_shard[0]);
        assert_eq!(plan.video_shard[1], plan.server_shard[2]);
        assert_eq!(plan.video_shard[2], plan.server_shard[0]);
        assert_eq!(plan.video_shard[3], plan.server_shard[3]);
    }

    #[test]
    fn connected_layout_collapses_to_one_shard() {
        // One video spanning both halves glues everything together.
        let l = layout(4, vec![vec![0, 1], vec![2, 3], vec![1, 2]]);
        let plan = ShardPlan::decoupled(&l, 8);
        assert_eq!(plan.n_shards, 1);
        assert!(plan.server_shard.iter().all(|&s| s == 0));
        assert!(plan.video_shard.iter().all(|&s| s == 0));
    }

    #[test]
    fn max_shards_caps_the_partition() {
        // Four singleton pods, but only two shards requested: LPT packs
        // two pods per shard.
        let l = layout(4, vec![vec![0], vec![1], vec![2], vec![3]]);
        let plan = ShardPlan::decoupled(&l, 2);
        assert_eq!(plan.n_shards, 2);
        let mut counts = [0usize; 2];
        for &s in &plan.server_shard {
            counts[s as usize] += 1;
        }
        assert_eq!(counts, [2, 2]);
    }

    #[test]
    fn packing_is_deterministic_and_balanced() {
        // Components of sizes 3, 2, 1, 1 over two shards: LPT gives
        // {3, 1} and {2, 1}.
        let l = layout(
            7,
            vec![vec![0, 1], vec![1, 2], vec![3, 4], vec![5], vec![6]],
        );
        let a = ShardPlan::decoupled(&l, 2);
        let b = ShardPlan::decoupled(&l, 2);
        assert_eq!(a, b);
        assert_eq!(a.n_shards, 2);
        let mut counts = [0usize; 2];
        for &s in &a.server_shard {
            counts[s as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 7);
        assert_eq!(*counts.iter().max().unwrap(), 4);
    }

    #[test]
    fn requesting_one_shard_is_the_identity_partition() {
        let l = layout(4, vec![vec![0], vec![1], vec![2], vec![3]]);
        let plan = ShardPlan::decoupled(&l, 1);
        assert_eq!(plan.n_shards, 1);
        assert!(plan.server_shard.iter().all(|&s| s == 0));
    }
}
