//! The simulation run loop.
//!
//! A [`Simulation`] binds a catalog, a cluster and a layout; [`Simulation::run`]
//! replays a request trace through the admission policy and produces a
//! [`SimReport`]. The loop is event-ordered: before each arrival, every
//! background event due at an earlier (or equal) instant is processed —
//! stream departures first (bandwidth frees up), then failure/recovery
//! transitions (killed streams are counted as disrupted), then load
//! samples (they observe the settled state).
//!
//! Failure bookkeeping: a departing stream releases its link bandwidth
//! only if its admission epoch still matches the server's failure epoch;
//! otherwise the stream was already killed by [`LinkState::fail`] and the
//! departure is stale. Backbone reservations of redirected streams are
//! reclaimed at the stream's *scheduled* end even if the proxy failed
//! earlier — a deliberate, documented simplification (the backbone pool
//! is shared, so the error is a short-lived over-reservation).

use crate::actuation::ReplicaActuator;
use crate::admission::{AdmissionConfig, AdmissionState, PendingRequest};
use crate::audit::{Auditor, Ledger};
use crate::controller::{ControllerConfig, DriftController};
use crate::dispatch::{AdmissionPolicy, Decision, Dispatcher};
use crate::event::{Departure, DepartureQueue, ShardedDepartureQueue, NO_STREAM};
use crate::failure::{FailureModel, FailurePlan, Transition, TransitionKind};
use crate::metrics::{MetricsCollector, SimReport};
use crate::repair::{FailoverPolicy, RepairConfig};
use crate::server::LinkState;
use crate::shard::ShardPlan;
use crate::time::SimTime;
use vod_model::{
    BitRate, Catalog, ClusterSpec, Layout, ModelError, RedundancyMap, ServerId, VideoId,
};
use vod_telemetry::{Counter, Histogram, ShardInstrument, Span, Telemetry};
use vod_workload::{ArrivalIter, ArrivalSource, Request, Trace};

/// Epoch sentinel for departures that were already shed by a brownout:
/// real epochs start at 0 and bump once per failure, so `u32::MAX` never
/// matches and the pop releases only the backbone reservation.
const SHED_EPOCH: u32 = u32::MAX;

/// Run-time knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// How requests are routed and admitted.
    pub policy: AdmissionPolicy,
    /// Peak-period length in minutes; load sampling and the report's
    /// time averages cover `[0, horizon_min]`. The paper uses 90.
    pub horizon_min: f64,
    /// Load-sampling cadence in minutes.
    pub sample_interval_min: f64,
    /// Injected server outages (empty = the paper's failure-free runs).
    pub failures: FailurePlan,
    /// Stochastic fault injection: compiled to outages at run start and
    /// merged with `failures`. Deterministic per the model's seed.
    pub failure_model: Option<FailureModel>,
    /// Mid-run re-replication of lost redundancy (off by default).
    pub repair: RepairConfig,
    /// Online replication controller: periodic re-replication and
    /// retirement driven by *observed* popularity drift (off by
    /// default). Actuates through the shared `repair` bandwidth budget,
    /// so enabling it without repair bandwidth senses but never copies.
    pub controller: ControllerConfig,
    /// What happens to a failing server's active streams (kill by
    /// default — the paper's implicit behavior).
    pub failover: FailoverPolicy,
    /// Record the full per-sample load series in the report (off by
    /// default; used for plotting Figure-6-style time series).
    pub record_series: bool,
    /// Overload admission pipeline: wait queue, patience, retries. The
    /// default ([`AdmissionConfig::default`]) is fully passive and
    /// byte-identical to the pre-pipeline blocking engine.
    pub admission: AdmissionConfig,
    /// Run the invariant auditor in release builds too (debug builds
    /// always audit). Auditing only reads state: it never changes a
    /// run's outcome, only whether a corrupted run fails fast.
    pub audit: bool,
    /// Engine shards (1 = the serial engine). When the replica graph
    /// partitions into independent server groups and every
    /// cluster-scoped feature is inert (no failures, passive admission,
    /// no backbone pool), each group runs on its own worker thread and
    /// the per-group results merge deterministically — byte-identical
    /// to `shards: 1`. Otherwise the run stays on the serial event
    /// loop, with the departure queue split into per-shard sub-queues
    /// merged in global `(time, sequence)` order (still
    /// byte-identical). See DESIGN.md §7.
    pub shards: usize,
    /// Bounded-lookahead windowed execution for the coupled sharded
    /// path: when `shards > 1` and the replica graph partitions but a
    /// coupling feature (failures, the controller, an active admission
    /// pipeline) forces the serial loop, the engine runs each server
    /// group's events in parallel up to a safe horizon — the earliest
    /// next cluster-scoped event — and merges exactly at a barrier.
    /// Reports stay byte-identical to the serial loop. See DESIGN.md §7.
    pub window: WindowConfig,
}

impl Default for SimConfig {
    /// The paper's defaults: strict static round-robin admission, a
    /// 90-minute peak period, 1-minute load samples, no failures, no
    /// repair, no failover.
    fn default() -> Self {
        SimConfig {
            policy: AdmissionPolicy::StaticRoundRobin,
            horizon_min: 90.0,
            sample_interval_min: 1.0,
            failures: FailurePlan::none(),
            failure_model: None,
            repair: RepairConfig::default(),
            controller: ControllerConfig::default(),
            failover: FailoverPolicy::Kill,
            record_series: false,
            admission: AdmissionConfig::default(),
            audit: false,
            shards: 1,
            window: WindowConfig::default(),
        }
    }
}

impl SimConfig {
    /// Alias for [`Default::default`], spelling out the provenance.
    pub fn paper_default() -> Self {
        Self::default()
    }
}

/// Tuning knobs for the windowed conservative-parallel executor (the
/// coupled sharded path — see [`SimConfig::window`] and DESIGN.md §7).
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Gate for the windowed path; `false` keeps coupled sharded runs
    /// on the plain serial loop (the departure queue still splits).
    pub enabled: bool,
    /// Minimum arrivals a window must cover to be worth its barrier;
    /// shorter windows coalesce into the serial fallback. Must be >= 1.
    pub min_events: u32,
    /// Upper bound on a window's simulated span in minutes, so quiet
    /// stretches between coupling events still barrier regularly. Must
    /// be finite and positive.
    pub max_span_min: f64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            enabled: true,
            min_events: 32,
            max_span_min: 5.0,
        }
    }
}

/// A bound simulation: catalog + cluster + layout + config.
#[derive(Debug, Clone)]
pub struct Simulation<'a> {
    catalog: &'a Catalog,
    cluster: &'a ClusterSpec,
    layout: &'a Layout,
    config: SimConfig,
}

impl<'a> Simulation<'a> {
    /// Binds and cross-validates the inputs (dimensions and the storage
    /// constraint (4); bandwidth is enforced dynamically by admission).
    pub fn new(
        catalog: &'a Catalog,
        cluster: &'a ClusterSpec,
        layout: &'a Layout,
        config: SimConfig,
    ) -> Result<Self, ModelError> {
        if layout.n_videos() != catalog.len() {
            return Err(ModelError::LengthMismatch {
                expected: layout.n_videos(),
                actual: catalog.len(),
            });
        }
        if layout.n_servers() != cluster.len() {
            return Err(ModelError::LengthMismatch {
                expected: layout.n_servers(),
                actual: cluster.len(),
            });
        }
        if !config.horizon_min.is_finite() || config.horizon_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "horizon_min",
                value: config.horizon_min,
            });
        }
        if !config.sample_interval_min.is_finite() || config.sample_interval_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "sample_interval_min",
                value: config.sample_interval_min,
            });
        }
        config.failures.validate_servers(cluster.len())?;
        if let Some(model) = &config.failure_model {
            model.validate(cluster.len())?;
        }
        config.admission.validate()?;
        config.controller.validate()?;
        if config.shards == 0 {
            return Err(ModelError::InvalidParameter {
                name: "shards",
                value: 0.0,
            });
        }
        if config.window.min_events == 0 {
            return Err(ModelError::InvalidParameter {
                name: "window.min_events",
                value: 0.0,
            });
        }
        if !config.window.max_span_min.is_finite() || config.window.max_span_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "window.max_span_min",
                value: config.window.max_span_min,
            });
        }
        if layout.any_coded() {
            // A coded stream spans k servers; the online controller's
            // replica moves and the backbone's whole-copy redirects both
            // assume one-server streams. Reject the combinations rather
            // than silently mis-accounting.
            if config.controller.enabled() {
                return Err(ModelError::InvalidParameter {
                    name: "controller with coded layout",
                    value: 1.0,
                });
            }
            if matches!(config.policy, AdmissionPolicy::BackboneRedirect { .. }) {
                return Err(ModelError::InvalidParameter {
                    name: "backbone redirect with coded layout",
                    value: 1.0,
                });
            }
        }
        layout.validate_storage(catalog, cluster)?;
        Ok(Simulation {
            catalog,
            cluster,
            layout,
            config,
        })
    }

    /// The bound configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replays `trace` and reports the outcome.
    pub fn run(&self, trace: &Trace) -> Result<SimReport, ModelError> {
        self.run_with_telemetry(trace, &Telemetry::disabled())
    }

    /// Replays `trace`, recording engine counters and timings into
    /// `telemetry` (see the `sim.*` instrument names below). With a
    /// disabled handle this is identical to [`Simulation::run`]: every
    /// instrument operation reduces to a branch on `None`.
    ///
    /// Instruments: counters `sim.arrivals`, `sim.admitted`,
    /// `sim.rejected`, `sim.redirected`, `sim.departures`,
    /// `sim.disrupted`, `sim.transitions`, `sim.samples`,
    /// `sim.admission_probes`, `sim.events`; span `sim.run` (seconds);
    /// histograms `sim.events_per_sec` and its manifest-facing twin
    /// `sim.engine.events_per_sec` (one observation per run) and
    /// `sim.queue.peak_len` (per-run peak of concurrently scheduled
    /// departures). With
    /// recovery active, additionally: counters `sim.streams.resumed`,
    /// `sim.streams.degraded`, `sim.repair.bytes_copied`,
    /// `sim.repair.copies`; histogram `sim.repair.time_to_redundancy_min`
    /// (one observation per run). With the admission pipeline or
    /// brownouts active, additionally: counters `sim.admission.queued`,
    /// `sim.admission.retried`, `sim.admission.abandoned`,
    /// `sim.admission.degraded`, `sim.brownout.active_min`; histogram
    /// `sim.admission.wait_min_pctl` (one observation per served
    /// request). With the online replication controller active,
    /// additionally: counters `sim.controller.ticks`,
    /// `sim.controller.backoffs`, `sim.controller.promotions`,
    /// `sim.controller.demotions`, `sim.controller.retired`,
    /// `sim.controller.copies`, `sim.controller.bytes_copied`.
    pub fn run_with_telemetry(
        &self,
        trace: &Trace,
        telemetry: &Telemetry,
    ) -> Result<SimReport, ModelError> {
        let span = telemetry.span("sim.run");
        let ct = EngineCounters::new(telemetry);
        // Counters are cumulative across runs sharing this handle; this
        // run's event count is the delta over the starting values. (In
        // the sharded path the shard workers share the same underlying
        // counters, so the delta still covers the whole run.)
        let events_before = ct.events();

        let outcome = match self.decoupled_plan() {
            Some(plan) => {
                // Workers iterate the one shared trace by borrowed
                // slice — no per-shard request clone — and keep the
                // arrivals their server group owns.
                self.run_decoupled(telemetry, &ct, &plan, |_k| trace.requests().iter().copied())?
            }
            None => {
                let queue_shards = self.config.shards.min(self.cluster.len()).max(1);
                let outcome = match self.windowed_plan() {
                    // Cluster-scoped features force the coupled loop,
                    // but the replica graph still partitions: run it
                    // under the bounded-lookahead window scheduler.
                    Some(plan) => self.run_windowed(trace, telemetry, &ct, plan)?,
                    None => self.run_core(
                        trace.requests().iter().copied(),
                        telemetry,
                        &ct,
                        queue_shards,
                        false,
                    )?,
                };
                if queue_shards > 1 {
                    // Cluster-scoped features forced the serial loop;
                    // per-shard telemetry still reports how the split
                    // departure queue carried the load.
                    for (k, &pushes) in outcome.queue_pushes.iter().enumerate() {
                        telemetry
                            .shard_counter(ShardInstrument::Departures, k)
                            .add(pushes);
                    }
                }
                outcome
            }
        };
        Ok(self.finish_run(telemetry, &span, &ct, events_before, outcome))
    }

    /// Replays a pull-based [`ArrivalSource`] and reports the outcome.
    ///
    /// The streaming twin of [`Simulation::run`]: arrivals are pulled
    /// lazily and merged into the `(time, seq)` event order one at a
    /// time, so the run's footprint is bounded by the concurrency peak
    /// (plus the source's O(catalog) state), never by the trace length.
    /// For a source that is draw-for-draw identical to a materialized
    /// generator (see `vod_workload::arrival`), the report is identical
    /// to running the materialized trace.
    pub fn run_streaming<S>(&self, source: S) -> Result<SimReport, ModelError>
    where
        S: ArrivalSource + Clone + Send + Sync,
    {
        self.run_streaming_with_telemetry(source, &Telemetry::disabled())
    }

    /// [`Simulation::run_streaming`] with engine counters and timings
    /// recorded into `telemetry` — the same instrument set as
    /// [`Simulation::run_with_telemetry`].
    pub fn run_streaming_with_telemetry<S>(
        &self,
        source: S,
        telemetry: &Telemetry,
    ) -> Result<SimReport, ModelError>
    where
        S: ArrivalSource + Clone + Send + Sync,
    {
        let span = telemetry.span("sim.run");
        let ct = EngineCounters::new(telemetry);
        let events_before = ct.events();
        let outcome = match self.decoupled_plan() {
            Some(plan) => {
                // Each worker replays its own clone of the source (the
                // stream is seed-deterministic, so every clone yields
                // the identical sequence) and keeps only its shard's
                // videos: O(1) trace memory at shards× generation CPU.
                self.run_decoupled(telemetry, &ct, &plan, |_k| ArrivalIter(source.clone()))?
            }
            None => {
                let queue_shards = self.config.shards.min(self.cluster.len()).max(1);
                let outcome =
                    self.run_core(ArrivalIter(source), telemetry, &ct, queue_shards, false)?;
                if queue_shards > 1 {
                    for (k, &pushes) in outcome.queue_pushes.iter().enumerate() {
                        telemetry
                            .shard_counter(ShardInstrument::Departures, k)
                            .add(pushes);
                    }
                }
                outcome
            }
        };
        Ok(self.finish_run(telemetry, &span, &ct, events_before, outcome))
    }

    /// Post-run instrument tail shared by the materialized and
    /// streaming entry points.
    fn finish_run(
        &self,
        telemetry: &Telemetry,
        span: &Span,
        ct: &EngineCounters,
        events_before: u64,
        outcome: EngineOutcome,
    ) -> SimReport {
        telemetry
            .counter("sim.admission_probes")
            .add(outcome.probes);
        if telemetry.is_enabled() {
            let events = ct.events() - events_before;
            telemetry.counter("sim.events").add(events);
            // In the decoupled path this is the *sum* of per-shard
            // peaks — an upper bound on the cluster-wide peak, which no
            // single queue observes there.
            telemetry
                .histogram("sim.queue.peak_len")
                .observe(outcome.peak_len as f64);
            let elapsed = span.elapsed_secs();
            if elapsed > 0.0 {
                let rate = events as f64 / elapsed;
                // `sim.events_per_sec` is the historical name; the
                // `sim.engine.`-prefixed twin keys BENCH_*.json-style
                // trajectories derived from run manifests.
                telemetry.histogram("sim.events_per_sec").observe(rate);
                telemetry
                    .histogram("sim.engine.events_per_sec")
                    .observe(rate);
            }
        }
        outcome.metrics.finish(self.config.horizon_min)
    }

    /// The server-group partition for the decoupled parallel path, or
    /// `None` when the run must stay on the serial loop: sharding is
    /// only sound when no event can cross server groups, i.e. no
    /// failure injection (rack/correlated failures strike whole server
    /// sets), a fully passive admission pipeline (the FIFO queue and
    /// its patience RNG are cluster-scoped), no shared backbone pool —
    /// and a replica graph that actually partitions.
    fn decoupled_plan(&self) -> Option<ShardPlan> {
        if self.config.shards <= 1 {
            return None;
        }
        if !self.config.failures.is_empty() || self.config.failure_model.is_some() {
            return None;
        }
        if !self.config.admission.is_passive() {
            return None;
        }
        if matches!(self.config.policy, AdmissionPolicy::BackboneRedirect { .. }) {
            return None;
        }
        // The online controller senses cluster-wide demand and moves
        // replicas across server groups: inherently coupling.
        if self.config.controller.enabled() {
            return None;
        }
        // A coded stream fans out over k servers, so the replica graph
        // cannot decouple; all-replicated layouts are unaffected.
        if self.layout.any_coded() {
            return None;
        }
        let plan = ShardPlan::decoupled(self.layout, self.config.shards);
        (plan.n_shards > 1).then_some(plan)
    }

    /// The server-group partition for the bounded-lookahead windowed
    /// executor, or `None` when a coupled run must stay on the plain
    /// serial loop. Unlike [`Simulation::decoupled_plan`], coupling
    /// features (failures, brownouts, the online controller, an active
    /// admission pipeline) are allowed — their next event *bounds* each
    /// window instead of vetoing parallelism. What still vetoes it:
    /// routing state that is cluster-scoped per request (the backbone
    /// pool), streams that span server groups (coded layouts), and a
    /// replica graph that does not partition at all.
    fn windowed_plan(&self) -> Option<ShardPlan> {
        if !self.config.window.enabled || self.config.shards <= 1 {
            return None;
        }
        if matches!(self.config.policy, AdmissionPolicy::BackboneRedirect { .. }) {
            return None;
        }
        if self.layout.any_coded() {
            return None;
        }
        let plan = ShardPlan::decoupled(self.layout, self.config.shards);
        (plan.n_shards > 1).then_some(plan)
    }

    /// Runs one full mini-engine per server group on scoped worker
    /// threads and merges the results in shard-index order. The merge
    /// is exact: every shard-local total is an integer (or has disjoint
    /// support across shards), and load samples are *replayed* on the
    /// coordinator — each sample instant's per-shard load vectors sum
    /// into the full cluster vector, which feeds the same
    /// [`MetricsCollector::sample_loads`] sequence the serial loop
    /// executes. The result is byte-identical to `shards: 1`.
    fn run_decoupled<F, I>(
        &self,
        telemetry: &Telemetry,
        ct: &EngineCounters,
        plan: &ShardPlan,
        make_stream: F,
    ) -> Result<EngineOutcome, ModelError>
    where
        F: Fn(usize) -> I + Sync,
        I: Iterator<Item = Request>,
    {
        // No per-shard request clone: every worker walks the full
        // arrival stream — a borrowed slice iterator over the shared
        // trace, or a replayed clone of a streaming source — and keeps
        // the requests its server group owns. Videos the plan does not
        // map fall to shard 0, whose engine pass surfaces the same
        // `UnknownVideo` error the old partition pre-pass raised.
        let make_stream = &make_stream;
        let results: Vec<Result<(EngineOutcome, u64), ModelError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..plan.n_shards)
                .map(|k| {
                    scope.spawn(move || {
                        // Each worker binds its own counter handles to
                        // the shared registry: cross-thread sums are
                        // exact, whatever the interleaving.
                        let ct = EngineCounters::new(telemetry);
                        let mut seen = 0u64;
                        let owned = make_stream(k).inspect(|_| seen += 1).filter(|r: &Request| {
                            plan.video_shard
                                .get(r.video.index())
                                .map_or(k == 0, |&s| s as usize == k)
                        });
                        let outcome = self.run_core(owned, telemetry, &ct, 1, true)?;
                        Ok((outcome, seen))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or(Err(ModelError::Internal {
                        context: "shard worker panicked",
                    }))
                })
                .collect()
        });
        let mut shards = Vec::with_capacity(results.len());
        let mut seen_counts = Vec::with_capacity(results.len());
        for r in results {
            let (outcome, seen) = r?;
            shards.push(outcome);
            seen_counts.push(seen);
        }
        // Every worker saw the same stream, so the pre-filter counts
        // must agree — the cross-worker replay integrity check.
        if seen_counts.windows(2).any(|w| w[0] != w[1]) {
            return Err(ModelError::Internal {
                context: "shard workers disagreed on the arrival stream length",
            });
        }
        let total_seen = seen_counts.first().copied().unwrap_or(0);

        let mut merged = MetricsCollector::new(self.catalog.len());
        merged.record_series(self.config.record_series);
        let mut probes = 0u64;
        let mut peak_len = 0usize;
        let n_samples = shards.first().map(|s| s.samples.len()).unwrap_or(0);
        let mut sample_grid = Vec::with_capacity(shards.len());
        for (k, mut shard) in shards.into_iter().enumerate() {
            if shard.samples.len() != n_samples {
                return Err(ModelError::Internal {
                    context: "shard sample schedules diverged",
                });
            }
            let (arrivals, admitted, _, _) = shard.metrics.outcome_totals();
            // Every admitted stream departs exactly once and no
            // transition/retry/abandonment exists here, so the shard's
            // event count is arrivals + departures (samples are the
            // coordinator's, below).
            telemetry
                .shard_counter(ShardInstrument::Events, k)
                .add(arrivals + admitted);
            probes += shard.probes;
            peak_len += shard.peak_len;
            sample_grid.push(std::mem::take(&mut shard.samples));
            merged.absorb(shard.metrics);
        }

        // Replay the sample schedule exactly as the serial loop runs
        // it: same instants, same repeated float accumulation of
        // `next_sample_min`, and per-server loads that are the
        // elementwise sums of the shard vectors (disjoint support, so
        // each entry is one shard's value plus exact zeros).
        let mut full = vec![0.0f64; self.cluster.len()];
        let mut next_sample_min = 0.0f64;
        for i in 0..n_samples {
            full.iter_mut().for_each(|x| *x = 0.0);
            for shard_samples in &sample_grid {
                for (acc, &x) in full.iter_mut().zip(&shard_samples[i]) {
                    *acc += x;
                }
            }
            ct.samples.inc();
            merged.sample_loads(&full, next_sample_min);
            next_sample_min += self.config.sample_interval_min;
        }

        // Merged-view audit: the per-shard auditors checked their own
        // state after every event; the coordinator re-checks request
        // conservation over the merged ledger.
        let (arrivals, admitted, rejected, abandoned) = merged.outcome_totals();
        if admitted + rejected + abandoned != arrivals || arrivals != total_seen {
            return Err(ModelError::InvariantViolation {
                at_min: self.config.horizon_min,
                what: format!(
                    "sharded merge lost request outcomes: \
                     {admitted} admitted + {rejected} rejected + {abandoned} abandoned \
                     != {arrivals} arrivals ({total_seen} in stream)"
                ),
            });
        }

        Ok(EngineOutcome {
            metrics: merged,
            samples: Vec::new(),
            probes,
            peak_len,
            queue_pushes: Vec::new(),
        })
    }

    /// The serial event loop over a pulled arrival stream, shared by
    /// the plain engine (full trace or streaming source,
    /// `capture_samples: false`) and the decoupled workers (one server
    /// group's ownership-filtered view, `capture_samples: true` — load
    /// samples are logged raw for the coordinator's replay instead of
    /// folded into the collector). Arrivals are consumed lazily, one at
    /// a time, merged against the `(time, seq)` event queue; the loop
    /// never needs the stream's length or its backing storage.
    fn run_core<I>(
        &self,
        requests: I,
        telemetry: &Telemetry,
        ct: &EngineCounters,
        queue_shards: usize,
        capture_samples: bool,
    ) -> Result<EngineOutcome, ModelError>
    where
        I: Iterator<Item = Request>,
    {
        // Hot per-video state, struct-of-arrays: the arrival loop reads
        // one u32 rate word and one u32 duration word per request
        // instead of chasing the catalog's full `Video` records.
        let videos = VideoTable::new(self.catalog)?;
        let mut state = self.build_state(queue_shards, capture_samples, None)?;
        for req in requests {
            let t = SimTime::from_min(req.arrival_min);
            state.advance_to(t, ct)?;
            self.arrival_body(&mut state, &videos, t, req.video, ct)?;
        }
        self.finish_core(state, telemetry, ct)
    }

    /// Binds the mutable run-loop state for one engine pass: compiled
    /// failure transitions, the actuation layer, coded-serving state
    /// and the departure queue — split by the windowed plan's server
    /// groups when one is given, by contiguous server blocks otherwise.
    fn build_state(
        &self,
        queue_shards: usize,
        capture_samples: bool,
        window_plan: Option<ShardPlan>,
    ) -> Result<RunState<'a>, ModelError> {
        // Fixed outages plus, when configured, the stochastic model's
        // draws for this horizon (deterministic per the model's seed).
        // The compiled plan is consumed, not cloned, and the fixed plan
        // is only copied when the two actually have to merge.
        let transitions = match &self.config.failure_model {
            Some(model) => {
                let compiled = model.compile(self.cluster.len(), self.config.horizon_min)?;
                if self.config.failures.is_empty() {
                    // `compile` already merged its own overlaps.
                    compiled.transitions()
                } else {
                    let (mut outages, mut brownouts) = compiled.into_parts();
                    outages.extend_from_slice(self.config.failures.outages());
                    brownouts.extend_from_slice(self.config.failures.brownouts());
                    FailurePlan::merged(outages)?
                        .add_brownouts(brownouts)?
                        .transitions()
                }
            }
            None => self.config.failures.transitions(),
        };
        // The actuation layer engages when failures can happen or the
        // online controller needs to move replicas. With repair disabled
        // it is pure bookkeeping: its content map stays identical to the
        // bound layout, so dispatch is unchanged.
        let drift_on = self.config.controller.enabled();
        let controller = if transitions.is_empty() && !drift_on {
            None
        } else {
            Some(ReplicaActuator::new(
                self.catalog,
                self.cluster,
                self.layout,
                self.config.repair,
            ))
        };
        let drift =
            drift_on.then(|| DriftController::new(self.catalog.len(), self.config.controller));
        let first_tick_min = self.config.controller.tick_min;

        let coded = self
            .layout
            .redundancy()
            .filter(|m| m.any_coded())
            .map(|m| CodedState {
                schemes: m.clone(),
                streams: Vec::new(),
                degraded_reads: 0,
                shares_reattached: 0,
            });
        let rack_of = if coded.is_some() {
            let mut rack_of = vec![u32::MAX; self.cluster.len()];
            if let Some(model) = &self.config.failure_model {
                for (r, rack) in model.racks.iter().enumerate() {
                    for &s in &rack.servers {
                        if rack_of[s.index()] == u32::MAX {
                            rack_of[s.index()] = r as u32;
                        }
                    }
                }
            }
            rack_of
        } else {
            Vec::new()
        };
        let controller = controller.map(|mut c| {
            if !rack_of.is_empty() {
                // Coded repair destinations honor the same per-rack
                // fragment bound the auditor enforces.
                c.set_rack_map(rack_of.clone());
            }
            c
        });

        // The windowed executor's sub-queues must coincide with the
        // plan's server groups so a whole group's due departures check
        // out as one unit; every other path keeps the contiguous block
        // split (pop order is owner-map independent either way).
        let departures = match &window_plan {
            Some(plan) => {
                ShardedDepartureQueue::with_owner(plan.server_shard.clone(), plan.n_shards)
            }
            None => ShardedDepartureQueue::new(self.cluster.len(), queue_shards),
        };
        let mut state = RunState {
            links: LinkState::new(self.cluster),
            dispatcher: Dispatcher::new(self.config.policy, self.catalog.len()),
            metrics: MetricsCollector::new(self.catalog.len()),
            departures,
            controller,
            coded,
            rack_of,
            layout: self.layout,
            transitions,
            next_transition: 0,
            next_sample_min: 0.0,
            next_sample_at: Some(SimTime::from_min(0.0)),
            sample_step: self.config.sample_interval_min,
            drift,
            next_ctrl_min: first_tick_min,
            next_ctrl_at: (drift_on && first_tick_min <= self.config.horizon_min)
                .then(|| SimTime::from_min(first_tick_min)),
            ctrl_step: first_tick_min,
            horizon: self.config.horizon_min,
            failover: self.config.failover,
            admission: AdmissionState::new(&self.config.admission),
            auditor: (cfg!(debug_assertions) || self.config.audit).then(Auditor::new),
            brownout_started: vec![None; self.cluster.len()],
            brownout_min: 0.0,
            load_scratch: Vec::new(),
            extract_scratch: Vec::new(),
            fifo_scratch: Vec::new(),
            sample_log: capture_samples.then(Vec::new),
            window_plan,
            window_poisoned: false,
        };
        state.metrics.record_series(self.config.record_series);
        Ok(state)
    }

    /// One arrival at `t`: catalog lookup, offered-demand accounting,
    /// drift sensing and the admission pipeline — the per-request body
    /// both the serial loop and the windowed wrapper's fallback run.
    fn arrival_body(
        &self,
        state: &mut RunState,
        videos: &VideoTable,
        t: SimTime,
        video: VideoId,
        ct: &EngineCounters,
    ) -> Result<(), ModelError> {
        let (kbps, duration_s) = videos
            .get(video.index())
            .ok_or(ModelError::UnknownVideo(video))?;

        ct.arrivals.inc();
        state.metrics.on_arrival(video.index());
        state.metrics.on_offered(kbps, duration_s);
        if let Some(d) = state.drift.as_mut() {
            // The controller senses *observed* offered demand, never
            // the generator's true rates.
            d.observe(video.index());
        }
        state.handle_request(
            t,
            PendingRequest {
                video,
                kbps,
                duration_s,
                arrived: t,
                retries_left: self.config.admission.max_retries,
                attempt: 0,
            },
            ct,
        );
        state.audit_check(t)?;
        debug_assert!(state.links.within_capacity());
        Ok(())
    }

    /// Horizon tail shared by every engine pass: runs the remaining
    /// background events, settles the admission pipeline and brownout
    /// windows, releases post-horizon streams and folds the
    /// feature-gated telemetry.
    fn finish_core(
        &self,
        mut state: RunState,
        telemetry: &Telemetry,
        ct: &EngineCounters,
    ) -> Result<EngineOutcome, ModelError> {
        // Tail: run the remaining background events out to the horizon,
        // abort any still-in-flight repair copies (releasing their
        // reservations), then retire whatever still streams past it.
        state.advance_to(SimTime::from_min(self.config.horizon_min), ct)?;
        if let Some(c) = state.controller.as_mut() {
            c.finish(
                self.config.horizon_min,
                &mut state.links,
                &mut state.dispatcher,
            );
        }
        // Requests the pipeline still owes an outcome at the horizon
        // (queued or sleeping until a retry) count as abandoned: the peak
        // period ended before they were served.
        for _ in state.admission.drain_remaining() {
            ct.abandoned.inc();
            state.metrics.on_abandoned();
        }
        // Close brownout windows still open at the horizon.
        for j in 0..state.brownout_started.len() {
            if let Some(start) = state.brownout_started[j].take() {
                state.brownout_min += (self.config.horizon_min - start.as_min()).max(0.0);
            }
        }
        state.metrics.set_brownout_active_min(state.brownout_min);
        state.audit_check(SimTime::from_min(self.config.horizon_min))?;
        for d in state.departures.drain_all() {
            ct.departures.inc();
            if d.stream == NO_STREAM {
                if state.links.epoch(d.server) == d.epoch {
                    state.links.release(d.server, d.kbps);
                }
                if d.backbone_kbps > 0 {
                    state.dispatcher.release_backbone(d.backbone_kbps);
                }
            } else if state.stream_live(d.stream) && state.links.epoch(d.server) == d.epoch {
                state.links.release(d.server, d.kbps);
            }
        }
        debug_assert_eq!(state.links.total_streams(), 0);
        debug_assert_eq!(state.dispatcher.backbone_used_kbps(), 0);

        if let Some(c) = &state.controller {
            state.metrics.set_recovery_stats(
                c.bytes_copied(),
                c.copies_completed(),
                c.deficit_min(),
                c.deficit_video_min(),
                c.unavailability_video_min(),
            );
            telemetry
                .counter("sim.repair.bytes_copied")
                .add(c.bytes_copied());
            telemetry
                .counter("sim.repair.copies")
                .add(c.copies_completed());
            telemetry
                .histogram("sim.repair.time_to_redundancy_min")
                .observe(c.deficit_min());
        }

        if let Some(cs) = &state.coded {
            // Coded-tier instruments exist only for coded runs, so
            // all-replicated manifests stay byte-identical to pre-coding
            // ones.
            telemetry
                .counter("sim.coded.degraded_reads")
                .add(cs.degraded_reads);
            telemetry
                .counter("sim.coded.shares_reattached")
                .add(cs.shares_reattached);
            if let Some(c) = &state.controller {
                telemetry
                    .counter("sim.repair.coded.reconstructions")
                    .add(c.coded_reconstructions());
                telemetry
                    .counter("sim.repair.coded.bytes")
                    .add(c.coded_bytes_read());
            }
        }

        if let Some(d) = &state.drift {
            let (copies, bytes) = state
                .controller
                .as_ref()
                .map(|c| (c.drift_copies_completed(), c.drift_bytes_copied()))
                .unwrap_or((0, 0));
            state.metrics.set_controller_stats(
                d.ticks(),
                d.backoffs(),
                d.promotions(),
                d.demotions(),
                d.retired(),
                copies,
                bytes,
            );
            telemetry.counter("sim.controller.ticks").add(d.ticks());
            telemetry
                .counter("sim.controller.backoffs")
                .add(d.backoffs());
            telemetry
                .counter("sim.controller.promotions")
                .add(d.promotions());
            telemetry
                .counter("sim.controller.demotions")
                .add(d.demotions());
            telemetry.counter("sim.controller.retired").add(d.retired());
            telemetry.counter("sim.controller.copies").add(copies);
            telemetry.counter("sim.controller.bytes_copied").add(bytes);
        }

        if state.brownout_min > 0.0 {
            telemetry
                .counter("sim.brownout.active_min")
                .add(state.brownout_min.ceil() as u64);
        }
        if telemetry.is_enabled() && state.departures.peak_len() > 0 {
            // Queue backing storage amortized over the concurrency
            // peak: the marginal resident cost of one active stream.
            // The memory-smoke CI step gates on this staying under the
            // ceiling documented in DESIGN.md §7.
            telemetry
                .histogram("sim.engine.bytes_per_active_stream")
                .observe(state.departures.mem_bytes() as f64 / state.departures.peak_len() as f64);
        }
        Ok(EngineOutcome {
            samples: state.sample_log.take().unwrap_or_default(),
            probes: state.dispatcher.admission_probes(),
            peak_len: state.departures.peak_len(),
            queue_pushes: state.departures.per_shard_pushes().to_vec(),
            metrics: state.metrics,
        })
    }

    /// The coupled engine loop under bounded-lookahead windowed
    /// parallelism (DESIGN.md §7). Between cluster-scoped events the
    /// plan's server groups evolve independently, so the wrapper
    /// repeatedly computes a safe horizon `h` — the earliest next
    /// failure/brownout transition, control tick, load sample, repair
    /// completion, or `window.max_span_min` from now — and executes
    /// every group's arrivals and due departures strictly before `h`
    /// in parallel, then merges exactly at a barrier.
    ///
    /// Exactness: the coordinator pre-pass fixes all cluster-scoped
    /// order (arrival counters, drift sensing, round-robin positions,
    /// departure sequence numbers) in global arrival order; group
    /// workers touch only server-disjoint link state and their own
    /// sub-queue; every merged total is an integer sum (or a sum of
    /// exact-zero waits), so the report is byte-identical to the
    /// serial loop at any shard count. Windows too short to amortize
    /// the barrier, contended non-passive windows, and runs whose
    /// repair copies cross groups (poisoning) degrade to the serial
    /// per-arrival body — same code, same bytes.
    fn run_windowed(
        &self,
        trace: &Trace,
        telemetry: &Telemetry,
        ct: &EngineCounters,
        plan: ShardPlan,
    ) -> Result<EngineOutcome, ModelError> {
        let videos = VideoTable::new(self.catalog)?;
        let n_groups = plan.n_shards;
        let mut owned: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
        for (j, &g) in plan.server_shard.iter().enumerate() {
            owned[g as usize].push(j);
        }
        let queue_shards = self.config.shards.min(self.cluster.len()).max(1);
        let mut state = self.build_state(queue_shards, false, Some(plan))?;

        // Persistent per-group link replicas: owned servers sync
        // master -> replica at window open and back at the barrier, so
        // each window moves O(group) words, never whole-cluster clones.
        let mut group_links: Vec<LinkState> = (0..n_groups)
            .map(|_| LinkState::new(self.cluster))
            .collect();
        let mut records: Vec<WindowArrival> = Vec::new();
        let mut grouped: Vec<WindowArrival> = Vec::new();
        let mut starts: Vec<usize> = vec![0; n_groups];
        let mut counts: Vec<usize> = vec![0; n_groups];
        let mut cursors: Vec<usize> = vec![0; n_groups];
        let mut demand: Vec<u64> = vec![0; self.cluster.len()];
        let win = WindowCounters::new(telemetry);
        let min_arrivals = self.config.window.min_events.max(1) as usize;
        let max_span = self.config.window.max_span_min;
        let passive = self.config.admission.is_passive();
        let policy = self.config.policy;
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);

        let reqs = trace.requests();
        let mut i = 0usize;
        'arrivals: while i < reqs.len() {
            let t = SimTime::from_min(reqs[i].arrival_min);
            state.advance_to(t, ct)?;

            'window: {
                if state.window_poisoned
                    || state.admission.in_flight() > 0
                    || state.controller.as_ref().is_some_and(|c| c.has_pending())
                {
                    break 'window;
                }
                // Safe horizon: nothing cluster-scoped fires strictly
                // before `h`, so no event below it crosses groups.
                let mut h = t + SimTime::from_min(max_span);
                for at in [
                    state.transitions.get(state.next_transition).map(|x| x.at),
                    state.next_ctrl_at,
                    state.next_sample_at,
                    state.controller.as_ref().and_then(|c| c.next_completion()),
                ]
                .into_iter()
                .flatten()
                {
                    h = h.min(at);
                }
                if h <= t {
                    break 'window;
                }
                let mut j = i;
                while j < reqs.len() && SimTime::from_min(reqs[j].arrival_min) < h {
                    j += 1;
                }
                if j - i < min_arrivals {
                    // Too short to amortize a barrier: coalesce into
                    // the serial fallback below.
                    win.coalesced.inc();
                    break 'window;
                }

                // Stage the window's arrivals. An out-of-catalog id
                // falls back to the serial body, which surfaces the
                // same `UnknownVideo` error at the same request.
                let plan = state
                    .window_plan
                    .as_ref()
                    .expect("windowed run lost its plan");
                records.clear();
                for r in &reqs[i..j] {
                    let Some((kbps, duration_s)) = videos.get(r.video.index()) else {
                        break 'window;
                    };
                    records.push(WindowArrival {
                        at: SimTime::from_min(r.arrival_min),
                        video: r.video,
                        kbps,
                        duration_s,
                        group: plan.video_shard[r.video.index()],
                        start: 0,
                        seq: 0,
                    });
                }

                if !passive {
                    // A non-passive pipeline is only inert in-window if
                    // every arrival provably admits at full rate — then
                    // the FIFO queue, patience RNG, retry timers and
                    // degrade ladder all stay untouched. Sufficient
                    // bound: per server, the summed full-rate demand of
                    // every window arrival that *could* land on it fits
                    // its free capacity (down servers admit nothing, so
                    // up-ness is implied).
                    demand.iter_mut().for_each(|d| *d = 0);
                    for rec in &records {
                        let replicas = match state.controller.as_ref() {
                            Some(c) => c.holders(rec.video),
                            None => state.layout.replicas_of(rec.video),
                        };
                        for &s in replicas {
                            demand[s.index()] += rec.kbps;
                        }
                    }
                    let fits = demand
                        .iter()
                        .enumerate()
                        .all(|(s, &d)| d == 0 || state.links.can_admit(ServerId(s as u32), d));
                    if !fits {
                        // Contended window: step one arrival serially
                        // and re-probe at the next.
                        win.stalls.inc();
                        break 'window;
                    }
                }

                // Commit: fix all cluster-scoped order here, in global
                // arrival order, so workers never race for it.
                let seq_base = state.departures.reserve_seqs((j - i) as u64);
                for (r, rec) in records.iter_mut().enumerate() {
                    rec.seq = seq_base + r as u64;
                    ct.arrivals.inc();
                    state.metrics.on_arrival(rec.video.index());
                    state.metrics.on_offered(rec.kbps, rec.duration_s);
                    if let Some(d) = state.drift.as_mut() {
                        d.observe(rec.video.index());
                    }
                    if !matches!(policy, AdmissionPolicy::LeastLoadedReplica) {
                        let n_replicas = match state.controller.as_ref() {
                            Some(c) => c.holders(rec.video).len(),
                            None => state.layout.replicas_of(rec.video).len(),
                        };
                        rec.start = state.dispatcher.rr_advance(rec.video, n_replicas) as u32;
                    }
                }

                // Counting-sort the staged arrivals into contiguous
                // per-group runs (stable, so each run keeps global
                // arrival order): a worker then scans exactly its own
                // slice instead of filtering the whole window, which
                // would cost `groups × window` comparisons per window.
                counts.iter_mut().for_each(|c| *c = 0);
                for rec in &records {
                    counts[rec.group as usize] += 1;
                }
                let mut base = 0usize;
                for (g, &c) in counts.iter().enumerate() {
                    starts[g] = base;
                    cursors[g] = base;
                    base += c;
                }
                grouped.clear();
                grouped.resize(records.len(), records[0]);
                for rec in &records {
                    let cur = &mut cursors[rec.group as usize];
                    grouped[*cur] = *rec;
                    *cur += 1;
                }

                // Check out each group's state and execute the window.
                for (g, servers) in owned.iter().enumerate() {
                    for &s in servers {
                        group_links[g].copy_server_from(&state.links, s);
                    }
                }
                let mut queues: Vec<DepartureQueue> = (0..n_groups)
                    .map(|g| state.departures.take_shard(g))
                    .collect();
                let controller = state.controller.as_ref();
                let layout = state.layout;
                let (grouped_ref, starts_ref, counts_ref) = (&grouped, &starts, &counts);
                let active = counts.iter().filter(|&&c| c > 0).count();
                let deltas: Vec<WindowDelta> = if workers > 1 && active >= 2 {
                    std::thread::scope(|scope| {
                        group_links
                            .iter_mut()
                            .zip(queues.iter_mut())
                            .enumerate()
                            .map(|(g, (links, queue))| {
                                let slice =
                                    &grouped_ref[starts_ref[g]..starts_ref[g] + counts_ref[g]];
                                scope.spawn(move || {
                                    run_window_group(
                                        g as u32, h, policy, slice, links, queue, controller,
                                        layout, ct,
                                    )
                                })
                            })
                            .collect::<Vec<_>>()
                            .into_iter()
                            .map(|handle| handle.join().expect("window worker panicked"))
                            .collect()
                    })
                } else {
                    // Single core (or one busy group): identical worker
                    // code inline — windows still open and count.
                    group_links
                        .iter_mut()
                        .zip(queues.iter_mut())
                        .enumerate()
                        .map(|(g, (links, queue))| {
                            let slice = &grouped_ref[starts_ref[g]..starts_ref[g] + counts_ref[g]];
                            run_window_group(
                                g as u32, h, policy, slice, links, queue, controller, layout, ct,
                            )
                        })
                        .collect()
                };

                // Exact barrier merge: integer deltas, disjoint server
                // state, and a queue re-assembled under the pre-assigned
                // global sequence order.
                let mut admitted = 0u64;
                let mut delivered = 0u128;
                let mut probes = 0u64;
                let mut events = 0u64;
                let mut last_at = t;
                let mut rejections: Vec<(usize, u64)> = Vec::new();
                for (g, (delta, queue)) in deltas.into_iter().zip(queues).enumerate() {
                    state.departures.put_shard(g, queue, delta.pushes);
                    for &s in &owned[g] {
                        state.links.copy_server_from(&group_links[g], s);
                    }
                    admitted += delta.admitted;
                    delivered += delta.delivered_kbps_s;
                    probes += delta.probes;
                    events += delta.events;
                    if let Some(at) = delta.last_at {
                        last_at = last_at.max(at);
                    }
                    rejections.extend(delta.rejections);
                }
                state.metrics.apply_window(admitted, delivered, &rejections);
                state.dispatcher.add_probes(probes);
                win.windows.inc();
                win.events.add(events);
                state.audit_check(last_at)?;
                debug_assert!(state.links.within_capacity());
                i = j;
                continue 'arrivals;
            }

            // Serial fallback: one arrival through the exact coupled body.
            self.arrival_body(&mut state, &videos, t, reqs[i].video, ct)?;
            i += 1;
        }
        self.finish_core(state, telemetry, ct)
    }
}

/// Struct-of-arrays view of the catalog's hot per-video words: one u32
/// rate and one u32 duration per title (a 20k-video catalog fits in
/// 160 KiB — resident in L2 for the whole run). Built once per engine
/// pass; the arrival loop indexes it instead of the catalog.
struct VideoTable {
    kbps: Vec<u32>,
    duration_s: Vec<u32>,
}

impl VideoTable {
    fn new(catalog: &Catalog) -> Result<Self, ModelError> {
        let mut kbps = Vec::with_capacity(catalog.len());
        let mut duration_s = Vec::with_capacity(catalog.len());
        for v in catalog.videos() {
            let d = u32::try_from(v.duration_s).map_err(|_| ModelError::InvalidParameter {
                name: "duration_s (exceeds u32)",
                value: v.duration_s as f64,
            })?;
            kbps.push(v.bitrate.kbps());
            duration_s.push(d);
        }
        Ok(VideoTable { kbps, duration_s })
    }

    /// `(kbps, duration_s)` of video `i`, widened for the admission
    /// arithmetic; `None` for out-of-catalog ids.
    #[inline]
    fn get(&self, i: usize) -> Option<(u64, u64)> {
        let k = *self.kbps.get(i)?;
        Some((k as u64, self.duration_s[i] as u64))
    }
}

/// What one engine pass (serial run or decoupled shard worker) hands
/// back for finalization.
struct EngineOutcome {
    metrics: MetricsCollector,
    /// Raw per-sample load vectors, non-empty only for decoupled shard
    /// workers (`capture_samples: true`).
    samples: Vec<Vec<f64>>,
    /// Dispatcher admission probes (summed across shards when merged).
    probes: u64,
    /// Peak scheduled departures (summed across shards when merged).
    peak_len: usize,
    /// Pushes per departure sub-queue (empty for merged outcomes).
    queue_pushes: Vec<u64>,
}

/// Telemetry counter handles used by the run loop.
struct EngineCounters {
    arrivals: Counter,
    admitted: Counter,
    rejected: Counter,
    redirected: Counter,
    departures: Counter,
    disrupted: Counter,
    resumed: Counter,
    degraded: Counter,
    transitions: Counter,
    samples: Counter,
    queued: Counter,
    retried: Counter,
    abandoned: Counter,
    adm_degraded: Counter,
    wait_min: Histogram,
}

impl EngineCounters {
    /// Binds the engine's counter handles to `telemetry`'s registry.
    /// Handle sets bound to the same registry (e.g. one per shard
    /// worker) share the underlying atomics.
    fn new(telemetry: &Telemetry) -> Self {
        EngineCounters {
            arrivals: telemetry.counter("sim.arrivals"),
            admitted: telemetry.counter("sim.admitted"),
            rejected: telemetry.counter("sim.rejected"),
            redirected: telemetry.counter("sim.redirected"),
            departures: telemetry.counter("sim.departures"),
            disrupted: telemetry.counter("sim.disrupted"),
            resumed: telemetry.counter("sim.streams.resumed"),
            degraded: telemetry.counter("sim.streams.degraded"),
            transitions: telemetry.counter("sim.transitions"),
            samples: telemetry.counter("sim.samples"),
            queued: telemetry.counter("sim.admission.queued"),
            retried: telemetry.counter("sim.admission.retried"),
            abandoned: telemetry.counter("sim.admission.abandoned"),
            adm_degraded: telemetry.counter("sim.admission.degraded"),
            wait_min: telemetry.histogram("sim.admission.wait_min_pctl"),
        }
    }

    /// Total events recorded on this handle set (cumulative across runs).
    fn events(&self) -> u64 {
        self.arrivals.get()
            + self.departures.get()
            + self.transitions.get()
            + self.samples.get()
            + self.retried.get()
            + self.abandoned.get()
    }
}

/// One arrival staged for a parallel window, with every cluster-scoped
/// decision (round-robin start position, global departure sequence
/// number) pre-assigned by the coordinator in serial arrival order.
#[derive(Clone, Copy)]
struct WindowArrival {
    at: SimTime,
    video: VideoId,
    kbps: u64,
    duration_s: u64,
    /// The server group that serves this video under the window plan.
    group: u32,
    /// Pre-advanced round-robin position (unused by least-loaded).
    start: u32,
    /// Pre-assigned global departure sequence number.
    seq: u64,
}

/// One group's integer-exact outcome for a window, merged at the barrier.
#[derive(Default)]
struct WindowDelta {
    admitted: u64,
    delivered_kbps_s: u128,
    /// Sparse per-video rejection counts `(video index, count)`.
    rejections: Vec<(usize, u64)>,
    /// Admission-scan probes, folded into the dispatcher at the barrier.
    probes: u64,
    /// Departures pushed, for the sub-queue's push telemetry.
    pushes: u64,
    /// Arrival + departure events executed inside the window.
    events: u64,
    /// Latest event instant handled (drives the barrier's audit check).
    last_at: Option<SimTime>,
}

/// `sim.window.*` telemetry: windowed-executor health counters.
struct WindowCounters {
    /// Windows opened (parallel or inline).
    windows: Counter,
    /// Events (arrivals + departures) executed inside windows.
    events: Counter,
    /// Candidate windows coalesced into the serial path for being
    /// shorter than `window.min_events`.
    coalesced: Counter,
    /// Barrier stalls: non-passive windows whose headroom check failed,
    /// stepping one arrival serially instead.
    stalls: Counter,
}

impl WindowCounters {
    fn new(telemetry: &Telemetry) -> Self {
        WindowCounters {
            windows: telemetry.counter("sim.window.windows"),
            events: telemetry.counter("sim.window.events"),
            coalesced: telemetry.counter("sim.window.coalesced"),
            stalls: telemetry.counter("sim.window.stalls"),
        }
    }
}

/// Executes one server group's slice of a window: its arrivals (the
/// coordinator's counting-sorted per-group run, still in global
/// order), interleaved exactly with the group sub-queue's due
/// departures, all strictly before horizon `h`.
///
/// Runs against the group's private [`LinkState`] replica and
/// [`DepartureQueue`] shard, so concurrent calls for different groups
/// share nothing mutable. Telemetry counters are shared atomics — order
/// of increments is unobservable in the report. Everything
/// order-sensitive returns in the [`WindowDelta`] for the serial
/// barrier merge.
#[allow(clippy::too_many_arguments)]
fn run_window_group(
    group: u32,
    h: SimTime,
    policy: AdmissionPolicy,
    records: &[WindowArrival],
    links: &mut LinkState,
    queue: &mut DepartureQueue,
    controller: Option<&ReplicaActuator>,
    layout: &Layout,
    ct: &EngineCounters,
) -> WindowDelta {
    let mut delta = WindowDelta::default();

    /// Pops the next due departure (`at <= bound`) and releases its
    /// bandwidth exactly as the serial pump's `NO_STREAM` branch does.
    /// Window eligibility guarantees no backbone or coded-stream
    /// departures exist on this path.
    fn pop_due_departure(
        queue: &mut DepartureQueue,
        links: &mut LinkState,
        bound: SimTime,
        ct: &EngineCounters,
        delta: &mut WindowDelta,
    ) {
        let d = queue
            .pop_due(bound)
            .expect("window departure due but queue empty");
        ct.departures.inc();
        delta.events += 1;
        delta.last_at = Some(d.at);
        debug_assert_eq!(d.stream, NO_STREAM);
        debug_assert_eq!(d.backbone_kbps, 0);
        if links.epoch(d.server) == d.epoch {
            links.release(d.server, d.kbps);
        }
    }

    for rec in records {
        debug_assert_eq!(rec.group, group);
        while queue.next_key().is_some_and(|(at, _)| at <= rec.at) {
            pop_due_departure(queue, links, rec.at, ct, &mut delta);
        }
        let replicas = match controller {
            Some(c) => c.holders(rec.video),
            None => layout.replicas_of(rec.video),
        };
        let (decision, probes) =
            Dispatcher::route(policy, rec.start as usize, rec.kbps, replicas, links);
        delta.probes += probes;
        delta.events += 1;
        delta.last_at = Some(rec.at);
        match decision {
            Decision::Admit { server, .. } => {
                links.admit(server, rec.kbps);
                ct.admitted.inc();
                ct.wait_min.observe(0.0);
                delta.admitted += 1;
                delta.delivered_kbps_s += rec.kbps as u128 * rec.duration_s as u128;
                queue.push_with_seq(
                    Departure {
                        at: rec.at + SimTime::from_secs(rec.duration_s),
                        server,
                        video: rec.video,
                        kbps: rec.kbps,
                        backbone_kbps: 0,
                        epoch: links.epoch(server),
                        stream: NO_STREAM,
                    },
                    rec.seq,
                );
                delta.pushes += 1;
            }
            Decision::Reject => {
                ct.rejected.inc();
                let v = rec.video.index();
                match delta.rejections.iter_mut().find(|(i, _)| *i == v) {
                    Some((_, n)) => *n += 1,
                    None => delta.rejections.push((v, 1)),
                }
            }
        }
    }
    // Drain departures falling after the last arrival but before the
    // horizon — the serial loop would pump them before whatever
    // cluster-scoped event sits at `h`.
    while queue.next_key().is_some_and(|(at, _)| at < h) {
        pop_due_departure(queue, links, h, ct, &mut delta);
    }
    delta
}

/// How a failing server's stream fared under failover.
enum Rescued {
    Full,
    Degraded,
    No,
}

/// One live (or killed) coded viewer: the `k` fragment shares it is
/// being served from, tied to its departures by index into
/// [`CodedState::streams`].
#[derive(Debug)]
struct CodedStream {
    /// The servers currently streaming one fragment share each
    /// (emptied when the stream is killed).
    servers: Vec<ServerId>,
    /// Per-holder share rate, `⌈rate / k⌉` kbps.
    share_kbps: u64,
    /// The viewer-facing admitted rate (goodput accounting on kill).
    full_kbps: u64,
    /// Set when failover could not keep `k` shares alive; the sibling
    /// departures then pop without releasing anything.
    killed: bool,
}

/// Engine-side state for erasure-coded serving, present only when the
/// bound layout has at least one `Coded` video — all-replicated runs
/// never allocate it and take the exact pre-coding code paths.
#[derive(Debug)]
struct CodedState {
    /// Per-video schemes (cloned from the layout's redundancy map).
    schemes: RedundancyMap,
    /// Every coded stream ever admitted, indexed by `Departure::stream`.
    /// Slots are never freed: at simulation scale the retained tail is
    /// a few dozen bytes per admission.
    streams: Vec<CodedStream>,
    /// Admissions that had to read at least one parity fragment
    /// (some of the first `k` holders were unavailable).
    degraded_reads: u64,
    /// Failed-over fragment shares re-attached to another holder.
    shares_reattached: u64,
}

/// Mutable run-loop state, split out so the background-event pump and the
/// failover logic can borrow its fields independently.
struct RunState<'a> {
    links: LinkState,
    dispatcher: Dispatcher,
    metrics: MetricsCollector,
    departures: ShardedDepartureQueue,
    controller: Option<ReplicaActuator>,
    /// Coded-serving state (`None` for all-replicated layouts).
    coded: Option<CodedState>,
    /// Rack of each server (`u32::MAX` = unracked), non-empty only when
    /// a coded layout runs under a rack failure model; feeds the
    /// auditor's rack anti-affinity check.
    rack_of: Vec<u32>,
    /// Sensing/decision state of the online replication controller
    /// (`None` unless [`ControllerConfig::enabled`]).
    drift: Option<DriftController>,
    layout: &'a Layout,
    transitions: Vec<Transition>,
    next_transition: usize,
    next_sample_min: f64,
    /// `next_sample_min` converted once per sample instead of once per
    /// pump iteration (`None` past the horizon).
    next_sample_at: Option<SimTime>,
    sample_step: f64,
    /// Next control-tick instant (`None` when the controller is off or
    /// past the horizon).
    next_ctrl_at: Option<SimTime>,
    next_ctrl_min: f64,
    ctrl_step: f64,
    horizon: f64,
    failover: FailoverPolicy,
    admission: AdmissionState,
    auditor: Option<Auditor>,
    /// Per-server brownout start instant, `Some` while one is active.
    brownout_started: Vec<Option<SimTime>>,
    /// Accumulated server·minutes of brownout (closed windows).
    brownout_min: f64,
    /// Reusable buffer for per-sample stream loads.
    load_scratch: Vec<f64>,
    /// When `Some`, raw per-sample load vectors are logged here instead
    /// of being folded into `metrics` (decoupled shard workers log;
    /// the coordinator replays the merged vectors — see
    /// [`Simulation::run_decoupled`]).
    sample_log: Option<Vec<Vec<f64>>>,
    /// Reusable buffer for failover extractions.
    extract_scratch: Vec<Departure>,
    /// Reusable buffer for FIFO queue drains.
    fifo_scratch: Vec<u64>,
    /// The windowed executor's server-group plan (`None` on every other
    /// path). `advance_to` checks repair completions against it: a copy
    /// integrated outside the video's own group breaks the plan's
    /// group-disjointness, permanently poisoning further windows.
    window_plan: Option<ShardPlan>,
    /// Set once a cross-group repair lands; the wrapper then runs
    /// serially for the rest of the pass.
    window_poisoned: bool,
}

impl RunState<'_> {
    /// Processes every background event (departure / repair completion /
    /// transition / queue abandonment / retry / sample / control tick)
    /// with an instant <= `t`, in time order; ties break in exactly that
    /// order. The control tick deliberately fires *last* at its instant,
    /// so it senses the settled state every other event left behind.
    fn advance_to(&mut self, t: SimTime, ct: &EngineCounters) -> Result<(), ModelError> {
        loop {
            let dep_at = self.departures.next_time();
            let rep_at = self.controller.as_ref().and_then(|c| c.next_completion());
            let tr_at = self.transitions.get(self.next_transition).map(|x| x.at);
            let aband_at = self.admission.next_deadline();
            let retry_at = self.admission.next_retry();
            let sample_at = self.next_sample_at;
            let ctrl_at = self.next_ctrl_at;

            let candidates = [
                dep_at, rep_at, tr_at, aband_at, retry_at, sample_at, ctrl_at,
            ];
            let Some(min_at) = candidates.into_iter().flatten().min() else {
                break;
            };
            if min_at > t {
                break;
            }
            if dep_at == Some(min_at) {
                let d = self
                    .departures
                    .pop_due(min_at)
                    .ok_or(ModelError::Internal {
                        context: "departure queue empty at its own next_time",
                    })?;
                ct.departures.inc();
                if d.stream == NO_STREAM {
                    if self.links.epoch(d.server) == d.epoch {
                        self.links.release(d.server, d.kbps);
                    }
                    if d.backbone_kbps > 0 {
                        self.dispatcher.release_backbone(d.backbone_kbps);
                    }
                } else if self.stream_live(d.stream) && self.links.epoch(d.server) == d.epoch {
                    // One fragment share of a coded stream ends; killed
                    // streams released their shares at kill time.
                    self.links.release(d.server, d.kbps);
                }
                // Freed streaming bandwidth may unblock a stalled copy
                // first (repair priority), then waiting clients.
                if let Some(c) = self.controller.as_mut() {
                    c.pump(min_at, &mut self.links, &mut self.dispatcher);
                }
                self.drain_queue(min_at, ct);
            } else if rep_at == Some(min_at) {
                let c = self.controller.as_mut().ok_or(ModelError::Internal {
                    context: "repair completion due without a controller",
                })?;
                let (video, dst) = c.complete_next(&mut self.links, &mut self.dispatcher)?;
                if let Some(plan) = self.window_plan.as_ref() {
                    if plan.video_shard.get(video.index()).copied()
                        != plan.server_shard.get(dst.index()).copied()
                    {
                        self.window_poisoned = true;
                    }
                }
                self.drain_queue(min_at, ct);
            } else if tr_at == Some(min_at) {
                let tr = self.transitions[self.next_transition];
                self.next_transition += 1;
                ct.transitions.inc();
                match tr.kind {
                    TransitionKind::Down => self.on_down(tr.at, tr.server, ct),
                    TransitionKind::Up => self.on_up(tr.at, tr.server),
                    TransitionKind::BrownoutStart(frac) => {
                        self.on_brownout_start(tr.at, tr.server, frac, ct)
                    }
                    TransitionKind::BrownoutEnd => self.on_brownout_end(tr.at, tr.server),
                }
                self.drain_queue(min_at, ct);
            } else if aband_at == Some(min_at) {
                let req = self
                    .admission
                    .pop_expired(min_at)
                    .ok_or(ModelError::Internal {
                        context: "admission deadline due with no expirable request",
                    })?;
                if req.retries_left > 0 {
                    // Patience ran out, but the client retries later.
                    self.admission.schedule_retry(
                        min_at,
                        PendingRequest {
                            retries_left: req.retries_left - 1,
                            attempt: req.attempt + 1,
                            ..req
                        },
                    );
                    ct.retried.inc();
                    self.metrics.on_retried();
                } else {
                    ct.abandoned.inc();
                    self.metrics.on_abandoned();
                }
            } else if retry_at == Some(min_at) {
                let req = self
                    .admission
                    .pop_due_retry(min_at)
                    .ok_or(ModelError::Internal {
                        context: "retry timer due with no pending retry",
                    })?;
                self.handle_request(min_at, req, ct);
            } else if sample_at == Some(min_at) {
                self.links.stream_loads_into(&mut self.load_scratch);
                if let Some(log) = self.sample_log.as_mut() {
                    // Decoupled shard worker: defer the statistics to
                    // the coordinator's merged replay so the float
                    // accumulation order matches the serial engine.
                    log.push(self.load_scratch.clone());
                } else {
                    ct.samples.inc();
                    self.metrics
                        .sample_loads(&self.load_scratch, self.next_sample_min);
                }
                self.next_sample_min += self.sample_step;
                self.next_sample_at = (self.next_sample_min <= self.horizon)
                    .then(|| SimTime::from_min(self.next_sample_min));
            } else {
                let c = self.controller.as_mut().ok_or(ModelError::Internal {
                    context: "control tick due without an actuation layer",
                })?;
                let d = self.drift.as_mut().ok_or(ModelError::Internal {
                    context: "control tick due without a drift controller",
                })?;
                d.tick(min_at, c, &mut self.links, &mut self.dispatcher);
                self.next_ctrl_min += self.ctrl_step;
                self.next_ctrl_at = (self.next_ctrl_min <= self.horizon)
                    .then(|| SimTime::from_min(self.next_ctrl_min));
            }
            self.audit_check(min_at)?;
        }
        Ok(())
    }

    /// Runs the invariant auditor (when active) after an event at `at`.
    fn audit_check(&mut self, at: SimTime) -> Result<(), ModelError> {
        let Some(aud) = self.auditor.as_mut() else {
            return Ok(());
        };
        let (arrivals, admitted, rejected, abandoned) = self.metrics.outcome_totals();
        let backbone_ok = match self.dispatcher.policy() {
            AdmissionPolicy::BackboneRedirect {
                backbone_capacity_kbps,
            } => self.dispatcher.backbone_used_kbps() <= backbone_capacity_kbps,
            _ => true,
        };
        aud.check(
            at,
            &self.links,
            backbone_ok,
            &mut self.admission,
            Ledger {
                arrivals,
                admitted,
                rejected,
                abandoned,
            },
        )?;
        if let Some(cs) = &self.coded {
            // Anti-affinity holds for the bound layout by construction;
            // what needs auditing is the actuator's evolving holder map
            // (repair destinations). Static coded runs audit the layout
            // itself once per event — cheap at audit-only cadence.
            let holders = match &self.controller {
                Some(c) => c.holders_all(),
                None => self.layout.assignments(),
            };
            self.auditor
                .as_ref()
                .expect("auditor vanished")
                .check_placement(at, holders, &cs.schemes, &self.rack_of)?;
        }
        Ok(())
    }

    /// Routes one request now owed an outcome: admit (possibly degraded),
    /// queue, schedule a retry, or finally reject.
    fn handle_request(&mut self, now: SimTime, req: PendingRequest, ct: &EngineCounters) {
        if self.try_admit(now, &req, ct) {
            return;
        }
        if self.admission.queueing() {
            self.admission.enqueue(now, req);
            ct.queued.inc();
            self.metrics.on_queued();
        } else if req.retries_left > 0 {
            self.admission.schedule_retry(
                now,
                PendingRequest {
                    retries_left: req.retries_left - 1,
                    attempt: req.attempt + 1,
                    ..req
                },
            );
            ct.retried.inc();
            self.metrics.on_retried();
        } else {
            ct.rejected.inc();
            self.metrics.on_reject(req.video.index());
        }
    }

    /// One admission attempt: full rate first, then (under a degrading
    /// policy) down the bit-rate ladder. Returns whether a slot was taken.
    fn try_admit(&mut self, now: SimTime, req: &PendingRequest, ct: &EngineCounters) -> bool {
        if self.try_admit_at(now, req, req.kbps, ct) {
            return true;
        }
        if !self.admission.degrades() {
            return false;
        }
        let mut rate = BitRate::from_kbps(req.kbps as u32).step_down(&BitRate::LADDER);
        while let Some(r) = rate {
            if self.try_admit_at(now, req, r.kbps() as u64, ct) {
                return true;
            }
            rate = r.step_down(&BitRate::LADDER);
        }
        false
    }

    /// Dispatches `req` at `rate` kbps; on admit, charges the link, books
    /// the wait/goodput metrics and schedules the departure.
    fn try_admit_at(
        &mut self,
        now: SimTime,
        req: &PendingRequest,
        rate: u64,
        ct: &EngineCounters,
    ) -> bool {
        if let Some(cs) = &self.coded {
            if cs.schemes.get(req.video).is_coded() {
                return self.try_admit_coded(now, req, rate, ct);
            }
        }
        let replicas = match &self.controller {
            Some(c) => c.holders(req.video),
            None => self.layout.replicas_of(req.video),
        };
        match self
            .dispatcher
            .dispatch(req.video, rate, replicas, &self.links)
        {
            Decision::Admit {
                server,
                backbone_kbps,
            } => {
                self.links.admit(server, rate);
                ct.admitted.inc();
                if backbone_kbps > 0 {
                    ct.redirected.inc();
                }
                self.metrics.on_admit(backbone_kbps > 0);
                let wait = (now - req.arrived).as_min();
                self.metrics.on_wait(wait);
                ct.wait_min.observe(wait);
                self.metrics.on_delivered(rate, req.duration_s);
                if rate < req.kbps {
                    ct.adm_degraded.inc();
                    self.metrics.on_degraded_served();
                }
                self.departures.push(Departure {
                    at: now + SimTime::from_secs(req.duration_s),
                    server,
                    video: req.video,
                    kbps: rate,
                    backbone_kbps,
                    epoch: self.links.epoch(server),
                    stream: NO_STREAM,
                });
                true
            }
            Decision::Reject => false,
        }
    }

    /// Whether coded stream `stream` is still live (not killed by
    /// failover). False without coded state — replicated runs carry no
    /// stream-tagged departures, so the question never arises there.
    fn stream_live(&self, stream: u32) -> bool {
        self.coded
            .as_ref()
            .is_some_and(|cs| !cs.streams[stream as usize].killed)
    }

    /// Coded admission: serve `req` from `k` live fragment holders, each
    /// charged a `⌈rate / k⌉` share. Holders are tried in fragment order
    /// (positions `0..k` are the data fragments); having to reach past
    /// position `k - 1` means reading parity — a *degraded read*.
    /// Fails (false) when fewer than `k` holders can admit the share,
    /// falling through to the caller's degrade/queue/retry/reject path.
    fn try_admit_coded(
        &mut self,
        now: SimTime,
        req: &PendingRequest,
        rate: u64,
        ct: &EngineCounters,
    ) -> bool {
        let cs = self.coded.as_ref().expect("coded admission without state");
        let scheme = cs.schemes.get(req.video);
        let k = scheme.min_live() as usize;
        let share = scheme.share_kbps(rate);
        let holders = match &self.controller {
            Some(c) => c.holders(req.video),
            None => self.layout.replicas_of(req.video),
        };
        let mut chosen: Vec<ServerId> = Vec::with_capacity(k);
        let mut degraded_read = false;
        for (pos, &h) in holders.iter().enumerate() {
            if chosen.len() == k {
                break;
            }
            if self.links.can_admit(h, share) {
                if pos >= k {
                    degraded_read = true;
                }
                chosen.push(h);
            }
        }
        if chosen.len() < k {
            return false;
        }

        let stream = {
            let cs = self.coded.as_mut().expect("coded admission without state");
            cs.streams.push(CodedStream {
                servers: chosen.clone(),
                share_kbps: share,
                full_kbps: rate,
                killed: false,
            });
            if degraded_read {
                cs.degraded_reads += 1;
            }
            (cs.streams.len() - 1) as u32
        };
        let at = now + SimTime::from_secs(req.duration_s);
        for &h in &chosen {
            self.links.admit(h, share);
            self.departures.push(Departure {
                at,
                server: h,
                video: req.video,
                kbps: share,
                backbone_kbps: 0,
                epoch: self.links.epoch(h),
                stream,
            });
        }
        ct.admitted.inc();
        self.metrics.on_admit(false);
        let wait = (now - req.arrived).as_min();
        self.metrics.on_wait(wait);
        ct.wait_min.observe(wait);
        self.metrics.on_delivered(rate, req.duration_s);
        if rate < req.kbps {
            ct.adm_degraded.inc();
            self.metrics.on_degraded_served();
        }
        true
    }

    /// Tries to move one lost fragment share of a live coded stream to
    /// another holder of the video (a fragment not already serving this
    /// stream). On success the sibling shares are untouched and the
    /// stream merely reads a different fragment set.
    fn reattach_share(&mut self, d: &Departure, from: ServerId) -> bool {
        let pick = {
            let cs = self.coded.as_ref().expect("coded share without state");
            let serving = &cs.streams[d.stream as usize].servers;
            let holders = match &self.controller {
                Some(c) => c.holders(d.video),
                None => self.layout.replicas_of(d.video),
            };
            holders
                .iter()
                .copied()
                .filter(|&h| h != from && !serving.contains(&h) && self.links.can_admit(h, d.kbps))
                .max_by_key(|&h| (self.links.free_kbps(h), std::cmp::Reverse(h)))
        };
        let Some(h) = pick else {
            return false;
        };
        self.links.admit(h, d.kbps);
        self.departures.push(Departure {
            at: d.at,
            server: h,
            video: d.video,
            kbps: d.kbps,
            backbone_kbps: 0,
            epoch: self.links.epoch(h),
            stream: d.stream,
        });
        let cs = self.coded.as_mut().expect("coded share without state");
        let s = &mut cs.streams[d.stream as usize];
        if let Some(slot) = s.servers.iter_mut().find(|x| **x == from) {
            *slot = h;
        }
        cs.degraded_reads += 1;
        cs.shares_reattached += 1;
        true
    }

    /// Kills a live coded stream whose share on `gone` was lost and
    /// could not be re-attached: releases the sibling shares (the share
    /// on `gone` itself is already gone — dropped by the failure or
    /// released by the brownout shed) and charges the undelivered
    /// remainder at the viewer-facing rate.
    fn kill_coded_stream(&mut self, at: SimTime, d: &Departure, gone: ServerId) {
        let (servers, share, full) = {
            let cs = self.coded.as_mut().expect("coded share without state");
            let s = &mut cs.streams[d.stream as usize];
            s.killed = true;
            (std::mem::take(&mut s.servers), s.share_kbps, s.full_kbps)
        };
        for &h in &servers {
            if h != gone {
                self.links.release(h, share);
            }
        }
        self.metrics.on_undelivered(full, (d.at - at).ticks());
    }

    /// After capacity frees up, offers every waiting request a slot in
    /// FIFO order. Requests that still do not fit stay queued (later
    /// arrivals that *do* fit may overtake them — capacity-aware
    /// skipping, not head-of-line blocking).
    fn drain_queue(&mut self, now: SimTime, ct: &EngineCounters) {
        if self.admission.queue_len() == 0 {
            return;
        }
        let mut seqs = std::mem::take(&mut self.fifo_scratch);
        self.admission.fifo_seqs_into(&mut seqs);
        for &seq in &seqs {
            let Some(req) = self.admission.get(seq) else {
                continue;
            };
            if self.try_admit(now, &req, ct) {
                self.admission.remove(seq);
            }
        }
        self.fifo_scratch = seqs;
    }

    /// Brownout onset: shrink the link's effective capacity; when the
    /// server is overcommitted, shed repair copies first, then active
    /// streams (latest-ending first), failing each shed stream over per
    /// the failover policy exactly like a crash would.
    fn on_brownout_start(&mut self, at: SimTime, server: ServerId, frac: f64, ct: &EngineCounters) {
        self.brownout_started[server.index()] = Some(at);
        let excess = self.links.set_brownout(server, frac);
        if excess == 0 || !self.links.is_up(server) {
            return;
        }
        if let Some(c) = self.controller.as_mut() {
            c.on_brownout(at, server, &mut self.links, &mut self.dispatcher);
        }
        let j = server.index();
        let over = |links: &LinkState| {
            (links.used_kbps()[j] + links.repair_kbps()[j])
                .saturating_sub(links.effective_capacity_kbps(server))
        };
        if over(&self.links) == 0 {
            return;
        }
        let mut active = std::mem::take(&mut self.extract_scratch);
        self.departures
            .extract_active_into(server, self.links.epoch(server), &mut active);
        let (mut disrupted, mut resumed, mut degraded) = (0u64, 0u64, 0u64);
        while over(&self.links) > 0 {
            // Ascending (time, seq): pop sheds the latest-ending stream.
            let Some(d) = active.pop() else {
                break;
            };
            if d.stream != NO_STREAM {
                if !self.stream_live(d.stream) {
                    // A sibling kill already released this share; the
                    // departure just waits to pop as a no-op.
                    self.departures.push(d);
                    continue;
                }
                self.links.release(server, d.kbps);
                if self.failover != FailoverPolicy::Kill && self.reattach_share(&d, server) {
                    resumed += 1;
                } else {
                    self.kill_coded_stream(at, &d, server);
                    disrupted += 1;
                }
                continue;
            }
            self.links.release(server, d.kbps);
            let rescued = if self.failover == FailoverPolicy::Kill {
                Rescued::No
            } else {
                self.rescue_stream(at, &d, server)
            };
            match rescued {
                Rescued::Full => resumed += 1,
                Rescued::Degraded => degraded += 1,
                Rescued::No => {
                    disrupted += 1;
                    self.metrics.on_undelivered(d.kbps, (d.at - at).ticks());
                    // Keep the departure so the backbone reservation is
                    // reclaimed at the scheduled end; the sentinel epoch
                    // guarantees no link release.
                    self.departures.push(Departure {
                        epoch: SHED_EPOCH,
                        ..d
                    });
                }
            }
        }
        for d in active.drain(..) {
            self.departures.push(d);
        }
        self.extract_scratch = active;
        if disrupted > 0 {
            ct.disrupted.add(disrupted);
            self.metrics.on_disrupted(disrupted);
        }
        if resumed > 0 {
            ct.resumed.add(resumed);
            self.metrics.on_resumed(resumed);
        }
        if degraded > 0 {
            ct.degraded.add(degraded);
            self.metrics.on_degraded(degraded);
        }
    }

    /// Brownout over: restore full capacity and let stalled repairs pump.
    fn on_brownout_end(&mut self, at: SimTime, server: ServerId) {
        if let Some(start) = self.brownout_started[server.index()].take() {
            self.brownout_min += (at - start).as_min();
        }
        self.links.clear_brownout(server);
        if let Some(c) = self.controller.as_mut() {
            c.pump(at, &mut self.links, &mut self.dispatcher);
        }
    }

    /// Server failure: rescue its active streams if the failover policy
    /// allows, then hand the topology change to the repair controller.
    fn on_down(&mut self, at: SimTime, server: ServerId, ct: &EngineCounters) {
        if self.coded.is_some() {
            // Coded shares must be found even under `Kill` (their
            // sibling shares live on other servers); the dedicated path
            // keeps this one byte-identical for all-replicated runs.
            return self.on_down_coded(at, server, ct);
        }
        let mut rescued = std::mem::take(&mut self.extract_scratch);
        if self.failover == FailoverPolicy::Kill {
            rescued.clear();
        } else {
            self.departures
                .extract_active_into(server, self.links.epoch(server), &mut rescued);
        }
        let dropped = self.links.fail(server) as u64;
        // Repair claims its copy bandwidth on the survivors *first*:
        // without this priority, failed-over streams (plus fresh arrivals)
        // pack a popular video's sole surviving holder to the brim and its
        // re-replication starves for the whole outage.
        if let Some(c) = self.controller.as_mut() {
            c.on_failure(
                at,
                server,
                self.metrics.per_video_arrivals(),
                &mut self.links,
                &mut self.dispatcher,
            );
        }
        let mut disrupted = dropped - rescued.len() as u64;
        let (mut resumed, mut degraded) = (0u64, 0u64);
        for d in rescued.drain(..) {
            match self.rescue_stream(at, &d, server) {
                Rescued::Full => resumed += 1,
                Rescued::Degraded => degraded += 1,
                Rescued::No => {
                    disrupted += 1;
                    self.metrics.on_undelivered(d.kbps, (d.at - at).ticks());
                    // Re-queue unchanged: the stale epoch means no link
                    // release at pop time, but the backbone reservation is
                    // still reclaimed at the scheduled end — exactly the
                    // unconditional-kill semantics.
                    self.departures.push(d);
                }
            }
        }
        self.extract_scratch = rescued;
        if disrupted > 0 {
            ct.disrupted.add(disrupted);
            self.metrics.on_disrupted(disrupted);
        }
        if resumed > 0 {
            ct.resumed.add(resumed);
            self.metrics.on_resumed(resumed);
        }
        if degraded > 0 {
            ct.degraded.add(degraded);
            self.metrics.on_degraded(degraded);
        }
    }

    /// [`RunState::on_down`] for runs with coded videos: every active
    /// departure on the failed server is extracted (even under `Kill`),
    /// coded shares re-attach to surviving fragment holders or kill
    /// their whole stream, and replicated streams keep the exact
    /// per-policy semantics of the plain path.
    fn on_down_coded(&mut self, at: SimTime, server: ServerId, ct: &EngineCounters) {
        let mut extracted = std::mem::take(&mut self.extract_scratch);
        self.departures
            .extract_active_into(server, self.links.epoch(server), &mut extracted);
        let dropped = self.links.fail(server) as u64;
        if let Some(c) = self.controller.as_mut() {
            c.on_failure(
                at,
                server,
                self.metrics.per_video_arrivals(),
                &mut self.links,
                &mut self.dispatcher,
            );
        }
        let (mut disrupted, mut resumed, mut degraded, mut live) = (0u64, 0u64, 0u64, 0u64);
        for d in extracted.drain(..) {
            if d.stream != NO_STREAM {
                if !self.stream_live(d.stream) {
                    // Share of an already-killed stream: its bandwidth
                    // was released at kill time (it is not in `dropped`).
                    continue;
                }
                live += 1;
                if self.failover != FailoverPolicy::Kill && self.reattach_share(&d, server) {
                    resumed += 1;
                } else {
                    self.kill_coded_stream(at, &d, server);
                    disrupted += 1;
                }
                continue;
            }
            live += 1;
            if self.failover == FailoverPolicy::Kill {
                // Unconditional kill, goodput-uncharged — the documented
                // kill-path simplification; re-queue so any backbone
                // reservation is reclaimed at the scheduled end.
                disrupted += 1;
                self.departures.push(d);
                continue;
            }
            match self.rescue_stream(at, &d, server) {
                Rescued::Full => resumed += 1,
                Rescued::Degraded => degraded += 1,
                Rescued::No => {
                    disrupted += 1;
                    self.metrics.on_undelivered(d.kbps, (d.at - at).ticks());
                    self.departures.push(d);
                }
            }
        }
        debug_assert_eq!(dropped, live);
        self.extract_scratch = extracted;
        if disrupted > 0 {
            ct.disrupted.add(disrupted);
            self.metrics.on_disrupted(disrupted);
        }
        if resumed > 0 {
            ct.resumed.add(resumed);
            self.metrics.on_resumed(resumed);
        }
        if degraded > 0 {
            ct.degraded.add(degraded);
            self.metrics.on_degraded(degraded);
        }
    }

    /// Server recovery: restore the link, then let the repair controller
    /// mark its stored replicas servable again.
    fn on_up(&mut self, at: SimTime, server: ServerId) {
        self.links.recover(server);
        if let Some(c) = self.controller.as_mut() {
            c.on_recovery(at, server, &mut self.links, &mut self.dispatcher);
        }
    }

    /// The surviving replica holder of `video` with the most free link
    /// bandwidth able to admit `kbps` (ties to the lowest id), if any.
    fn best_holder(&self, video: VideoId, exclude: ServerId, kbps: u64) -> Option<ServerId> {
        let holders = match &self.controller {
            Some(c) => c.holders(video),
            None => self.layout.replicas_of(video),
        };
        holders
            .iter()
            .copied()
            .filter(|&h| h != exclude && self.links.can_admit(h, kbps))
            .max_by_key(|&h| (self.links.free_kbps(h), std::cmp::Reverse(h)))
    }

    /// Tries to continue one of a failed server's streams elsewhere: at
    /// full rate on the best surviving holder, or — under
    /// [`FailoverPolicy::ResumeOrDegrade`] — stepping down
    /// [`BitRate::LADDER`] until some rate fits somewhere. The rescued
    /// stream keeps its original departure instant (remaining-duration
    /// bandwidth is charged to the new server) and carries any backbone
    /// reservation along.
    fn rescue_stream(&mut self, at: SimTime, d: &Departure, failed: ServerId) -> Rescued {
        if let Some(h) = self.best_holder(d.video, failed, d.kbps) {
            self.links.admit(h, d.kbps);
            self.departures.push(Departure {
                at: d.at,
                server: h,
                video: d.video,
                kbps: d.kbps,
                backbone_kbps: d.backbone_kbps,
                epoch: self.links.epoch(h),
                stream: d.stream,
            });
            return Rescued::Full;
        }
        if self.failover == FailoverPolicy::ResumeOrDegrade {
            let mut rate = BitRate::from_kbps(d.kbps as u32).step_down(&BitRate::LADDER);
            while let Some(r) = rate {
                let kbps = r.kbps() as u64;
                if let Some(h) = self.best_holder(d.video, failed, kbps) {
                    self.links.admit(h, kbps);
                    // The remaining minutes stream at the thinner rate.
                    self.metrics
                        .on_undelivered(d.kbps - kbps, (d.at - at).ticks());
                    self.departures.push(Departure {
                        at: d.at,
                        server: h,
                        video: d.video,
                        kbps,
                        backbone_kbps: d.backbone_kbps,
                        epoch: self.links.epoch(h),
                        stream: d.stream,
                    });
                    return Rescued::Degraded;
                }
                rate = r.step_down(&BitRate::LADDER);
            }
        }
        Rescued::No
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::Outage;
    use vod_model::{BitRate, ServerId, ServerSpec, VideoId};
    use vod_workload::{Request, Trace};

    /// One video on one server; the server carries exactly one stream.
    fn tiny_world() -> (Catalog, ClusterSpec, Layout) {
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap(); // 10-minute video
        let cluster = ClusterSpec::homogeneous(
            1,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 4_000,
            },
        )
        .unwrap();
        let layout = Layout::new(1, vec![vec![ServerId(0)]]).unwrap();
        (catalog, cluster, layout)
    }

    fn req(min: f64, v: u32) -> Request {
        Request {
            arrival_min: min,
            video: VideoId(v),
        }
    }

    fn run_tiny(requests: Vec<Request>) -> SimReport {
        let (catalog, cluster, layout) = tiny_world();
        let sim = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()).unwrap();
        sim.run(&Trace::new(requests).unwrap()).unwrap()
    }

    #[test]
    fn overlapping_requests_reject_second() {
        let r = run_tiny(vec![req(0.0, 0), req(5.0, 0)]);
        assert_eq!(r.arrivals, 2);
        assert_eq!(r.admitted, 1);
        assert_eq!(r.rejected, 1);
        assert!(r.is_conservative());
    }

    #[test]
    fn sequential_requests_both_admitted() {
        // Video is 10 minutes; second arrives at t=10 exactly as the first
        // ends — the departure is processed first, so it's admitted.
        let r = run_tiny(vec![req(0.0, 0), req(10.0, 0)]);
        assert_eq!(r.admitted, 2);
        assert_eq!(r.rejected, 0);
    }

    #[test]
    fn arrival_just_before_departure_rejected() {
        let r = run_tiny(vec![req(0.0, 0), req(9.99, 0)]);
        assert_eq!(r.admitted, 1);
        assert_eq!(r.rejected, 1);
    }

    #[test]
    fn three_way_contention() {
        let r = run_tiny(vec![req(0.0, 0), req(1.0, 0), req(11.0, 0)]);
        assert_eq!(r.admitted, 2);
        assert_eq!(r.rejected, 1);
    }

    #[test]
    fn empty_trace_is_clean() {
        let r = run_tiny(vec![]);
        assert_eq!(r.arrivals, 0);
        assert_eq!(r.rejection_rate, 0.0);
        assert!(r.is_conservative());
    }

    #[test]
    fn replicated_video_spreads_over_servers() {
        // 1 video, 2 replicas, 1 stream per server: two simultaneous
        // requests both admitted under static RR (one per replica).
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 4_000,
            },
        )
        .unwrap();
        let layout = Layout::new(2, vec![vec![ServerId(0), ServerId(1)]]).unwrap();
        let sim = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()).unwrap();
        let r = sim
            .run(&Trace::new(vec![req(0.0, 0), req(0.5, 0), req(1.0, 0)]).unwrap())
            .unwrap();
        assert_eq!(r.admitted, 2);
        assert_eq!(r.rejected, 1);
    }

    #[test]
    fn backbone_redirect_saves_requests() {
        // v0 only on s0 (capacity 1 stream); s1 idle. Second concurrent
        // request is saved by redirection through s1.
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 4_000,
            },
        )
        .unwrap();
        let layout = Layout::new(2, vec![vec![ServerId(0)]]).unwrap();
        let trace = Trace::new(vec![req(0.0, 0), req(1.0, 0)]).unwrap();
        let cfg = SimConfig {
            policy: AdmissionPolicy::BackboneRedirect {
                backbone_capacity_kbps: 1_000_000,
            },
            ..SimConfig::paper_default()
        };
        let r = Simulation::new(&catalog, &cluster, &layout, cfg)
            .unwrap()
            .run(&trace)
            .unwrap();
        assert_eq!(r.admitted, 2);
        assert_eq!(r.redirected, 1);
        assert_eq!(r.rejected, 0);
    }

    #[test]
    fn unknown_video_is_an_error() {
        let (catalog, cluster, layout) = tiny_world();
        let sim = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()).unwrap();
        let trace = Trace::new(vec![req(0.0, 5)]).unwrap();
        assert!(matches!(
            sim.run(&trace),
            Err(ModelError::UnknownVideo(VideoId(5)))
        ));
    }

    #[test]
    fn dimension_mismatches_rejected() {
        let (catalog, cluster, _) = tiny_world();
        let layout2 = Layout::new(2, vec![vec![ServerId(0)]]).unwrap();
        assert!(Simulation::new(&catalog, &cluster, &layout2, SimConfig::paper_default()).is_err());
        let cfg = SimConfig {
            horizon_min: 0.0,
            ..SimConfig::paper_default()
        };
        let layout = Layout::new(1, vec![vec![ServerId(0)]]).unwrap();
        assert!(Simulation::new(&catalog, &cluster, &layout, cfg).is_err());
    }

    #[test]
    fn storage_constraint_checked_at_bind_time() {
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            1,
            ServerSpec {
                storage_bytes: 1, // cannot hold the replica
                bandwidth_kbps: 4_000,
            },
        )
        .unwrap();
        let layout = Layout::new(1, vec![vec![ServerId(0)]]).unwrap();
        assert!(matches!(
            Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()),
            Err(ModelError::StorageExceeded { .. })
        ));
    }

    #[test]
    fn imbalance_sampled_nonzero_under_skewed_layout() {
        // Two servers; all load lands on s0.
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 3_000).unwrap();
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 400_000,
            },
        )
        .unwrap();
        let layout = Layout::new(2, vec![vec![ServerId(0)]]).unwrap();
        let trace = Trace::new(vec![req(0.0, 0), req(1.0, 0), req(2.0, 0)]).unwrap();
        let r = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default())
            .unwrap()
            .run(&trace)
            .unwrap();
        assert!(r.mean_imbalance_cv > 0.5);
        assert_eq!(r.peak_concurrent_streams, 3);
    }

    // ---- failure injection ----

    fn failing_cfg(outages: Vec<Outage>) -> SimConfig {
        SimConfig {
            failures: FailurePlan::new(outages).unwrap(),
            ..SimConfig::paper_default()
        }
    }

    #[test]
    fn failure_disrupts_active_streams() {
        let (catalog, cluster, layout) = tiny_world();
        let cfg = failing_cfg(vec![Outage {
            server: ServerId(0),
            down_at_min: 5.0,
            up_at_min: None,
        }]);
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        // Stream admitted at t=0 (runs to t=10) is killed at t=5; a later
        // request hits a dead server and is rejected.
        let r = sim
            .run(&Trace::new(vec![req(0.0, 0), req(6.0, 0)]).unwrap())
            .unwrap();
        assert_eq!(r.admitted, 1);
        assert_eq!(r.disrupted, 1);
        assert_eq!(r.rejected, 1);
        assert!(r.is_conservative());
    }

    #[test]
    fn recovery_restores_service() {
        let (catalog, cluster, layout) = tiny_world();
        let cfg = failing_cfg(vec![Outage {
            server: ServerId(0),
            down_at_min: 5.0,
            up_at_min: Some(8.0),
        }]);
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        let r = sim
            .run(&Trace::new(vec![req(0.0, 0), req(6.0, 0), req(9.0, 0)]).unwrap())
            .unwrap();
        // t=0 admitted then disrupted at 5; t=6 rejected (down); t=9
        // admitted (recovered, and the old stream's bandwidth was cleared
        // by the failure — its stale departure at t=10 must not
        // double-release).
        assert_eq!(r.admitted, 2);
        assert_eq!(r.disrupted, 1);
        assert_eq!(r.rejected, 1);
    }

    #[test]
    fn stale_departure_does_not_underflow() {
        // The killed stream's departure (t=10) pops after recovery and a
        // new admission; with epoch tracking it must not release the new
        // stream's bandwidth. If it did, the second release (from the new
        // stream's real departure) would underflow and panic in debug.
        let (catalog, cluster, layout) = tiny_world();
        let cfg = failing_cfg(vec![Outage {
            server: ServerId(0),
            down_at_min: 1.0,
            up_at_min: Some(2.0),
        }]);
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        let r = sim
            .run(&Trace::new(vec![req(0.0, 0), req(3.0, 0), req(20.0, 0)]).unwrap())
            .unwrap();
        assert_eq!(r.admitted, 3);
        assert_eq!(r.disrupted, 1);
    }

    #[test]
    fn replicas_survive_single_failure_with_failover() {
        // v0 on two servers; s0 dies mid-run. Failover keeps serving from
        // s1 while strict static RR loses every other request.
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 60).unwrap(); // 1-min video
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 400_000,
            },
        )
        .unwrap();
        let layout = Layout::new(2, vec![vec![ServerId(0), ServerId(1)]]).unwrap();
        let reqs: Vec<Request> = (0..20).map(|k| req(10.0 + k as f64 * 2.0, 0)).collect();
        let outage = vec![Outage {
            server: ServerId(0),
            down_at_min: 5.0,
            up_at_min: None,
        }];

        let strict = Simulation::new(&catalog, &cluster, &layout, failing_cfg(outage.clone()))
            .unwrap()
            .run(&Trace::new(reqs.clone()).unwrap())
            .unwrap();
        // Static RR alternates; every dispatch to s0 dies.
        assert_eq!(strict.rejected, 10);

        let failover_cfg = SimConfig {
            policy: AdmissionPolicy::RoundRobinFailover,
            failures: FailurePlan::new(outage).unwrap(),
            ..SimConfig::paper_default()
        };
        let failover = Simulation::new(&catalog, &cluster, &layout, failover_cfg)
            .unwrap()
            .run(&Trace::new(reqs).unwrap())
            .unwrap();
        assert_eq!(failover.rejected, 0);
    }

    // ---- stream failover and mid-run repair ----

    #[test]
    fn failover_resumes_streams_on_surviving_replica() {
        // v0 on {s0, s1}, one stream per server. The stream admitted on s0
        // migrates to idle s1 when s0 dies.
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 4_000,
            },
        )
        .unwrap();
        let layout = Layout::new(2, vec![vec![ServerId(0), ServerId(1)]]).unwrap();
        let cfg = SimConfig {
            failures: FailurePlan::new(vec![Outage {
                server: ServerId(0),
                down_at_min: 5.0,
                up_at_min: None,
            }])
            .unwrap(),
            failover: crate::repair::FailoverPolicy::Resume,
            ..SimConfig::paper_default()
        };
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        let r = sim.run(&Trace::new(vec![req(0.0, 0)]).unwrap()).unwrap();
        assert_eq!(r.admitted, 1);
        assert_eq!(r.resumed, 1);
        assert_eq!(r.disrupted, 0);
        assert_eq!(r.degraded, 0);
    }

    #[test]
    fn failover_degrades_when_full_rate_does_not_fit() {
        // Both servers hold v0 and carry one 4 Mbps stream each on 7 Mbps
        // links. When s0 dies its stream cannot resume at 4 Mbps on s1
        // (3 Mbps free) but continues at the 3 Mbps ladder rung.
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 7_000,
            },
        )
        .unwrap();
        let layout = Layout::new(2, vec![vec![ServerId(0), ServerId(1)]]).unwrap();
        let outage = vec![Outage {
            server: ServerId(0),
            down_at_min: 5.0,
            up_at_min: None,
        }];
        let mk = |failover| SimConfig {
            failures: FailurePlan::new(outage.clone()).unwrap(),
            failover,
            ..SimConfig::paper_default()
        };
        let trace = Trace::new(vec![req(0.0, 0), req(0.5, 0)]).unwrap();

        let degrade = Simulation::new(
            &catalog,
            &cluster,
            &layout,
            mk(crate::repair::FailoverPolicy::ResumeOrDegrade),
        )
        .unwrap()
        .run(&trace)
        .unwrap();
        assert_eq!(degrade.degraded, 1);
        assert_eq!(degrade.resumed, 0);
        assert_eq!(degrade.disrupted, 0);

        // Resume-only cannot fit the stream anywhere: it is disrupted.
        let resume_only = Simulation::new(
            &catalog,
            &cluster,
            &layout,
            mk(crate::repair::FailoverPolicy::Resume),
        )
        .unwrap()
        .run(&trace)
        .unwrap();
        assert_eq!(resume_only.degraded, 0);
        assert_eq!(resume_only.disrupted, 1);
    }

    #[test]
    fn repair_rebuilds_lost_redundancy() {
        // v0 on {s0, s1} of 3 servers; s0 dies at t=1. With 4 Mbps repair
        // bandwidth the 30 MB replica rebuilds on s2 in exactly one
        // minute; without repair the deficit persists to the horizon.
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 60).unwrap();
        let bytes = catalog.videos()[0].storage_bytes();
        let cluster = ClusterSpec::homogeneous(
            3,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 8_000,
            },
        )
        .unwrap();
        let layout = Layout::new(3, vec![vec![ServerId(0), ServerId(1)]]).unwrap();
        let mk = |bandwidth_kbps| SimConfig {
            failures: FailurePlan::new(vec![Outage {
                server: ServerId(0),
                down_at_min: 1.0,
                up_at_min: None,
            }])
            .unwrap(),
            repair: RepairConfig {
                bandwidth_kbps,
                max_concurrent: 4,
            },
            ..SimConfig::paper_default()
        };
        let trace = Trace::new(vec![]).unwrap();

        let repaired = Simulation::new(&catalog, &cluster, &layout, mk(4_000))
            .unwrap()
            .run(&trace)
            .unwrap();
        assert_eq!(repaired.repair_copies, 1);
        assert_eq!(repaired.repair_bytes_copied, bytes);
        assert!((repaired.time_to_redundancy_min - 1.0).abs() < 1e-9);
        assert_eq!(repaired.unavailability_video_min, 0.0);

        let passive = Simulation::new(&catalog, &cluster, &layout, mk(0))
            .unwrap()
            .run(&trace)
            .unwrap();
        assert_eq!(passive.repair_copies, 0);
        assert_eq!(passive.repair_bytes_copied, 0);
        assert!((passive.time_to_redundancy_min - 89.0).abs() < 1e-9);
    }

    #[test]
    fn repaired_replica_serves_requests() {
        // After the rebuild on s2 completes, v0 has two servable replicas
        // again: two overlapping requests both fit where one server alone
        // could hold only one.
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            3,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 4_000,
            },
        )
        .unwrap();
        let layout = Layout::new(3, vec![vec![ServerId(0), ServerId(1)]]).unwrap();
        let mk = |bandwidth_kbps| SimConfig {
            policy: AdmissionPolicy::RoundRobinFailover,
            failures: FailurePlan::new(vec![Outage {
                server: ServerId(0),
                down_at_min: 1.0,
                up_at_min: None,
            }])
            .unwrap(),
            repair: RepairConfig {
                bandwidth_kbps,
                max_concurrent: 4,
            },
            ..SimConfig::paper_default()
        };
        // 300 Mbit replica at 4 Mbps repair bandwidth: 75 s rebuild, done
        // by t=2.25 min. Both t=30/t=31 requests overlap for 10 minutes.
        let trace = Trace::new(vec![req(30.0, 0), req(31.0, 0)]).unwrap();

        let repaired = Simulation::new(&catalog, &cluster, &layout, mk(4_000))
            .unwrap()
            .run(&trace)
            .unwrap();
        assert_eq!(repaired.admitted, 2);
        assert_eq!(repaired.rejected, 0);

        let passive = Simulation::new(&catalog, &cluster, &layout, mk(0))
            .unwrap()
            .run(&trace)
            .unwrap();
        assert_eq!(passive.admitted, 1);
        assert_eq!(passive.rejected, 1);
    }

    #[test]
    fn failure_model_runs_are_deterministic() {
        let catalog = Catalog::fixed_rate(4, BitRate::MPEG2, 300).unwrap();
        let cluster = ClusterSpec::homogeneous(
            4,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 40_000,
            },
        )
        .unwrap();
        let layout = Layout::new(
            4,
            (0..4u32)
                .map(|v| vec![ServerId(v % 4), ServerId((v + 1) % 4)])
                .collect(),
        )
        .unwrap();
        let cfg = SimConfig {
            failure_model: Some(crate::failure::FailureModel::exponential(30.0, 10.0, 7)),
            repair: RepairConfig {
                bandwidth_kbps: 4_000,
                max_concurrent: 2,
            },
            failover: crate::repair::FailoverPolicy::ResumeOrDegrade,
            ..SimConfig::paper_default()
        };
        let trace = Trace::new(
            (0..60)
                .map(|k| req(k as f64 * 1.5, k % 4))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        let a = sim.run(&trace).unwrap();
        let b = sim.run(&trace).unwrap();
        assert_eq!(a, b);
        // The model actually fired (MTBF 30 min over a 90-min horizon on
        // four servers makes failures overwhelmingly likely at this seed).
        assert!(a.disrupted + a.resumed + a.degraded > 0);
    }

    #[test]
    fn telemetry_counters_match_report() {
        let (catalog, cluster, layout) = tiny_world();
        let sim = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()).unwrap();
        let trace = Trace::new(vec![req(0.0, 0), req(5.0, 0), req(12.0, 0)]).unwrap();
        let telemetry = Telemetry::enabled();
        let r = sim.run_with_telemetry(&trace, &telemetry).unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("sim.arrivals"), r.arrivals);
        assert_eq!(snap.counter("sim.admitted"), r.admitted);
        assert_eq!(snap.counter("sim.rejected"), r.rejected);
        // Every admitted stream eventually departs (possibly in the
        // post-horizon drain).
        assert_eq!(snap.counter("sim.departures"), r.admitted);
        // Static RR probes exactly once per arrival.
        assert_eq!(snap.counter("sim.admission_probes"), r.arrivals);
        // 90-min horizon, 1-min cadence: samples at 0..=90.
        assert_eq!(snap.counter("sim.samples"), 91);
        assert_eq!(snap.histogram("sim.run").count, 1);
        assert_eq!(snap.histogram("sim.events_per_sec").count, 1);
        assert!(snap.histogram("sim.events_per_sec").min > 0.0);
        assert_eq!(
            snap.counter("sim.events"),
            r.arrivals + r.admitted + 91 // arrivals + departures + samples
        );
    }

    #[test]
    fn disabled_telemetry_is_equivalent() {
        let (catalog, cluster, layout) = tiny_world();
        let sim = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()).unwrap();
        let trace = Trace::new(vec![req(0.0, 0), req(5.0, 0)]).unwrap();
        let plain = sim.run(&trace).unwrap();
        let telemetry = Telemetry::enabled();
        let instrumented = sim.run_with_telemetry(&trace, &telemetry).unwrap();
        assert_eq!(plain.arrivals, instrumented.arrivals);
        assert_eq!(plain.admitted, instrumented.admitted);
        assert_eq!(plain.rejected, instrumented.rejected);
        assert_eq!(plain.rejection_rate, instrumented.rejection_rate);
    }

    #[test]
    fn failure_on_unknown_server_rejected_at_bind() {
        let (catalog, cluster, layout) = tiny_world();
        let cfg = failing_cfg(vec![Outage {
            server: ServerId(9),
            down_at_min: 5.0,
            up_at_min: None,
        }]);
        assert!(matches!(
            Simulation::new(&catalog, &cluster, &layout, cfg),
            Err(ModelError::UnknownServer(ServerId(9)))
        ));
    }

    /// Four independent pods of two servers each; every video's replica
    /// set stays inside one pod, so the decoupled plan splits 4 ways.
    fn pods_world() -> (Catalog, ClusterSpec, Layout) {
        let catalog = Catalog::fixed_rate(16, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            8,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 16_000,
            },
        )
        .unwrap();
        let layout = Layout::new(
            8,
            (0..16)
                .map(|v| {
                    let pod = (v % 4) as u32;
                    vec![ServerId(2 * pod), ServerId(2 * pod + 1)]
                })
                .collect(),
        )
        .unwrap();
        (catalog, cluster, layout)
    }

    fn pods_trace() -> Trace {
        Trace::new(
            (0..200)
                .map(|k| req(k as f64 * 0.4, k % 16))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn decoupled_sharded_run_is_byte_identical_to_serial() {
        let (catalog, cluster, layout) = pods_world();
        let trace = pods_trace();
        let serial =
            Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()).unwrap();
        let sharded = Simulation::new(
            &catalog,
            &cluster,
            &layout,
            SimConfig {
                shards: 4,
                ..SimConfig::paper_default()
            },
        )
        .unwrap();
        let a = serial.run(&trace).unwrap();
        let telemetry = Telemetry::enabled();
        let b = sharded.run_with_telemetry(&trace, &telemetry).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // The decoupled parallel path (not the serial fallback) ran:
        // per-shard event counters were published for all four pods.
        let snap = telemetry.snapshot();
        for k in 0..4 {
            assert!(snap.counter(&format!("sim.shard.events.{k:02}")) > 0);
        }
        assert_eq!(snap.counter("sim.arrivals"), a.arrivals);
        assert_eq!(snap.counter("sim.admitted"), a.admitted);
        assert_eq!(snap.counter("sim.samples"), 91);
    }

    #[test]
    fn coupled_sharded_run_is_byte_identical_to_serial() {
        // An injected outage forces the coupled fallback: the serial
        // loop runs over a sharded departure queue whose merge order
        // must replay the single-queue order exactly.
        let (catalog, cluster, layout) = pods_world();
        let trace = pods_trace();
        let outage = Outage {
            server: ServerId(2),
            down_at_min: 20.0,
            up_at_min: Some(55.0),
        };
        let serial =
            Simulation::new(&catalog, &cluster, &layout, failing_cfg(vec![outage])).unwrap();
        let sharded = Simulation::new(
            &catalog,
            &cluster,
            &layout,
            SimConfig {
                shards: 8,
                // Windowing off: this test pins the *serial* coupled
                // loop's split-queue merge order (and its per-server
                // sub-queue telemetry, which the window plan's
                // pod-grouped queues would reshape).
                window: WindowConfig {
                    enabled: false,
                    ..WindowConfig::default()
                },
                ..failing_cfg(vec![outage])
            },
        )
        .unwrap();
        let a = serial.run(&trace).unwrap();
        let telemetry = Telemetry::enabled();
        let b = sharded.run_with_telemetry(&trace, &telemetry).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // Per-shard departure-queue traffic was published: at least one
        // push per admitted stream (failover re-pushes add more), spread
        // over every server's sub-queue.
        let snap = telemetry.snapshot();
        let per_shard: Vec<u64> = (0..8)
            .map(|k| snap.counter(&format!("sim.shard.departures.{k:02}")))
            .collect();
        assert!(per_shard.iter().sum::<u64>() >= a.admitted);
        assert!(per_shard.iter().all(|&n| n > 0), "{per_shard:?}");
    }

    #[test]
    fn windowed_coupled_run_is_byte_identical_to_serial() {
        // Same outage-coupled world, but with windowing live: the
        // bounded-lookahead executor must open real windows (the trace
        // runs 2.5 arrivals/min against a 1-min sample cadence, so
        // `min_events: 2` lets ~2-3-arrival windows through) and still
        // reproduce the serial report byte for byte.
        let (catalog, cluster, layout) = pods_world();
        let trace = pods_trace();
        let outage = Outage {
            server: ServerId(2),
            down_at_min: 20.0,
            up_at_min: Some(55.0),
        };
        let serial =
            Simulation::new(&catalog, &cluster, &layout, failing_cfg(vec![outage])).unwrap();
        let windowed = Simulation::new(
            &catalog,
            &cluster,
            &layout,
            SimConfig {
                shards: 8,
                window: WindowConfig {
                    min_events: 2,
                    ..WindowConfig::default()
                },
                ..failing_cfg(vec![outage])
            },
        )
        .unwrap();
        let a = serial.run(&trace).unwrap();
        let telemetry = Telemetry::enabled();
        let b = windowed.run_with_telemetry(&trace, &telemetry).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // The windowed executor (not wall-to-wall serial fallback) ran.
        let snap = telemetry.snapshot();
        assert!(snap.counter("sim.window.windows") > 0);
        assert!(snap.counter("sim.window.events") > 0);
        assert_eq!(snap.counter("sim.arrivals"), a.arrivals);
        assert_eq!(snap.counter("sim.admitted"), a.admitted);
    }

    #[test]
    fn windowed_run_with_queueing_and_controller_stays_identical() {
        // The hardest eligible coupling mix: queue+retry admission and
        // the online controller both live. Windows only open when the
        // admission pipeline is provably inert and no copy is pending;
        // everything else steps serially — the report must not move.
        let (catalog, cluster, layout) = pods_world();
        let trace = pods_trace();
        let admission = crate::admission::AdmissionConfig {
            policy: crate::admission::QueuePolicy::Queue { patience_min: 2.0 },
            max_retries: 1,
            retry_backoff_min: 1.0,
            seed: 7,
        };
        let cfg = |shards, window| SimConfig {
            shards,
            window,
            admission: admission.clone(),
            repair: RepairConfig {
                bandwidth_kbps: 4_000,
                max_concurrent: 4,
            },
            controller: ControllerConfig {
                tick_min: 10.0,
                ..ControllerConfig::default()
            },
            ..SimConfig::paper_default()
        };
        let serial = cfg(
            1,
            WindowConfig {
                enabled: false,
                ..WindowConfig::default()
            },
        );
        let windowed = cfg(
            8,
            WindowConfig {
                min_events: 1,
                ..WindowConfig::default()
            },
        );
        let a = Simulation::new(&catalog, &cluster, &layout, serial)
            .unwrap()
            .run(&trace)
            .unwrap();
        let telemetry = Telemetry::enabled();
        let b = Simulation::new(&catalog, &cluster, &layout, windowed)
            .unwrap()
            .run_with_telemetry(&trace, &telemetry)
            .unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let snap = telemetry.snapshot();
        assert!(snap.counter("sim.window.windows") > 0);
    }

    #[test]
    fn bad_window_knobs_rejected_at_bind() {
        let (catalog, cluster, layout) = tiny_world();
        let cfg = SimConfig {
            window: WindowConfig {
                min_events: 0,
                ..WindowConfig::default()
            },
            ..SimConfig::paper_default()
        };
        assert!(matches!(
            Simulation::new(&catalog, &cluster, &layout, cfg),
            Err(ModelError::InvalidParameter {
                name: "window.min_events",
                ..
            })
        ));
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = SimConfig {
                window: WindowConfig {
                    max_span_min: bad,
                    ..WindowConfig::default()
                },
                ..SimConfig::paper_default()
            };
            assert!(
                matches!(
                    Simulation::new(&catalog, &cluster, &layout, cfg),
                    Err(ModelError::InvalidParameter {
                        name: "window.max_span_min",
                        ..
                    })
                ),
                "max_span_min {bad} accepted"
            );
        }
    }

    /// Twenty single-server pods — more than the 16 named
    /// `sim.shard.*` counter slots, so shards 15..19 must fold into the
    /// last named bucket without losing counts.
    fn wide_pods_world() -> (Catalog, ClusterSpec, Layout) {
        let catalog = Catalog::fixed_rate(20, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            20,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 16_000,
            },
        )
        .unwrap();
        let layout = Layout::new(20, (0..20).map(|v| vec![ServerId(v)]).collect()).unwrap();
        (catalog, cluster, layout)
    }

    fn wide_pods_trace() -> Trace {
        Trace::new((0..20).map(|k| req(k as f64 * 0.1, k)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn shard_event_counters_beyond_named_buckets_fold_into_last() {
        // Decoupled path: each pod publishes arrivals + departures as
        // its event count. Pods 0..14 land in their own buckets; pods
        // 15..19 share bucket 15. Nothing is dropped: the buckets sum
        // to the cluster-wide arrivals + admitted totals.
        let (catalog, cluster, layout) = wide_pods_world();
        let trace = wide_pods_trace();
        let sim = Simulation::new(
            &catalog,
            &cluster,
            &layout,
            SimConfig {
                shards: 20,
                ..SimConfig::paper_default()
            },
        )
        .unwrap();
        let telemetry = Telemetry::enabled();
        let report = sim.run_with_telemetry(&trace, &telemetry).unwrap();
        assert_eq!(report.arrivals, 20);
        assert_eq!(report.admitted, 20);
        let snap = telemetry.snapshot();
        let buckets: Vec<u64> = (0..16)
            .map(|k| snap.counter(&format!("sim.shard.events.{k:02}")))
            .collect();
        // One arrival + one departure per pod; the overflow bucket
        // carries its own pod plus the four folded ones.
        assert_eq!(&buckets[..15], &[2u64; 15][..], "{buckets:?}");
        assert_eq!(buckets[15], 5 * 2, "{buckets:?}");
        assert_eq!(
            buckets.iter().sum::<u64>(),
            snap.counter("sim.arrivals") + snap.counter("sim.admitted")
        );
        // No shard past the named table leaks a counter of its own.
        assert_eq!(snap.counter("sim.shard.events.16"), 0);
        assert_eq!(snap.counter("sim.shard.events.19"), 0);
    }

    #[test]
    fn shard_departure_counters_beyond_named_buckets_fold_into_last() {
        // Coupled fallback (the enabled controller forces it — its
        // first tick lies past the horizon, so behavior is untouched):
        // the split departure queue publishes per-sub-queue push
        // counts through the same fold.
        let (catalog, cluster, layout) = wide_pods_world();
        let trace = wide_pods_trace();
        let sim = Simulation::new(
            &catalog,
            &cluster,
            &layout,
            SimConfig {
                shards: 20,
                controller: ControllerConfig {
                    tick_min: 1_000.0,
                    ..ControllerConfig::default()
                },
                ..SimConfig::paper_default()
            },
        )
        .unwrap();
        let telemetry = Telemetry::enabled();
        let report = sim.run_with_telemetry(&trace, &telemetry).unwrap();
        assert_eq!(report.admitted, 20);
        assert_eq!(report.controller_ticks, 0);
        let snap = telemetry.snapshot();
        let buckets: Vec<u64> = (0..16)
            .map(|k| snap.counter(&format!("sim.shard.departures.{k:02}")))
            .collect();
        // One departure push per admitted stream, one stream per
        // sub-queue; the last bucket absorbs the four folded queues.
        assert_eq!(&buckets[..15], &[1u64; 15][..], "{buckets:?}");
        assert_eq!(buckets[15], 5, "{buckets:?}");
        assert_eq!(buckets.iter().sum::<u64>(), report.admitted);
        assert_eq!(snap.counter("sim.shard.departures.16"), 0);
    }

    #[test]
    fn sharded_run_with_queueing_admission_stays_identical() {
        // Queue+retry admission couples servers through the FIFO queue,
        // so shards>1 must take the coupled path and still agree.
        let (catalog, cluster, layout) = pods_world();
        let trace = pods_trace();
        let admission = crate::admission::AdmissionConfig {
            policy: crate::admission::QueuePolicy::Queue { patience_min: 2.0 },
            max_retries: 1,
            retry_backoff_min: 1.0,
            seed: 7,
        };
        let cfg = |shards| SimConfig {
            shards,
            admission: admission.clone(),
            ..SimConfig::paper_default()
        };
        let a = Simulation::new(&catalog, &cluster, &layout, cfg(1))
            .unwrap()
            .run(&trace)
            .unwrap();
        let b = Simulation::new(&catalog, &cluster, &layout, cfg(8))
            .unwrap()
            .run(&trace)
            .unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn zero_shards_rejected_at_bind() {
        let (catalog, cluster, layout) = tiny_world();
        let cfg = SimConfig {
            shards: 0,
            ..SimConfig::paper_default()
        };
        assert!(matches!(
            Simulation::new(&catalog, &cluster, &layout, cfg),
            Err(ModelError::InvalidParameter { name: "shards", .. })
        ));
    }

    /// Four videos on four servers (one replica each), ample storage,
    /// four concurrent streams per link: the drifting-demand testbed.
    fn controller_world() -> (Catalog, ClusterSpec, Layout) {
        let catalog = Catalog::fixed_rate(4, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            4,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 16_000,
            },
        )
        .unwrap();
        let layout = Layout::new(4, (0..4u32).map(|v| vec![ServerId(v)]).collect()).unwrap();
        (catalog, cluster, layout)
    }

    fn controller_cfg(tick_min: f64) -> SimConfig {
        SimConfig {
            repair: RepairConfig {
                bandwidth_kbps: 4_000,
                max_concurrent: 4,
            },
            controller: ControllerConfig {
                tick_min,
                ..ControllerConfig::default()
            },
            ..SimConfig::paper_default()
        }
    }

    /// Video 0 turns hot: a light early wave seeds the estimator, then a
    /// burst of ten concurrent requests. Static placement (one replica,
    /// four stream slots) drops most of the burst; the controller has
    /// re-replicated video 0 across the cluster by then and serves it.
    fn drifting_trace() -> Trace {
        let mut reqs = vec![req(0.0, 0), req(0.5, 0)];
        reqs.extend((0..10).map(|k| req(40.0 + 0.2 * k as f64, 0)));
        Trace::new(reqs).unwrap()
    }

    #[test]
    fn controller_rereplication_beats_static_under_drift() {
        let (catalog, cluster, layout) = controller_world();
        let trace = drifting_trace();
        let stat = Simulation::new(&catalog, &cluster, &layout, controller_cfg(0.0))
            .unwrap()
            .run(&trace)
            .unwrap();
        let ctrl = Simulation::new(&catalog, &cluster, &layout, controller_cfg(5.0))
            .unwrap()
            .run(&trace)
            .unwrap();
        // Static: the burst is capped at server 0's four stream slots.
        assert_eq!(stat.admitted, 2 + 4);
        assert_eq!(stat.controller_ticks, 0);
        assert_eq!(stat.controller_copies, 0);
        // Controller: video 0 promoted at the first tick, three replica
        // copies complete well before the burst; everything is served.
        assert_eq!(ctrl.admitted, 2 + 10);
        assert_eq!(ctrl.controller_ticks, 18); // every 5 min over 90 min
        assert!(ctrl.controller_promotions >= 1);
        assert_eq!(ctrl.controller_copies, 3);
        assert!(ctrl.controller_bytes_copied > 0);
        assert!(ctrl.is_conservative());
        assert!(stat.is_conservative());
    }

    #[test]
    fn controller_runs_are_deterministic_and_shard_identical() {
        let (catalog, cluster, layout) = controller_world();
        let trace = drifting_trace();
        let sim = Simulation::new(&catalog, &cluster, &layout, controller_cfg(5.0)).unwrap();
        let a = sim.run(&trace).unwrap();
        let b = sim.run(&trace).unwrap();
        assert_eq!(a, b);
        // The controller is a coupling feature: shards > 1 must take the
        // serial coupled-fallback path and stay byte-identical.
        let sharded = Simulation::new(
            &catalog,
            &cluster,
            &layout,
            SimConfig {
                shards: 4,
                ..controller_cfg(5.0)
            },
        )
        .unwrap();
        let c = sharded.run(&trace).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap()
        );
    }

    #[test]
    fn controller_telemetry_counters_fire() {
        let (catalog, cluster, layout) = controller_world();
        let sim = Simulation::new(&catalog, &cluster, &layout, controller_cfg(5.0)).unwrap();
        let telemetry = Telemetry::enabled();
        let r = sim
            .run_with_telemetry(&drifting_trace(), &telemetry)
            .unwrap();
        let snap = telemetry.snapshot();
        assert!(r.controller_ticks > 0);
        assert_eq!(snap.counter("sim.controller.ticks"), r.controller_ticks);
        assert_eq!(
            snap.counter("sim.controller.backoffs"),
            r.controller_backoffs
        );
        assert_eq!(
            snap.counter("sim.controller.promotions"),
            r.controller_promotions
        );
        assert_eq!(
            snap.counter("sim.controller.demotions"),
            r.controller_demotions
        );
        assert_eq!(snap.counter("sim.controller.retired"), r.controller_retired);
        assert_eq!(snap.counter("sim.controller.copies"), r.controller_copies);
        assert_eq!(
            snap.counter("sim.controller.bytes_copied"),
            r.controller_bytes_copied
        );
    }

    #[test]
    fn controller_backs_off_while_failure_repair_runs() {
        // A server is down across the first control ticks: the controller
        // must cede the copy budget to failure repair and only count
        // backoffs until the outage clears.
        let (catalog, cluster, layout) = controller_world();
        let cfg = SimConfig {
            failures: FailurePlan::new(vec![Outage {
                server: ServerId(3),
                down_at_min: 1.0,
                up_at_min: Some(22.0),
            }])
            .unwrap(),
            ..controller_cfg(5.0)
        };
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        let r = sim.run(&drifting_trace()).unwrap();
        // Ticks at 5/10/15/20 fall inside the outage: at least those back
        // off; later ticks promote the hot video as usual.
        assert!(r.controller_backoffs >= 4, "{}", r.controller_backoffs);
        assert!(r.controller_promotions >= 1);
        assert!(r.is_conservative());
    }

    #[test]
    fn controller_without_repair_bandwidth_senses_but_never_copies() {
        let (catalog, cluster, layout) = controller_world();
        let cfg = SimConfig {
            repair: RepairConfig {
                bandwidth_kbps: 0,
                max_concurrent: 4,
            },
            ..controller_cfg(5.0)
        };
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        let r = sim.run(&drifting_trace()).unwrap();
        assert!(r.controller_ticks > 0);
        assert!(r.controller_promotions >= 1); // targets still move…
        assert_eq!(r.controller_copies, 0); // …but nothing is copied
        assert_eq!(r.controller_bytes_copied, 0);
        // Without new replicas the burst is still bandwidth-capped.
        assert_eq!(r.admitted, 2 + 4);
    }

    #[test]
    fn controller_demotes_cooled_videos_under_storage_pressure() {
        // Finite storage: each server fits exactly two videos, so the
        // cluster has 8 replica slots for 4 videos. Video 0 is hot early
        // and takes the spare slots; when demand shifts to video 1 the
        // controller must retire video 0's surplus to free them.
        let catalog = Catalog::fixed_rate(4, BitRate::MPEG2, 600).unwrap();
        let video_bytes = BitRate::MPEG2.storage_bytes(600);
        let cluster = ClusterSpec::homogeneous(
            4,
            ServerSpec {
                storage_bytes: 2 * video_bytes,
                bandwidth_kbps: 16_000,
            },
        )
        .unwrap();
        let layout = Layout::new(4, (0..4u32).map(|v| vec![ServerId(v)]).collect()).unwrap();
        let mut reqs: Vec<Request> = (0..10).map(|k| req(2.0 * k as f64, 0)).collect();
        reqs.extend((0..60).map(|k| req(30.0 + 0.5 * k as f64, 1)));
        let trace = Trace::new(reqs).unwrap();
        let sim = Simulation::new(&catalog, &cluster, &layout, controller_cfg(5.0)).unwrap();
        let r = sim.run(&trace).unwrap();
        assert!(r.controller_promotions >= 2, "{}", r.controller_promotions);
        assert!(r.controller_demotions >= 1, "{}", r.controller_demotions);
        assert!(r.controller_retired >= 1, "{}", r.controller_retired);
        assert!(r.is_conservative());
        // Deterministic replay, byte for byte.
        let again = sim.run(&trace).unwrap();
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    // ---- erasure-coded serving ----

    /// One `Coded { k, m }` video striped over the first `k + m` of `n`
    /// servers (fragment order s0, s1, …).
    fn coded_tiny(
        n: usize,
        k: u32,
        par: u32,
        bandwidth_kbps: u64,
    ) -> (Catalog, ClusterSpec, Layout) {
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            n,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps,
            },
        )
        .unwrap();
        let map = vod_model::redundancy::RedundancyMap::uniform(
            1,
            vod_model::redundancy::RedundancyScheme::Coded { k, m: par },
        )
        .unwrap();
        let layout = vod_placement::place_coded(n, &[], &map).unwrap();
        (catalog, cluster, layout)
    }

    #[test]
    fn coded_stream_needs_k_free_fragment_holders() {
        // (2, 1) on 3 servers, each link fits exactly one 2 000 kbps
        // share: the first stream occupies two fragments, leaving one —
        // a concurrent request cannot gather k = 2 and is rejected.
        let (catalog, cluster, layout) = coded_tiny(3, 2, 1, 2_000);
        let sim = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()).unwrap();
        let r = sim
            .run(&Trace::new(vec![req(0.0, 0), req(5.0, 0), req(10.0, 0)]).unwrap())
            .unwrap();
        assert_eq!(r.admitted, 2);
        assert_eq!(r.rejected, 1);
        assert!(r.is_conservative());
    }

    #[test]
    fn coded_single_failure_reattaches_to_parity_fragment() {
        // Serving from fragments {s0, s1}; s1 dies mid-play. The share
        // re-attaches to the parity holder s2 (a degraded read) and the
        // stream survives to completion.
        let (catalog, cluster, layout) = coded_tiny(3, 2, 1, 8_000);
        let cfg = SimConfig {
            failover: FailoverPolicy::ResumeOrDegrade,
            ..failing_cfg(vec![Outage {
                server: ServerId(1),
                down_at_min: 5.0,
                up_at_min: None,
            }])
        };
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        let tel = Telemetry::enabled();
        let r = sim
            .run_with_telemetry(&Trace::new(vec![req(0.0, 0)]).unwrap(), &tel)
            .unwrap();
        assert_eq!(r.admitted, 1);
        assert_eq!(r.disrupted, 0);
        assert_eq!(r.resumed, 1);
        assert!(r.is_conservative());
        let snap = tel.snapshot();
        assert_eq!(snap.counter("sim.coded.shares_reattached"), 1);
        assert_eq!(snap.counter("sim.coded.degraded_reads"), 1);
    }

    #[test]
    fn coded_losing_more_than_m_fragments_kills_the_stream() {
        // (2, 1) tolerates one loss; the second exceeds the parity
        // margin and the stream dies through the normal failover path.
        let (catalog, cluster, layout) = coded_tiny(3, 2, 1, 8_000);
        let cfg = SimConfig {
            failover: FailoverPolicy::ResumeOrDegrade,
            ..failing_cfg(vec![
                Outage {
                    server: ServerId(0),
                    down_at_min: 4.0,
                    up_at_min: None,
                },
                Outage {
                    server: ServerId(1),
                    down_at_min: 5.0,
                    up_at_min: None,
                },
            ])
        };
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        let r = sim.run(&Trace::new(vec![req(0.0, 0)]).unwrap()).unwrap();
        assert_eq!(r.admitted, 1);
        assert_eq!(r.resumed, 1, "first loss re-attaches to s2");
        assert_eq!(r.disrupted, 1, "second loss has no fragment left");
        assert!(r.goodput < 1.0, "killed stream forfeits its remainder");
        assert!(r.is_conservative());
    }

    #[test]
    fn coded_kill_policy_kills_on_first_loss() {
        let (catalog, cluster, layout) = coded_tiny(3, 2, 1, 8_000);
        let cfg = failing_cfg(vec![Outage {
            server: ServerId(0),
            down_at_min: 5.0,
            up_at_min: None,
        }]);
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        let r = sim.run(&Trace::new(vec![req(0.0, 0)]).unwrap()).unwrap();
        assert_eq!(r.disrupted, 1);
        assert_eq!(r.resumed, 0);
        assert!(r.is_conservative());
    }

    #[test]
    fn coded_layout_rejects_controller_and_backbone_redirect() {
        let (catalog, cluster, layout) = coded_tiny(3, 2, 1, 8_000);
        let backbone = SimConfig {
            policy: AdmissionPolicy::BackboneRedirect {
                backbone_capacity_kbps: 1_000_000,
            },
            ..SimConfig::paper_default()
        };
        assert!(Simulation::new(&catalog, &cluster, &layout, backbone).is_err());
        assert!(Simulation::new(&catalog, &cluster, &layout, controller_cfg(5.0)).is_err());
    }

    #[test]
    fn coded_repair_reconstructs_lost_fragment_mid_run() {
        // Stripe on {s0, s1, s2}; s0 dies for good at t=5. With repair
        // bandwidth the lost fragment is rebuilt on the spare s3 from
        // k = 2 survivors, and the deficit window closes right after.
        let (catalog, cluster, layout) = coded_tiny(4, 2, 1, 100_000);
        let cfg = SimConfig {
            repair: RepairConfig {
                bandwidth_kbps: 50_000,
                max_concurrent: 4,
            },
            ..failing_cfg(vec![Outage {
                server: ServerId(0),
                down_at_min: 5.0,
                up_at_min: None,
            }])
        };
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        let tel = Telemetry::enabled();
        let r = sim
            .run_with_telemetry(&Trace::new(vec![]).unwrap(), &tel)
            .unwrap();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("sim.repair.coded.reconstructions"), 1);
        // Reading k fragments to write one: 2× the bytes written.
        assert_eq!(
            snap.counter("sim.repair.coded.bytes"),
            2 * r.repair_bytes_copied
        );
        assert!(r.redundancy_deficit_video_min > 0.0);
        assert!(
            r.redundancy_deficit_video_min < 5.0,
            "repair must close the deficit quickly, got {}",
            r.redundancy_deficit_video_min
        );
        assert_eq!(r.unavailability_video_min, 0.0);
    }
}
