//! The simulation run loop.
//!
//! A [`Simulation`] binds a catalog, a cluster and a layout; [`Simulation::run`]
//! replays a request trace through the admission policy and produces a
//! [`SimReport`]. The loop is event-ordered: before each arrival, every
//! background event due at an earlier (or equal) instant is processed —
//! stream departures first (bandwidth frees up), then failure/recovery
//! transitions (killed streams are counted as disrupted), then load
//! samples (they observe the settled state).
//!
//! Failure bookkeeping: a departing stream releases its link bandwidth
//! only if its admission epoch still matches the server's failure epoch;
//! otherwise the stream was already killed by [`LinkState::fail`] and the
//! departure is stale. Backbone reservations of redirected streams are
//! reclaimed at the stream's *scheduled* end even if the proxy failed
//! earlier — a deliberate, documented simplification (the backbone pool
//! is shared, so the error is a short-lived over-reservation).

use crate::dispatch::{AdmissionPolicy, Decision, Dispatcher};
use crate::event::{Departure, DepartureQueue};
use crate::failure::FailurePlan;
use crate::metrics::{MetricsCollector, SimReport};
use crate::server::LinkState;
use crate::time::SimTime;
use vod_model::{Catalog, ClusterSpec, Layout, ModelError};
use vod_telemetry::Telemetry;
use vod_workload::Trace;

/// Run-time knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// How requests are routed and admitted.
    pub policy: AdmissionPolicy,
    /// Peak-period length in minutes; load sampling and the report's
    /// time averages cover `[0, horizon_min]`. The paper uses 90.
    pub horizon_min: f64,
    /// Load-sampling cadence in minutes.
    pub sample_interval_min: f64,
    /// Injected server outages (empty = the paper's failure-free runs).
    pub failures: FailurePlan,
    /// Record the full per-sample load series in the report (off by
    /// default; used for plotting Figure-6-style time series).
    pub record_series: bool,
}

impl Default for SimConfig {
    /// The paper's defaults: strict static round-robin admission, a
    /// 90-minute peak period, 1-minute load samples, no failures.
    fn default() -> Self {
        SimConfig {
            policy: AdmissionPolicy::StaticRoundRobin,
            horizon_min: 90.0,
            sample_interval_min: 1.0,
            failures: FailurePlan::none(),
            record_series: false,
        }
    }
}

impl SimConfig {
    /// Alias for [`Default::default`], spelling out the provenance.
    pub fn paper_default() -> Self {
        Self::default()
    }
}

/// A bound simulation: catalog + cluster + layout + config.
#[derive(Debug, Clone)]
pub struct Simulation<'a> {
    catalog: &'a Catalog,
    cluster: &'a ClusterSpec,
    layout: &'a Layout,
    config: SimConfig,
}

impl<'a> Simulation<'a> {
    /// Binds and cross-validates the inputs (dimensions and the storage
    /// constraint (4); bandwidth is enforced dynamically by admission).
    pub fn new(
        catalog: &'a Catalog,
        cluster: &'a ClusterSpec,
        layout: &'a Layout,
        config: SimConfig,
    ) -> Result<Self, ModelError> {
        if layout.n_videos() != catalog.len() {
            return Err(ModelError::LengthMismatch {
                expected: layout.n_videos(),
                actual: catalog.len(),
            });
        }
        if layout.n_servers() != cluster.len() {
            return Err(ModelError::LengthMismatch {
                expected: layout.n_servers(),
                actual: cluster.len(),
            });
        }
        if !config.horizon_min.is_finite() || config.horizon_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "horizon_min",
                value: config.horizon_min,
            });
        }
        if !config.sample_interval_min.is_finite() || config.sample_interval_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "sample_interval_min",
                value: config.sample_interval_min,
            });
        }
        for o in config.failures.outages() {
            if o.server.index() >= cluster.len() {
                return Err(ModelError::UnknownServer(o.server));
            }
        }
        layout.validate_storage(catalog, cluster)?;
        Ok(Simulation {
            catalog,
            cluster,
            layout,
            config,
        })
    }

    /// The bound configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replays `trace` and reports the outcome.
    pub fn run(&self, trace: &Trace) -> Result<SimReport, ModelError> {
        self.run_with_telemetry(trace, &Telemetry::disabled())
    }

    /// Replays `trace`, recording engine counters and timings into
    /// `telemetry` (see the `sim.*` instrument names below). With a
    /// disabled handle this is identical to [`Simulation::run`]: every
    /// instrument operation reduces to a branch on `None`.
    ///
    /// Instruments: counters `sim.arrivals`, `sim.admitted`,
    /// `sim.rejected`, `sim.redirected`, `sim.departures`,
    /// `sim.disrupted`, `sim.transitions`, `sim.samples`,
    /// `sim.admission_probes`, `sim.events`; span `sim.run` (seconds);
    /// histogram `sim.events_per_sec` (one observation per run).
    pub fn run_with_telemetry(
        &self,
        trace: &Trace,
        telemetry: &Telemetry,
    ) -> Result<SimReport, ModelError> {
        let span = telemetry.span("sim.run");
        let ct_arrivals = telemetry.counter("sim.arrivals");
        let ct_admitted = telemetry.counter("sim.admitted");
        let ct_rejected = telemetry.counter("sim.rejected");
        let ct_redirected = telemetry.counter("sim.redirected");
        let ct_departures = telemetry.counter("sim.departures");
        let ct_disrupted = telemetry.counter("sim.disrupted");
        let ct_transitions = telemetry.counter("sim.transitions");
        let ct_samples = telemetry.counter("sim.samples");
        // Counters are cumulative across runs sharing this handle; this
        // run's event count is the delta over the starting values.
        let events_before =
            ct_arrivals.get() + ct_departures.get() + ct_transitions.get() + ct_samples.get();

        let mut links = LinkState::new(self.cluster);
        let mut dispatcher = Dispatcher::new(self.config.policy, self.catalog.len());
        let mut metrics = MetricsCollector::new(self.catalog.len());
        metrics.record_series(self.config.record_series);
        let mut departures = DepartureQueue::new();

        let transitions = self.config.failures.transitions();
        let mut next_transition = 0usize;
        let sample_step = self.config.sample_interval_min;
        let mut next_sample_min = 0.0f64;
        let horizon = self.config.horizon_min;

        // Processes every background event (departure / transition /
        // sample) with an instant <= `t`, in time order; ties break
        // departure-first, then transition, then sample.
        let advance_to = |t: SimTime,
                          links: &mut LinkState,
                          dispatcher: &mut Dispatcher,
                          metrics: &mut MetricsCollector,
                          departures: &mut DepartureQueue,
                          next_transition: &mut usize,
                          next_sample_min: &mut f64| {
            loop {
                let dep_at = departures.next_time();
                let tr_at = transitions.get(*next_transition).map(|x| x.at);
                let sample_due = *next_sample_min <= horizon;
                let sample_at = if sample_due {
                    Some(SimTime::from_min(*next_sample_min))
                } else {
                    None
                };

                // Smallest due instant wins; departures beat transitions
                // beat samples on ties (the comparison chain below).
                let candidates = [dep_at, tr_at, sample_at];
                let Some(min_at) = candidates.iter().flatten().min().copied() else {
                    break;
                };
                if min_at > t {
                    break;
                }
                if dep_at == Some(min_at) {
                    let d = departures.pop_due(min_at).expect("peeked");
                    ct_departures.inc();
                    if links.epoch(d.server) == d.epoch {
                        links.release(d.server, d.kbps);
                    }
                    if d.backbone_kbps > 0 {
                        dispatcher.release_backbone(d.backbone_kbps);
                    }
                } else if tr_at == Some(min_at) {
                    let tr = transitions[*next_transition];
                    *next_transition += 1;
                    ct_transitions.inc();
                    if tr.up {
                        links.recover(tr.server);
                    } else {
                        let dropped = links.fail(tr.server);
                        ct_disrupted.add(dropped as u64);
                        metrics.on_disrupted(dropped as u64);
                    }
                } else {
                    ct_samples.inc();
                    metrics.sample_loads(&links.stream_loads(), *next_sample_min);
                    *next_sample_min += sample_step;
                }
            }
        };

        for req in trace.requests() {
            let t = SimTime::from_min(req.arrival_min);
            advance_to(
                t,
                &mut links,
                &mut dispatcher,
                &mut metrics,
                &mut departures,
                &mut next_transition,
                &mut next_sample_min,
            );

            let video = self
                .catalog
                .get(req.video)
                .ok_or(ModelError::UnknownVideo(req.video))?;
            let kbps = video.bitrate.kbps() as u64;

            ct_arrivals.inc();
            metrics.on_arrival(req.video.index());
            match dispatcher.dispatch(req.video, kbps, self.layout, &links) {
                Decision::Admit {
                    server,
                    backbone_kbps,
                } => {
                    links.admit(server, kbps);
                    ct_admitted.inc();
                    if backbone_kbps > 0 {
                        ct_redirected.inc();
                    }
                    metrics.on_admit(backbone_kbps > 0);
                    departures.push(Departure {
                        at: t + SimTime::from_secs(video.duration_s),
                        server,
                        video: req.video,
                        kbps,
                        backbone_kbps,
                        epoch: links.epoch(server),
                    });
                }
                Decision::Reject => {
                    ct_rejected.inc();
                    metrics.on_reject(req.video.index());
                }
            }
            debug_assert!(links.within_capacity());
        }

        // Tail: run the remaining background events out to the horizon,
        // then retire whatever still streams past it.
        advance_to(
            SimTime::from_min(horizon),
            &mut links,
            &mut dispatcher,
            &mut metrics,
            &mut departures,
            &mut next_transition,
            &mut next_sample_min,
        );
        for d in departures.drain_all() {
            ct_departures.inc();
            if links.epoch(d.server) == d.epoch {
                links.release(d.server, d.kbps);
            }
            if d.backbone_kbps > 0 {
                dispatcher.release_backbone(d.backbone_kbps);
            }
        }
        debug_assert_eq!(links.total_streams(), 0);
        debug_assert_eq!(dispatcher.backbone_used_kbps(), 0);

        telemetry
            .counter("sim.admission_probes")
            .add(dispatcher.admission_probes());
        if telemetry.is_enabled() {
            let events =
                ct_arrivals.get() + ct_departures.get() + ct_transitions.get() + ct_samples.get()
                    - events_before;
            telemetry.counter("sim.events").add(events);
            let elapsed = span.elapsed_secs();
            if elapsed > 0.0 {
                telemetry
                    .histogram("sim.events_per_sec")
                    .observe(events as f64 / elapsed);
            }
        }

        Ok(metrics.finish(self.config.horizon_min))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::Outage;
    use vod_model::{BitRate, ServerId, ServerSpec, VideoId};
    use vod_workload::{Request, Trace};

    /// One video on one server; the server carries exactly one stream.
    fn tiny_world() -> (Catalog, ClusterSpec, Layout) {
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap(); // 10-minute video
        let cluster = ClusterSpec::homogeneous(
            1,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 4_000,
            },
        )
        .unwrap();
        let layout = Layout::new(1, vec![vec![ServerId(0)]]).unwrap();
        (catalog, cluster, layout)
    }

    fn req(min: f64, v: u32) -> Request {
        Request {
            arrival_min: min,
            video: VideoId(v),
        }
    }

    fn run_tiny(requests: Vec<Request>) -> SimReport {
        let (catalog, cluster, layout) = tiny_world();
        let sim = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()).unwrap();
        sim.run(&Trace::new(requests).unwrap()).unwrap()
    }

    #[test]
    fn overlapping_requests_reject_second() {
        let r = run_tiny(vec![req(0.0, 0), req(5.0, 0)]);
        assert_eq!(r.arrivals, 2);
        assert_eq!(r.admitted, 1);
        assert_eq!(r.rejected, 1);
        assert!(r.is_conservative());
    }

    #[test]
    fn sequential_requests_both_admitted() {
        // Video is 10 minutes; second arrives at t=10 exactly as the first
        // ends — the departure is processed first, so it's admitted.
        let r = run_tiny(vec![req(0.0, 0), req(10.0, 0)]);
        assert_eq!(r.admitted, 2);
        assert_eq!(r.rejected, 0);
    }

    #[test]
    fn arrival_just_before_departure_rejected() {
        let r = run_tiny(vec![req(0.0, 0), req(9.99, 0)]);
        assert_eq!(r.admitted, 1);
        assert_eq!(r.rejected, 1);
    }

    #[test]
    fn three_way_contention() {
        let r = run_tiny(vec![req(0.0, 0), req(1.0, 0), req(11.0, 0)]);
        assert_eq!(r.admitted, 2);
        assert_eq!(r.rejected, 1);
    }

    #[test]
    fn empty_trace_is_clean() {
        let r = run_tiny(vec![]);
        assert_eq!(r.arrivals, 0);
        assert_eq!(r.rejection_rate, 0.0);
        assert!(r.is_conservative());
    }

    #[test]
    fn replicated_video_spreads_over_servers() {
        // 1 video, 2 replicas, 1 stream per server: two simultaneous
        // requests both admitted under static RR (one per replica).
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 4_000,
            },
        )
        .unwrap();
        let layout = Layout::new(2, vec![vec![ServerId(0), ServerId(1)]]).unwrap();
        let sim = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()).unwrap();
        let r = sim
            .run(&Trace::new(vec![req(0.0, 0), req(0.5, 0), req(1.0, 0)]).unwrap())
            .unwrap();
        assert_eq!(r.admitted, 2);
        assert_eq!(r.rejected, 1);
    }

    #[test]
    fn backbone_redirect_saves_requests() {
        // v0 only on s0 (capacity 1 stream); s1 idle. Second concurrent
        // request is saved by redirection through s1.
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 4_000,
            },
        )
        .unwrap();
        let layout = Layout::new(2, vec![vec![ServerId(0)]]).unwrap();
        let trace = Trace::new(vec![req(0.0, 0), req(1.0, 0)]).unwrap();
        let cfg = SimConfig {
            policy: AdmissionPolicy::BackboneRedirect {
                backbone_capacity_kbps: 1_000_000,
            },
            ..SimConfig::paper_default()
        };
        let r = Simulation::new(&catalog, &cluster, &layout, cfg)
            .unwrap()
            .run(&trace)
            .unwrap();
        assert_eq!(r.admitted, 2);
        assert_eq!(r.redirected, 1);
        assert_eq!(r.rejected, 0);
    }

    #[test]
    fn unknown_video_is_an_error() {
        let (catalog, cluster, layout) = tiny_world();
        let sim = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()).unwrap();
        let trace = Trace::new(vec![req(0.0, 5)]).unwrap();
        assert!(matches!(
            sim.run(&trace),
            Err(ModelError::UnknownVideo(VideoId(5)))
        ));
    }

    #[test]
    fn dimension_mismatches_rejected() {
        let (catalog, cluster, _) = tiny_world();
        let layout2 = Layout::new(2, vec![vec![ServerId(0)]]).unwrap();
        assert!(Simulation::new(&catalog, &cluster, &layout2, SimConfig::paper_default()).is_err());
        let cfg = SimConfig {
            horizon_min: 0.0,
            ..SimConfig::paper_default()
        };
        let layout = Layout::new(1, vec![vec![ServerId(0)]]).unwrap();
        assert!(Simulation::new(&catalog, &cluster, &layout, cfg).is_err());
    }

    #[test]
    fn storage_constraint_checked_at_bind_time() {
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap();
        let cluster = ClusterSpec::homogeneous(
            1,
            ServerSpec {
                storage_bytes: 1, // cannot hold the replica
                bandwidth_kbps: 4_000,
            },
        )
        .unwrap();
        let layout = Layout::new(1, vec![vec![ServerId(0)]]).unwrap();
        assert!(matches!(
            Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()),
            Err(ModelError::StorageExceeded { .. })
        ));
    }

    #[test]
    fn imbalance_sampled_nonzero_under_skewed_layout() {
        // Two servers; all load lands on s0.
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 3_000).unwrap();
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 400_000,
            },
        )
        .unwrap();
        let layout = Layout::new(2, vec![vec![ServerId(0)]]).unwrap();
        let trace = Trace::new(vec![req(0.0, 0), req(1.0, 0), req(2.0, 0)]).unwrap();
        let r = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default())
            .unwrap()
            .run(&trace)
            .unwrap();
        assert!(r.mean_imbalance_cv > 0.5);
        assert_eq!(r.peak_concurrent_streams, 3);
    }

    // ---- failure injection ----

    fn failing_cfg(outages: Vec<Outage>) -> SimConfig {
        SimConfig {
            failures: FailurePlan::new(outages).unwrap(),
            ..SimConfig::paper_default()
        }
    }

    #[test]
    fn failure_disrupts_active_streams() {
        let (catalog, cluster, layout) = tiny_world();
        let cfg = failing_cfg(vec![Outage {
            server: ServerId(0),
            down_at_min: 5.0,
            up_at_min: None,
        }]);
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        // Stream admitted at t=0 (runs to t=10) is killed at t=5; a later
        // request hits a dead server and is rejected.
        let r = sim
            .run(&Trace::new(vec![req(0.0, 0), req(6.0, 0)]).unwrap())
            .unwrap();
        assert_eq!(r.admitted, 1);
        assert_eq!(r.disrupted, 1);
        assert_eq!(r.rejected, 1);
        assert!(r.is_conservative());
    }

    #[test]
    fn recovery_restores_service() {
        let (catalog, cluster, layout) = tiny_world();
        let cfg = failing_cfg(vec![Outage {
            server: ServerId(0),
            down_at_min: 5.0,
            up_at_min: Some(8.0),
        }]);
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        let r = sim
            .run(&Trace::new(vec![req(0.0, 0), req(6.0, 0), req(9.0, 0)]).unwrap())
            .unwrap();
        // t=0 admitted then disrupted at 5; t=6 rejected (down); t=9
        // admitted (recovered, and the old stream's bandwidth was cleared
        // by the failure — its stale departure at t=10 must not
        // double-release).
        assert_eq!(r.admitted, 2);
        assert_eq!(r.disrupted, 1);
        assert_eq!(r.rejected, 1);
    }

    #[test]
    fn stale_departure_does_not_underflow() {
        // The killed stream's departure (t=10) pops after recovery and a
        // new admission; with epoch tracking it must not release the new
        // stream's bandwidth. If it did, the second release (from the new
        // stream's real departure) would underflow and panic in debug.
        let (catalog, cluster, layout) = tiny_world();
        let cfg = failing_cfg(vec![Outage {
            server: ServerId(0),
            down_at_min: 1.0,
            up_at_min: Some(2.0),
        }]);
        let sim = Simulation::new(&catalog, &cluster, &layout, cfg).unwrap();
        let r = sim
            .run(&Trace::new(vec![req(0.0, 0), req(3.0, 0), req(20.0, 0)]).unwrap())
            .unwrap();
        assert_eq!(r.admitted, 3);
        assert_eq!(r.disrupted, 1);
    }

    #[test]
    fn replicas_survive_single_failure_with_failover() {
        // v0 on two servers; s0 dies mid-run. Failover keeps serving from
        // s1 while strict static RR loses every other request.
        let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 60).unwrap(); // 1-min video
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 400_000,
            },
        )
        .unwrap();
        let layout = Layout::new(2, vec![vec![ServerId(0), ServerId(1)]]).unwrap();
        let reqs: Vec<Request> = (0..20).map(|k| req(10.0 + k as f64 * 2.0, 0)).collect();
        let outage = vec![Outage {
            server: ServerId(0),
            down_at_min: 5.0,
            up_at_min: None,
        }];

        let strict = Simulation::new(&catalog, &cluster, &layout, failing_cfg(outage.clone()))
            .unwrap()
            .run(&Trace::new(reqs.clone()).unwrap())
            .unwrap();
        // Static RR alternates; every dispatch to s0 dies.
        assert_eq!(strict.rejected, 10);

        let failover_cfg = SimConfig {
            policy: AdmissionPolicy::RoundRobinFailover,
            failures: FailurePlan::new(outage).unwrap(),
            ..SimConfig::paper_default()
        };
        let failover = Simulation::new(&catalog, &cluster, &layout, failover_cfg)
            .unwrap()
            .run(&Trace::new(reqs).unwrap())
            .unwrap();
        assert_eq!(failover.rejected, 0);
    }

    #[test]
    fn telemetry_counters_match_report() {
        let (catalog, cluster, layout) = tiny_world();
        let sim = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()).unwrap();
        let trace = Trace::new(vec![req(0.0, 0), req(5.0, 0), req(12.0, 0)]).unwrap();
        let telemetry = Telemetry::enabled();
        let r = sim.run_with_telemetry(&trace, &telemetry).unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("sim.arrivals"), r.arrivals);
        assert_eq!(snap.counter("sim.admitted"), r.admitted);
        assert_eq!(snap.counter("sim.rejected"), r.rejected);
        // Every admitted stream eventually departs (possibly in the
        // post-horizon drain).
        assert_eq!(snap.counter("sim.departures"), r.admitted);
        // Static RR probes exactly once per arrival.
        assert_eq!(snap.counter("sim.admission_probes"), r.arrivals);
        // 90-min horizon, 1-min cadence: samples at 0..=90.
        assert_eq!(snap.counter("sim.samples"), 91);
        assert_eq!(snap.histogram("sim.run").count, 1);
        assert_eq!(snap.histogram("sim.events_per_sec").count, 1);
        assert!(snap.histogram("sim.events_per_sec").min > 0.0);
        assert_eq!(
            snap.counter("sim.events"),
            r.arrivals + r.admitted + 91 // arrivals + departures + samples
        );
    }

    #[test]
    fn disabled_telemetry_is_equivalent() {
        let (catalog, cluster, layout) = tiny_world();
        let sim = Simulation::new(&catalog, &cluster, &layout, SimConfig::paper_default()).unwrap();
        let trace = Trace::new(vec![req(0.0, 0), req(5.0, 0)]).unwrap();
        let plain = sim.run(&trace).unwrap();
        let telemetry = Telemetry::enabled();
        let instrumented = sim.run_with_telemetry(&trace, &telemetry).unwrap();
        assert_eq!(plain.arrivals, instrumented.arrivals);
        assert_eq!(plain.admitted, instrumented.admitted);
        assert_eq!(plain.rejected, instrumented.rejected);
        assert_eq!(plain.rejection_rate, instrumented.rejection_rate);
    }

    #[test]
    fn failure_on_unknown_server_rejected_at_bind() {
        let (catalog, cluster, layout) = tiny_world();
        let cfg = failing_cfg(vec![Outage {
            server: ServerId(9),
            down_at_min: 5.0,
            up_at_min: None,
        }]);
        assert!(matches!(
            Simulation::new(&catalog, &cluster, &layout, cfg),
            Err(ModelError::UnknownServer(ServerId(9)))
        ));
    }
}
