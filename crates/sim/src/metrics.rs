//! Rejection accounting and load-imbalance sampling.
//!
//! The evaluation's primary metric is the **rejection rate** ("We use the
//! rejection rate as the performance metric", Sec. 5); Figure 6 adds the
//! **load-imbalance degree L(%)** sampled during the run. The collector
//! samples per-server loads (in concurrent streams) on a fixed cadence and
//! averages the Eq. (2)/(3) imbalance over all samples with non-zero mean
//! load.

use serde::{Deserialize, Serialize};
use vod_model::load;
use vod_workload::stats;

/// One recorded load snapshot (when series recording is enabled).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSample {
    /// Sample instant, minutes from the simulation epoch.
    pub at_min: f64,
    /// Per-server concurrent stream counts.
    pub streams: Vec<f64>,
}

/// Online metrics accumulator.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    arrivals: u64,
    admitted: u64,
    rejected: u64,
    redirected: u64,
    disrupted: u64,
    resumed: u64,
    degraded: u64,
    queued: u64,
    retried: u64,
    abandoned: u64,
    degraded_served: u64,
    wait_times_min: Vec<f64>,
    /// Offered traffic in exact `kbps·seconds` (integer so shard merges
    /// are order-independent); converted to `kbps·minutes` once, in
    /// [`MetricsCollector::finish`].
    offered_kbps_s: u128,
    /// Delivered traffic in exact `kbps·seconds`.
    delivered_kbps_s: u128,
    /// Traffic booked as delivered but later killed or rate-reduced, in
    /// exact `kbps·ticks` (millisecond resolution).
    undelivered_kbps_ticks: u128,
    brownout_active_min: f64,
    repair_bytes_copied: u64,
    repair_copies: u64,
    time_to_redundancy_min: f64,
    redundancy_deficit_video_min: f64,
    unavailability_video_min: f64,
    controller_ticks: u64,
    controller_backoffs: u64,
    controller_promotions: u64,
    controller_demotions: u64,
    controller_retired: u64,
    controller_copies: u64,
    controller_bytes_copied: u64,
    per_video_arrivals: Vec<u64>,
    per_video_rejections: Vec<u64>,
    imbalance_cv_sum: f64,
    imbalance_maxdev_rel_sum: f64,
    imbalance_samples: u64,
    imbalance_maxdev_abs_sum: f64,
    all_samples: u64,
    peak_streams: u64,
    stream_time_integral: f64,
    last_sample_min: f64,
    record_series: bool,
    series: Vec<LoadSample>,
}

impl MetricsCollector {
    /// A collector for `n_videos` videos.
    pub fn new(n_videos: usize) -> Self {
        MetricsCollector {
            arrivals: 0,
            admitted: 0,
            rejected: 0,
            redirected: 0,
            disrupted: 0,
            resumed: 0,
            degraded: 0,
            queued: 0,
            retried: 0,
            abandoned: 0,
            degraded_served: 0,
            wait_times_min: Vec::new(),
            offered_kbps_s: 0,
            delivered_kbps_s: 0,
            undelivered_kbps_ticks: 0,
            brownout_active_min: 0.0,
            repair_bytes_copied: 0,
            repair_copies: 0,
            time_to_redundancy_min: 0.0,
            redundancy_deficit_video_min: 0.0,
            unavailability_video_min: 0.0,
            controller_ticks: 0,
            controller_backoffs: 0,
            controller_promotions: 0,
            controller_demotions: 0,
            controller_retired: 0,
            controller_copies: 0,
            controller_bytes_copied: 0,
            per_video_arrivals: vec![0; n_videos],
            per_video_rejections: vec![0; n_videos],
            imbalance_cv_sum: 0.0,
            imbalance_maxdev_rel_sum: 0.0,
            imbalance_samples: 0,
            imbalance_maxdev_abs_sum: 0.0,
            all_samples: 0,
            peak_streams: 0,
            stream_time_integral: 0.0,
            last_sample_min: 0.0,
            record_series: false,
            series: Vec::new(),
        }
    }

    /// Enables per-sample load-series recording (off by default — the
    /// series costs `N × samples` floats per run).
    pub fn record_series(&mut self, on: bool) {
        self.record_series = on;
    }

    /// Records an arrival for `video` (0-based index).
    pub fn on_arrival(&mut self, video: usize) {
        self.arrivals += 1;
        self.per_video_arrivals[video] += 1;
    }

    /// Records an admission (`redirected` marks backbone-proxied streams).
    pub fn on_admit(&mut self, redirected: bool) {
        self.admitted += 1;
        if redirected {
            self.redirected += 1;
        }
    }

    /// Records a rejection for `video`.
    pub fn on_reject(&mut self, video: usize) {
        self.rejected += 1;
        self.per_video_rejections[video] += 1;
    }

    /// Records `count` streams killed by a server failure.
    pub fn on_disrupted(&mut self, count: u64) {
        self.disrupted += count;
    }

    /// Records `count` streams migrated to a surviving replica holder at
    /// full rate after their server failed.
    pub fn on_resumed(&mut self, count: u64) {
        self.resumed += count;
    }

    /// Records `count` streams that continued at a reduced bit rate after
    /// their server failed (graceful degradation).
    pub fn on_degraded(&mut self, count: u64) {
        self.degraded += count;
    }

    /// Records a request entering the admission wait queue.
    pub fn on_queued(&mut self) {
        self.queued += 1;
    }

    /// Records a retry being scheduled for a blocked/abandoning request.
    pub fn on_retried(&mut self) {
        self.retried += 1;
    }

    /// Records a final abandonment (patience and retry budget exhausted,
    /// or the run ended while the request was still waiting).
    pub fn on_abandoned(&mut self) {
        self.abandoned += 1;
    }

    /// Records an admission below the requested bit rate (the
    /// `QueueOrDegrade` policy settled for a thinner slot).
    pub fn on_degraded_served(&mut self) {
        self.degraded_served += 1;
    }

    /// Records the wait of a request served after queueing, in minutes.
    pub fn on_wait(&mut self, wait_min: f64) {
        self.wait_times_min.push(wait_min);
    }

    /// Adds `kbps × seconds` of *offered* traffic (each arrival's full
    /// rate over its full duration) to the goodput denominator. Exact
    /// integer accounting: accumulation order never changes the total.
    pub fn on_offered(&mut self, kbps: u64, duration_s: u64) {
        self.offered_kbps_s += kbps as u128 * duration_s as u128;
    }

    /// Adds delivered `kbps × seconds` (at the admitted, possibly
    /// degraded, rate) to the goodput numerator.
    pub fn on_delivered(&mut self, kbps: u64, duration_s: u64) {
        self.delivered_kbps_s += kbps as u128 * duration_s as u128;
    }

    /// Books `kbps` over `remaining_ticks` milliseconds a previously
    /// admitted stream will no longer deliver (killed or rate-reduced
    /// mid-flight); subtracted from the numerator at finish time.
    pub fn on_undelivered(&mut self, kbps: u64, remaining_ticks: u64) {
        self.undelivered_kbps_ticks += kbps as u128 * remaining_ticks as u128;
    }

    /// Stores the total browned-out server time for the run.
    pub fn set_brownout_active_min(&mut self, min: f64) {
        self.brownout_active_min = min;
    }

    /// Terminal-outcome totals for the invariant auditor:
    /// `(arrivals, admitted, rejected, abandoned)`.
    pub(crate) fn outcome_totals(&self) -> (u64, u64, u64, u64) {
        (self.arrivals, self.admitted, self.rejected, self.abandoned)
    }

    /// Arrivals observed so far, per video (used as demand weights when
    /// re-planning replica placement mid-run).
    pub fn per_video_arrivals(&self) -> &[u64] {
        &self.per_video_arrivals
    }

    /// Stores the repair controller's end-of-run accounting.
    pub fn set_recovery_stats(
        &mut self,
        bytes_copied: u64,
        copies: u64,
        time_to_redundancy_min: f64,
        redundancy_deficit_video_min: f64,
        unavailability_video_min: f64,
    ) {
        self.repair_bytes_copied = bytes_copied;
        self.repair_copies = copies;
        self.time_to_redundancy_min = time_to_redundancy_min;
        self.redundancy_deficit_video_min = redundancy_deficit_video_min;
        self.unavailability_video_min = unavailability_video_min;
    }

    /// Stores the online replication controller's end-of-run accounting.
    #[allow(clippy::too_many_arguments)]
    pub fn set_controller_stats(
        &mut self,
        ticks: u64,
        backoffs: u64,
        promotions: u64,
        demotions: u64,
        retired: u64,
        copies: u64,
        bytes_copied: u64,
    ) {
        self.controller_ticks = ticks;
        self.controller_backoffs = backoffs;
        self.controller_promotions = promotions;
        self.controller_demotions = demotions;
        self.controller_retired = retired;
        self.controller_copies = copies;
        self.controller_bytes_copied = bytes_copied;
    }

    /// Takes a load sample: `stream_loads` are per-server concurrent
    /// stream counts at minute `now_min`.
    pub fn sample_loads(&mut self, stream_loads: &[f64], now_min: f64) {
        let total: f64 = stream_loads.iter().sum();
        if total > 0.0 {
            self.imbalance_cv_sum += load::coefficient_of_variation(stream_loads);
            let mean = total / stream_loads.len() as f64;
            self.imbalance_maxdev_rel_sum += load::max_deviation(stream_loads) / mean;
            self.imbalance_samples += 1;
        }
        // Absolute Eq. (2) deviation in streams, averaged over *all*
        // samples (idle samples contribute 0) — the measure behind the
        // paper's Figure 6 shape when normalized by link capacity.
        self.imbalance_maxdev_abs_sum += load::max_deviation(stream_loads);
        self.all_samples += 1;
        let streams = total as u64;
        self.peak_streams = self.peak_streams.max(streams);
        let dt = (now_min - self.last_sample_min).max(0.0);
        self.stream_time_integral += total * dt;
        self.last_sample_min = now_min;
        if self.record_series {
            self.series.push(LoadSample {
                at_min: now_min,
                streams: stream_loads.to_vec(),
            });
        }
    }

    /// Applies one window's worth of parallel-worker outcomes at a
    /// barrier merge. Sound only under the windowed path's admission
    /// preconditions: every in-window admission is direct (never
    /// redirected or degraded) and waits exactly `0.0` minutes — `0.0`
    /// is the additive identity and percentile sorting is stable across
    /// equal keys, so pushing the zeros here, whatever order workers
    /// finished in, is byte-identical to the serial loop's pushes.
    /// Rejections arrive as sparse `(video, count)` pairs.
    pub(crate) fn apply_window(
        &mut self,
        admitted: u64,
        delivered_kbps_s: u128,
        rejections: &[(usize, u64)],
    ) {
        self.admitted += admitted;
        for _ in 0..admitted {
            self.wait_times_min.push(0.0);
        }
        self.delivered_kbps_s += delivered_kbps_s;
        for &(v, n) in rejections {
            self.rejected += n;
            self.per_video_rejections[v] += n;
        }
    }

    /// Folds another collector into this one — the cross-shard merge of
    /// the sharded engine. All event counts and the goodput integrals
    /// are integers, so the merged totals equal a serial run's exactly,
    /// whatever order shards finish in. Float fields (wait times,
    /// imbalance sums, the sample series) are only *exact* when the
    /// inputs have disjoint support — true by construction for engine
    /// shards, which serve disjoint server groups and defer load
    /// sampling to the coordinator's replay.
    pub fn absorb(&mut self, other: MetricsCollector) {
        debug_assert_eq!(
            self.per_video_arrivals.len(),
            other.per_video_arrivals.len()
        );
        self.arrivals += other.arrivals;
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.redirected += other.redirected;
        self.disrupted += other.disrupted;
        self.resumed += other.resumed;
        self.degraded += other.degraded;
        self.queued += other.queued;
        self.retried += other.retried;
        self.abandoned += other.abandoned;
        self.degraded_served += other.degraded_served;
        self.wait_times_min.extend(other.wait_times_min);
        self.offered_kbps_s += other.offered_kbps_s;
        self.delivered_kbps_s += other.delivered_kbps_s;
        self.undelivered_kbps_ticks += other.undelivered_kbps_ticks;
        self.brownout_active_min += other.brownout_active_min;
        self.repair_bytes_copied += other.repair_bytes_copied;
        self.repair_copies += other.repair_copies;
        self.time_to_redundancy_min += other.time_to_redundancy_min;
        self.redundancy_deficit_video_min += other.redundancy_deficit_video_min;
        self.unavailability_video_min += other.unavailability_video_min;
        self.controller_ticks += other.controller_ticks;
        self.controller_backoffs += other.controller_backoffs;
        self.controller_promotions += other.controller_promotions;
        self.controller_demotions += other.controller_demotions;
        self.controller_retired += other.controller_retired;
        self.controller_copies += other.controller_copies;
        self.controller_bytes_copied += other.controller_bytes_copied;
        for (a, b) in self
            .per_video_arrivals
            .iter_mut()
            .zip(other.per_video_arrivals)
        {
            *a += b;
        }
        for (a, b) in self
            .per_video_rejections
            .iter_mut()
            .zip(other.per_video_rejections)
        {
            *a += b;
        }
        self.imbalance_cv_sum += other.imbalance_cv_sum;
        self.imbalance_maxdev_rel_sum += other.imbalance_maxdev_rel_sum;
        self.imbalance_samples += other.imbalance_samples;
        self.imbalance_maxdev_abs_sum += other.imbalance_maxdev_abs_sum;
        self.all_samples += other.all_samples;
        self.peak_streams = self.peak_streams.max(other.peak_streams);
        self.stream_time_integral += other.stream_time_integral;
        self.last_sample_min = self.last_sample_min.max(other.last_sample_min);
        self.series.extend(other.series);
    }

    /// Finalizes into an immutable report. `horizon_min` is the simulated
    /// peak-period length.
    pub fn finish(self, horizon_min: f64) -> SimReport {
        let n = self.imbalance_samples.max(1) as f64;
        SimReport {
            arrivals: self.arrivals,
            admitted: self.admitted,
            rejected: self.rejected,
            redirected: self.redirected,
            disrupted: self.disrupted,
            resumed: self.resumed,
            degraded: self.degraded,
            queued: self.queued,
            retried: self.retried,
            abandoned: self.abandoned,
            degraded_served: self.degraded_served,
            mean_wait_min: stats::sample_mean(&self.wait_times_min),
            wait_p50_min: stats::percentile(&self.wait_times_min, 0.50),
            wait_p95_min: stats::percentile(&self.wait_times_min, 0.95),
            goodput: if self.offered_kbps_s > 0 {
                let offered_kbps_min = self.offered_kbps_s as f64 / 60.0;
                let delivered_kbps_min = self.delivered_kbps_s as f64 / 60.0
                    - self.undelivered_kbps_ticks as f64 / 60_000.0;
                (delivered_kbps_min / offered_kbps_min).clamp(0.0, 1.0)
            } else {
                1.0
            },
            brownout_active_min: self.brownout_active_min,
            repair_bytes_copied: self.repair_bytes_copied,
            repair_copies: self.repair_copies,
            time_to_redundancy_min: self.time_to_redundancy_min,
            redundancy_deficit_video_min: self.redundancy_deficit_video_min,
            unavailability_video_min: self.unavailability_video_min,
            controller_ticks: self.controller_ticks,
            controller_backoffs: self.controller_backoffs,
            controller_promotions: self.controller_promotions,
            controller_demotions: self.controller_demotions,
            controller_retired: self.controller_retired,
            controller_copies: self.controller_copies,
            controller_bytes_copied: self.controller_bytes_copied,
            rejection_rate: if self.arrivals == 0 {
                0.0
            } else {
                self.rejected as f64 / self.arrivals as f64
            },
            mean_imbalance_cv: self.imbalance_cv_sum / n,
            mean_imbalance_maxdev_rel: self.imbalance_maxdev_rel_sum / n,
            mean_imbalance_maxdev_streams: self.imbalance_maxdev_abs_sum
                / self.all_samples.max(1) as f64,
            peak_concurrent_streams: self.peak_streams,
            mean_concurrent_streams: if horizon_min > 0.0 {
                self.stream_time_integral / horizon_min
            } else {
                0.0
            },
            per_video_arrivals: self.per_video_arrivals,
            per_video_rejections: self.per_video_rejections,
            series: self.series,
        }
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total requests that arrived during the peak period.
    pub arrivals: u64,
    /// Requests admitted (direct + redirected).
    pub admitted: u64,
    /// Requests rejected for lack of bandwidth.
    pub rejected: u64,
    /// Admitted requests served via backbone redirection.
    pub redirected: u64,
    /// Admitted streams killed mid-playback by injected server failures.
    pub disrupted: u64,
    /// Streams migrated to a surviving replica at full rate after their
    /// server failed (zero unless stream failover is enabled).
    #[serde(default)]
    pub resumed: u64,
    /// Streams that continued at a reduced bit rate after their server
    /// failed (zero unless graceful degradation is enabled).
    #[serde(default)]
    pub degraded: u64,
    /// Requests that entered the admission wait queue at least once
    /// (zero under the default `Block` policy).
    #[serde(default)]
    pub queued: u64,
    /// Retry attempts scheduled by the admission pipeline.
    #[serde(default)]
    pub retried: u64,
    /// Requests that gave up waiting: patience expired with no retry
    /// budget left, or the run ended while they were still pending.
    #[serde(default)]
    pub abandoned: u64,
    /// Requests admitted below their requested bit rate by the
    /// `QueueOrDegrade` policy.
    #[serde(default)]
    pub degraded_served: u64,
    /// Mean wait of queued-then-served requests, minutes (0 when no
    /// request waited).
    #[serde(default)]
    pub mean_wait_min: f64,
    /// Median wait of queued-then-served requests, minutes.
    #[serde(default)]
    pub wait_p50_min: f64,
    /// 95th-percentile wait of queued-then-served requests, minutes.
    #[serde(default)]
    pub wait_p95_min: f64,
    /// Delivered ÷ offered `kbps·minutes`: the fraction of requested
    /// stream-bandwidth-time actually served (degraded admissions,
    /// rate-reduced failovers and mid-flight kills all reduce it; 1.0
    /// for an idle run). Exact except for streams dropped by
    /// [`crate::FailoverPolicy::Kill`] during a *crash* (not brownout),
    /// whose remaining duration is still counted as delivered — a
    /// documented simplification of the kill path.
    #[serde(default)]
    pub goodput: f64,
    /// Total browned-out time summed over servers, minutes.
    #[serde(default)]
    pub brownout_active_min: f64,
    /// Bytes of replica data copied by mid-run repair.
    #[serde(default)]
    pub repair_bytes_copied: u64,
    /// Replica copies completed by mid-run repair.
    #[serde(default)]
    pub repair_copies: u64,
    /// Minutes during which at least one video sat below its replication
    /// target (time to full redundancy, summed over deficit windows).
    /// Under popularity-skewed replication the single-replica cold tail
    /// pins this union to the outage union (those videos cannot be
    /// rebuilt while their only holder is down).
    #[serde(default)]
    pub time_to_redundancy_min: f64,
    /// Video·minutes below replication target — the replica-deficit
    /// integral mid-run repair drains copy by copy.
    #[serde(default)]
    pub redundancy_deficit_video_min: f64,
    /// Video·minutes with zero servable replicas.
    #[serde(default)]
    pub unavailability_video_min: f64,
    /// Control ticks fired by the online replication controller (zero
    /// when the controller is off).
    #[serde(default)]
    pub controller_ticks: u64,
    /// Control ticks that backed off (server down, repair busy, or the
    /// cluster over its streaming-utilization headroom).
    #[serde(default)]
    pub controller_backoffs: u64,
    /// Replication targets raised by the controller.
    #[serde(default)]
    pub controller_promotions: u64,
    /// Replication targets lowered by the controller.
    #[serde(default)]
    pub controller_demotions: u64,
    /// Replicas retired by controller demotions.
    #[serde(default)]
    pub controller_retired: u64,
    /// Re-replication copies completed on the controller's behalf.
    #[serde(default)]
    pub controller_copies: u64,
    /// Bytes copied for controller re-replication (the re-replication
    /// bandwidth bill, distinct from failure-repair bytes).
    #[serde(default)]
    pub controller_bytes_copied: u64,
    /// `rejected / arrivals` — the paper's primary metric.
    pub rejection_rate: f64,
    /// Time-averaged Eq. (3) load-imbalance degree (coefficient of
    /// variation of per-server stream loads) over non-idle samples.
    pub mean_imbalance_cv: f64,
    /// Time-averaged Eq. (2) imbalance normalized by the mean load.
    pub mean_imbalance_maxdev_rel: f64,
    /// Time-averaged absolute Eq. (2) imbalance, in concurrent streams
    /// (idle samples included as zero). Divided by the per-server stream
    /// capacity this is the Figure 6 "L(%)" that rises with load, peaks
    /// below saturation and collapses once every server is full.
    pub mean_imbalance_maxdev_streams: f64,
    /// Largest concurrent stream count observed cluster-wide.
    pub peak_concurrent_streams: u64,
    /// Time-averaged concurrent stream count.
    pub mean_concurrent_streams: f64,
    /// Arrivals per video.
    pub per_video_arrivals: Vec<u64>,
    /// Rejections per video.
    pub per_video_rejections: Vec<u64>,
    /// Per-sample load snapshots; empty unless
    /// [`crate::SimConfig::record_series`] was set.
    pub series: Vec<LoadSample>,
}

impl SimReport {
    /// Conservation check: every arrival ended exactly once — admitted
    /// (possibly degraded), finally rejected, or abandoned after
    /// queueing. `abandoned` is zero under the default `Block` policy,
    /// reducing this to the paper's loss-model identity.
    pub fn is_conservative(&self) -> bool {
        self.admitted + self.rejected + self.abandoned == self.arrivals
            && self.per_video_arrivals.iter().sum::<u64>() == self.arrivals
            && self.per_video_rejections.iter().sum::<u64>() == self.rejected
            && self.degraded_served <= self.admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_flow_through() {
        let mut c = MetricsCollector::new(2);
        c.on_arrival(0);
        c.on_admit(false);
        c.on_arrival(1);
        c.on_reject(1);
        c.on_arrival(0);
        c.on_admit(true);
        let r = c.finish(90.0);
        assert_eq!(r.arrivals, 3);
        assert_eq!(r.admitted, 2);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.redirected, 1);
        assert_eq!(r.disrupted, 0);
        assert!((r.rejection_rate - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.per_video_arrivals, vec![2, 1]);
        assert_eq!(r.per_video_rejections, vec![0, 1]);
        assert!(r.is_conservative());
    }

    #[test]
    fn admission_pipeline_counters_flow_through() {
        let mut c = MetricsCollector::new(1);
        // Request 1: queued, waits 2 min, then served at a thinner rate.
        c.on_arrival(0);
        c.on_queued();
        c.on_wait(2.0);
        c.on_admit(false);
        c.on_degraded_served();
        // Request 2: queued, one retry, then gives up.
        c.on_arrival(0);
        c.on_queued();
        c.on_retried();
        c.on_abandoned();
        // Request 3: served instantly.
        c.on_arrival(0);
        c.on_wait(6.0);
        c.on_admit(false);
        // 100 kbps offered for 60 s, 80 delivered, 10 kbps·min killed:
        // goodput = (80 - 10) / 100.
        c.on_offered(100, 60);
        c.on_delivered(80, 60);
        c.on_undelivered(10, 60_000);
        c.set_brownout_active_min(3.5);
        let r = c.finish(90.0);
        assert_eq!(
            (r.queued, r.retried, r.abandoned, r.degraded_served),
            (2, 1, 1, 1)
        );
        assert_eq!((r.admitted, r.rejected, r.abandoned), (2, 0, 1));
        assert!(r.is_conservative(), "abandonment balances the ledger");
        assert!((r.goodput - 0.7).abs() < 1e-12);
        assert!((r.mean_wait_min - 4.0).abs() < 1e-12);
        assert!((r.wait_p50_min - 4.0).abs() < 1e-12);
        assert!((r.wait_p95_min - 5.8).abs() < 1e-12);
        assert_eq!(r.brownout_active_min, 3.5);
    }

    #[test]
    fn absorb_merges_shard_collectors_exactly() {
        // Two collectors with disjoint per-video support, as engine
        // shards produce, must merge into the serial-run totals.
        let mut a = MetricsCollector::new(3);
        a.on_arrival(0);
        a.on_admit(false);
        a.on_offered(100, 60);
        a.on_delivered(100, 60);
        a.on_wait(0.0);
        let mut b = MetricsCollector::new(3);
        b.on_arrival(2);
        b.on_reject(2);
        b.on_offered(100, 120);
        b.on_undelivered(50, 60_000);
        let mut merged = MetricsCollector::new(3);
        merged.absorb(a);
        merged.absorb(b);
        let r = merged.finish(90.0);
        assert_eq!((r.arrivals, r.admitted, r.rejected), (2, 1, 1));
        assert_eq!(r.per_video_arrivals, vec![1, 0, 1]);
        assert_eq!(r.per_video_rejections, vec![0, 0, 1]);
        // offered 300 kbps·min, delivered 100 - 50 killed = 50.
        assert!((r.goodput - 50.0 / 300.0).abs() < 1e-12);
        assert!(r.is_conservative());
    }

    #[test]
    fn goodput_defaults_to_one_when_nothing_offered() {
        let r = MetricsCollector::new(1).finish(90.0);
        assert_eq!(r.goodput, 1.0);
        assert_eq!(r.wait_p50_min, 0.0);
    }

    #[test]
    fn legacy_report_json_deserializes_with_defaults() {
        // Pre-pipeline reports carry none of the admission fields.
        let json = r#"{"arrivals":1,"admitted":1,"rejected":0,"redirected":0,
            "disrupted":0,"resumed":0,"degraded":0,"repair_bytes_copied":0,
            "repair_copies":0,"time_to_redundancy_min":0.0,
            "redundancy_deficit_video_min":0.0,"unavailability_video_min":0.0,
            "rejection_rate":0.0,"mean_imbalance_cv":0.0,
            "mean_imbalance_maxdev_rel":0.0,"mean_imbalance_maxdev_streams":0.0,
            "peak_concurrent_streams":1,"mean_concurrent_streams":0.5,
            "per_video_arrivals":[1],"per_video_rejections":[0],"series":[]}"#;
        let r: SimReport = serde_json::from_str(json).unwrap();
        assert_eq!(
            (r.queued, r.retried, r.abandoned, r.degraded_served),
            (0, 0, 0, 0)
        );
        assert_eq!(r.goodput, 0.0); // serde default; field is new
        assert!(r.is_conservative());
    }

    #[test]
    fn series_recorded_only_when_enabled() {
        let mut off = MetricsCollector::new(1);
        off.sample_loads(&[1.0, 2.0], 1.0);
        assert!(off.finish(90.0).series.is_empty());

        let mut on = MetricsCollector::new(1);
        on.record_series(true);
        on.sample_loads(&[1.0, 2.0], 1.0);
        on.sample_loads(&[3.0, 0.0], 2.0);
        let r = on.finish(90.0);
        assert_eq!(r.series.len(), 2);
        assert_eq!(r.series[0].streams, vec![1.0, 2.0]);
        assert_eq!(r.series[1].at_min, 2.0);
    }

    #[test]
    fn disruption_counter_accumulates() {
        let mut c = MetricsCollector::new(1);
        c.on_disrupted(3);
        c.on_disrupted(2);
        assert_eq!(c.finish(90.0).disrupted, 5);
    }

    #[test]
    fn imbalance_averaged_over_busy_samples() {
        let mut c = MetricsCollector::new(1);
        c.sample_loads(&[0.0, 0.0], 0.0); // idle: skipped
        c.sample_loads(&[2.0, 4.0, 6.0], 1.0);
        c.sample_loads(&[4.0, 4.0, 4.0], 2.0);
        let r = c.finish(90.0);
        let cv1 = (8.0f64 / 3.0).sqrt() / 4.0;
        assert!((r.mean_imbalance_cv - cv1 / 2.0).abs() < 1e-12);
        // maxdev_rel sample 1: (6-4)/4 = 0.5; sample 2: 0.
        assert!((r.mean_imbalance_maxdev_rel - 0.25).abs() < 1e-12);
    }

    #[test]
    fn absolute_maxdev_includes_idle_samples() {
        let mut c = MetricsCollector::new(1);
        c.sample_loads(&[0.0, 0.0], 0.0); // idle: counts as 0 deviation
        c.sample_loads(&[2.0, 6.0], 1.0); // maxdev = 2 (mean 4)
        let r = c.finish(90.0);
        assert!((r.mean_imbalance_maxdev_streams - 1.0).abs() < 1e-12);
    }

    #[test]
    fn peak_and_mean_streams() {
        let mut c = MetricsCollector::new(1);
        c.sample_loads(&[1.0, 1.0], 1.0);
        c.sample_loads(&[5.0, 5.0], 2.0);
        c.sample_loads(&[0.0, 0.0], 3.0);
        let r = c.finish(3.0);
        assert_eq!(r.peak_concurrent_streams, 10);
        // Integral: 2*1 (0->1 with load 2) + 10*1 + 0*1 = 12; /3 = 4.
        assert!((r.mean_concurrent_streams - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let c = MetricsCollector::new(1);
        let r = c.finish(90.0);
        assert_eq!(r.rejection_rate, 0.0);
        assert_eq!(r.mean_imbalance_cv, 0.0);
        assert!(r.is_conservative());
    }
}
