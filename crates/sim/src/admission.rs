//! Overload admission pipeline: wait queue, patience, retries, backoff.
//!
//! The paper's admission control is pure loss — a request either gets a
//! slot on some replica holder or is rejected on the spot (the Eq. (1)
//! blocking model). Real VoD front-ends are *delay* systems: requests
//! wait in a queue, clients hang up after a patience interval, player
//! software retries with backoff, and a session may start at a thinner
//! encoding when only a partial slot exists. This module supplies that
//! machinery behind a [`QueuePolicy`] knob whose default,
//! [`QueuePolicy::Block`], reproduces the paper's loss behavior exactly
//! (regression-tested byte-for-byte).
//!
//! Determinism: client patience is drawn from a seeded per-run RNG in
//! arrival order, and retry jitter is a pure hash of the request's queue
//! sequence number — identical `(params, seed)` always replays the same
//! run. No wall clock is consulted anywhere.

use crate::time::SimTime;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use vod_model::{ModelError, VideoId};

/// What happens when no replica holder can admit a request at its full
/// bit rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum QueuePolicy {
    /// Reject immediately — the paper's loss model (default).
    #[default]
    Block,
    /// Join a FIFO wait queue; the client abandons after a patience
    /// interval drawn with mean `patience_min` minutes (exponential).
    Queue {
        /// Mean client patience, minutes. `0` degenerates to [`Self::Block`].
        patience_min: f64,
    },
    /// Like `Queue`, but each admission attempt also walks down
    /// [`vod_model::BitRate::LADDER`]: if only a thinner slot exists
    /// *right now*, the session starts degraded instead of waiting.
    QueueOrDegrade {
        /// Mean client patience, minutes. `0` still degrades, never queues.
        patience_min: f64,
    },
}

impl QueuePolicy {
    /// Mean patience in minutes (0 for `Block`).
    pub fn patience_min(&self) -> f64 {
        match self {
            QueuePolicy::Block => 0.0,
            QueuePolicy::Queue { patience_min } | QueuePolicy::QueueOrDegrade { patience_min } => {
                *patience_min
            }
        }
    }

    /// Whether admission attempts may step down the bit-rate ladder.
    pub fn degrades(&self) -> bool {
        matches!(self, QueuePolicy::QueueOrDegrade { .. })
    }
}

/// Admission-pipeline knobs. The default is fully passive: block on the
/// spot, no retries — byte-identical to the pre-pipeline engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Queueing/degradation policy.
    pub policy: QueuePolicy,
    /// How many times a blocked or abandoned request is retried before
    /// it counts as finally rejected/abandoned.
    pub max_retries: u32,
    /// Base retry backoff in minutes; attempt `k` waits
    /// `retry_backoff_min × 2^k` plus deterministic jitter.
    pub retry_backoff_min: f64,
    /// Seed for patience draws and retry jitter (independent of the
    /// workload and failure seeds).
    pub seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            policy: QueuePolicy::Block,
            max_retries: 0,
            retry_backoff_min: 0.5,
            seed: 0,
        }
    }
}

impl AdmissionConfig {
    /// Parameter validation with actionable messages: finite non-negative
    /// patience, positive finite backoff.
    pub fn validate(&self) -> Result<(), ModelError> {
        let p = self.policy.patience_min();
        if !p.is_finite() || p < 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "admission patience_min (must be finite and >= 0)",
                value: p,
            });
        }
        if !self.retry_backoff_min.is_finite() || self.retry_backoff_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "admission retry_backoff_min (must be finite and > 0)",
                value: self.retry_backoff_min,
            });
        }
        Ok(())
    }

    /// True when the pipeline can never touch a request — no queueing, no
    /// retries, no degradation — so a run is byte-identical to the
    /// pre-pipeline blocking engine.
    pub fn is_passive(&self) -> bool {
        self.max_retries == 0
            && match self.policy {
                QueuePolicy::Block => true,
                QueuePolicy::Queue { patience_min } => patience_min == 0.0,
                QueuePolicy::QueueOrDegrade { .. } => false,
            }
    }
}

/// A request the pipeline is still responsible for: waiting in the queue
/// or sleeping until its next retry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PendingRequest {
    pub video: VideoId,
    /// Requested (full) bit rate.
    pub kbps: u64,
    /// Playback duration at admission, seconds.
    pub duration_s: u64,
    /// Original arrival instant (wait time is measured from here).
    pub arrived: SimTime,
    /// Retries still in budget.
    pub retries_left: u32,
    /// 0 on first arrival; +1 per scheduled retry (drives backoff).
    pub attempt: u32,
}

/// FIFO wait queue + abandonment deadlines + retry timers. All state the
/// engine's event pump needs to treat "abandonment" and "retry" as two
/// additional deterministic event sources.
#[derive(Debug)]
pub(crate) struct AdmissionState {
    patience_min: f64,
    degrades: bool,
    queueing: bool,
    backoff_min: f64,
    jitter_seed: u64,
    patience_rng: ChaCha8Rng,
    /// seq → waiting request; iteration order (ascending seq) is FIFO.
    queue: BTreeMap<u64, PendingRequest>,
    /// (abandonment deadline, seq); entries may be stale (admitted
    /// meanwhile) and are skipped lazily.
    deadlines: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// (retry instant, seq) with payloads in `retry_map`.
    retry_heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    retry_map: BTreeMap<u64, PendingRequest>,
    next_seq: u64,
}

impl AdmissionState {
    pub fn new(cfg: &AdmissionConfig) -> Self {
        let patience_min = cfg.policy.patience_min();
        AdmissionState {
            patience_min,
            degrades: cfg.policy.degrades(),
            queueing: !matches!(cfg.policy, QueuePolicy::Block) && patience_min > 0.0,
            backoff_min: cfg.retry_backoff_min,
            jitter_seed: cfg.seed ^ 0x00A1_1CE5_5ED0_u64,
            patience_rng: ChaCha8Rng::seed_from_u64(
                cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.rotate_left(23),
            ),
            queue: BTreeMap::new(),
            deadlines: BinaryHeap::new(),
            retry_heap: BinaryHeap::new(),
            retry_map: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// Whether unserved requests wait (vs. retry/reject on the spot).
    pub fn queueing(&self) -> bool {
        self.queueing
    }

    /// Whether admission attempts step down the bit-rate ladder.
    pub fn degrades(&self) -> bool {
        self.degrades
    }

    /// Requests currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests the pipeline still owes an outcome.
    pub fn in_flight(&self) -> u64 {
        (self.queue.len() + self.retry_map.len()) as u64
    }

    /// Enqueues `req` with a freshly drawn abandonment deadline
    /// (exponential, mean = policy patience). Returns the deadline.
    pub fn enqueue(&mut self, now: SimTime, req: PendingRequest) -> SimTime {
        let u: f64 = self.patience_rng.gen();
        let patience = -self.patience_min * (1.0 - u).ln();
        let deadline = now + SimTime::from_min(patience.min(1e6));
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.insert(seq, req);
        self.deadlines.push(Reverse((deadline, seq)));
        deadline
    }

    /// Earliest live abandonment deadline (stale heap entries are
    /// discarded on the way). With nothing queued every heap entry is
    /// stale, so the hot path returns without popping them — they are
    /// discarded whenever a live deadline is next looked up.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        if self.queue.is_empty() {
            return None;
        }
        while let Some(Reverse((at, seq))) = self.deadlines.peek().copied() {
            if self.queue.contains_key(&seq) {
                return Some(at);
            }
            self.deadlines.pop();
        }
        None
    }

    /// Removes and returns the queued request whose deadline is earliest
    /// and `<= now`, if any.
    pub fn pop_expired(&mut self, now: SimTime) -> Option<PendingRequest> {
        let at = self.next_deadline()?;
        if at > now {
            return None;
        }
        let Reverse((_, seq)) = self.deadlines.pop()?;
        self.queue.remove(&seq)
    }

    /// Schedules a retry of `req` with exponential backoff plus
    /// deterministic jitter; the attempt counter has already been bumped
    /// by the caller. Returns the retry instant.
    pub fn schedule_retry(&mut self, now: SimTime, req: PendingRequest) -> SimTime {
        let seq = self.next_seq;
        self.next_seq += 1;
        // 2^k backoff, exponent capped so the delay stays finite; jitter
        // adds up to +25% from a pure hash of (seed, seq).
        let exp = req.attempt.saturating_sub(1).min(16);
        let base = self.backoff_min * f64::powi(2.0, exp as i32);
        let jitter = splitmix64(self.jitter_seed ^ seq) as f64 / u64::MAX as f64;
        let at = now + SimTime::from_min(base * (1.0 + 0.25 * jitter));
        self.retry_heap.push(Reverse((at, seq)));
        self.retry_map.insert(seq, req);
        at
    }

    /// Earliest pending retry instant.
    pub fn next_retry(&self) -> Option<SimTime> {
        self.retry_heap.peek().map(|Reverse((at, _))| *at)
    }

    /// Removes and returns the earliest retry due at or before `now`.
    pub fn pop_due_retry(&mut self, now: SimTime) -> Option<PendingRequest> {
        let Reverse((at, _)) = self.retry_heap.peek().copied()?;
        if at > now {
            return None;
        }
        let Reverse((_, seq)) = self.retry_heap.pop()?;
        self.retry_map.remove(&seq)
    }

    /// The waiting requests in FIFO order (test convenience; the engine
    /// drains through [`Self::fifo_seqs_into`]).
    #[cfg(test)]
    pub fn fifo_seqs(&self) -> Vec<u64> {
        self.queue.keys().copied().collect()
    }

    /// The waiting requests in FIFO order, into a reusable buffer
    /// (cleared first) — the engine's post-event drain path, so steady
    /// state allocates nothing.
    pub fn fifo_seqs_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.queue.keys().copied());
    }

    /// The waiting request with sequence number `seq`, if still queued.
    pub fn get(&self, seq: u64) -> Option<PendingRequest> {
        self.queue.get(&seq).copied()
    }

    /// Removes a waiting request (admitted via drain).
    pub fn remove(&mut self, seq: u64) {
        self.queue.remove(&seq);
    }

    /// Drains every request the pipeline still owns (end-of-run flush).
    pub fn drain_remaining(&mut self) -> Vec<PendingRequest> {
        let mut out: Vec<PendingRequest> = std::mem::take(&mut self.queue).into_values().collect();
        out.extend(std::mem::take(&mut self.retry_map).into_values());
        self.deadlines.clear();
        self.retry_heap.clear();
        out
    }
}

/// SplitMix64 — a tiny, well-mixed pure hash for retry jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrived_min: f64) -> PendingRequest {
        PendingRequest {
            video: VideoId(0),
            kbps: 4_000,
            duration_s: 600,
            arrived: SimTime::from_min(arrived_min),
            retries_left: 2,
            attempt: 0,
        }
    }

    fn cfg(policy: QueuePolicy) -> AdmissionConfig {
        AdmissionConfig {
            policy,
            max_retries: 2,
            retry_backoff_min: 0.5,
            seed: 7,
        }
    }

    #[test]
    fn default_config_is_passive_and_valid() {
        let c = AdmissionConfig::default();
        assert!(c.is_passive());
        c.validate().unwrap();
    }

    #[test]
    fn zero_patience_queue_is_passive_but_degrade_is_not() {
        let mut c = AdmissionConfig {
            policy: QueuePolicy::Queue { patience_min: 0.0 },
            ..AdmissionConfig::default()
        };
        assert!(c.is_passive());
        c.policy = QueuePolicy::QueueOrDegrade { patience_min: 0.0 };
        assert!(!c.is_passive(), "degrade-at-admission still acts");
        c.policy = QueuePolicy::Block;
        c.max_retries = 1;
        assert!(!c.is_passive(), "retries act even under Block");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let bad_patience = AdmissionConfig {
            policy: QueuePolicy::Queue { patience_min: -1.0 },
            ..AdmissionConfig::default()
        };
        assert!(bad_patience.validate().is_err());
        let bad_backoff = AdmissionConfig {
            retry_backoff_min: 0.0,
            ..AdmissionConfig::default()
        };
        assert!(bad_backoff.validate().is_err());
        let nan_patience = AdmissionConfig {
            policy: QueuePolicy::QueueOrDegrade {
                patience_min: f64::NAN,
            },
            ..AdmissionConfig::default()
        };
        assert!(nan_patience.validate().is_err());
    }

    #[test]
    fn fifo_order_and_lazy_deadlines() {
        let mut s = AdmissionState::new(&cfg(QueuePolicy::Queue { patience_min: 5.0 }));
        assert!(s.queueing());
        let now = SimTime::from_min(1.0);
        let d0 = s.enqueue(now, req(1.0));
        let d1 = s.enqueue(now, req(1.0));
        assert!(d0 > now && d1 > now);
        assert_eq!(s.fifo_seqs(), vec![0, 1]);
        // Admitting the head makes its deadline entry stale: only seq 1's
        // deadline remains live.
        s.remove(0);
        assert_eq!(s.next_deadline(), Some(d1));
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn pop_expired_respects_now() {
        let mut s = AdmissionState::new(&cfg(QueuePolicy::Queue { patience_min: 1.0 }));
        let deadline = s.enqueue(SimTime::ZERO, req(0.0));
        assert!(s.pop_expired(deadline - SimTime(1)).is_none());
        let popped = s.pop_expired(deadline).unwrap();
        assert_eq!(popped.arrived, SimTime::ZERO);
        assert_eq!(s.queue_len(), 0);
        assert!(s.next_deadline().is_none());
    }

    #[test]
    fn retry_backoff_grows_and_jitter_is_deterministic() {
        let mk = || AdmissionState::new(&cfg(QueuePolicy::Block));
        let mut a = mk();
        let mut b = mk();
        let now = SimTime::ZERO;
        let r1 = PendingRequest {
            attempt: 1,
            ..req(0.0)
        };
        let r3 = PendingRequest {
            attempt: 3,
            ..req(0.0)
        };
        let t1a = a.schedule_retry(now, r1);
        let t1b = b.schedule_retry(now, r1);
        assert_eq!(t1a, t1b, "jitter must be deterministic");
        let t3 = a.schedule_retry(now, r3);
        // Attempt 3 backs off 4x the base: strictly later even with
        // maximal jitter on attempt 1 (1.25 × base < 4 × base).
        assert!(t3 > t1a);
        assert_eq!(a.retry_map.len(), 2);
        assert_eq!(a.pop_due_retry(t1a).unwrap().attempt, 1);
        assert!(a.pop_due_retry(t1a).is_none(), "t3 not due yet");
    }

    #[test]
    fn drain_remaining_flushes_everything() {
        let mut s = AdmissionState::new(&cfg(QueuePolicy::Queue { patience_min: 9.0 }));
        s.enqueue(SimTime::ZERO, req(0.0));
        s.schedule_retry(SimTime::ZERO, req(0.5));
        let rest = s.drain_remaining();
        assert_eq!(rest.len(), 2);
        assert_eq!(s.in_flight(), 0);
        assert!(s.next_deadline().is_none());
        assert!(s.next_retry().is_none());
    }

    #[test]
    fn patience_draws_are_seeded() {
        let mut a = AdmissionState::new(&cfg(QueuePolicy::Queue { patience_min: 2.0 }));
        let mut b = AdmissionState::new(&cfg(QueuePolicy::Queue { patience_min: 2.0 }));
        for k in 0..10 {
            let now = SimTime::from_min(k as f64);
            assert_eq!(a.enqueue(now, req(0.0)), b.enqueue(now, req(0.0)));
        }
    }
}
