//! Discrete-event simulator of a distributed-storage VoD cluster.
//!
//! Reproduces the evaluation substrate of Zhou & Xu (ICPP 2002), Sec. 5:
//! requests arrive by a Poisson process during a 90-minute peak period,
//! each picks a video by Zipf-like popularity, the dispatcher routes it to
//! a replica of that video under a *static round-robin scheduling policy*,
//! and "a request was rejected if required communication bandwidth was
//! unavailable". An admitted stream occupies the video's bit rate on the
//! serving server's outgoing link for the full video duration.
//!
//! Modules:
//!
//! * [`time`] — integer millisecond simulation time (total order, no float
//!   comparisons on the event queue);
//! * [`event`] — the departure event queue (arrivals replay in trace
//!   order, so only departures need a heap);
//! * [`server`] — per-server outgoing-link occupancy;
//! * [`dispatch`] — admission policies: the paper's strict static
//!   round-robin, plus least-loaded-replica, round-robin failover, and the
//!   backbone-redirection extension of the authors' follow-up work \[19\];
//! * [`admission`] — the overload pipeline: FIFO wait queue with client
//!   patience, bounded retries with backoff, degrade-at-admission;
//! * [`failure`] — injected server outages (availability experiments),
//!   the stochastic MTBF/MTTR fault model (recovery experiments), and
//!   partial bandwidth brownouts;
//! * [`repair`] — mid-run re-replication of lost redundancy and the
//!   stream-failover policies (resume / graceful degradation); the
//!   shared actuation mechanism (metered copies, storage reservations,
//!   surplus retirement) lives in the private `actuation` module;
//! * [`controller`] — the online replication controller: EWMA sensing of
//!   observed per-video demand, hysteresis hot/cold classification, and
//!   periodic re-replication/retirement of drifting titles;
//! * [`striping`] — the wide-striping comparator architecture the paper
//!   argues against (perfect balance, full failure coupling);
//! * [`metrics`] — rejection accounting and load-imbalance sampling;
//! * [`shard`] — deterministic partitioning of servers into independent
//!   groups for the parallel engine;
//! * [`engine`] — the run loop tying it together.
//!
//! The serial run loop is allocation-free on the hot path. Setting
//! [`SimConfig::shards`] above 1 opts into the sharded engine: when the
//! layout decomposes into independent server groups (and no coupling
//! features are active) each group runs on its own thread and the
//! per-shard results are merged deterministically; otherwise the serial
//! loop runs with a sharded event queue whose `(time, seq)` merge order
//! is identical to the single-queue order. Either way, reports are
//! byte-identical to a `shards: 1` run. Above that, the experiment
//! runner still fans out independent replications across threads.
//!
//! ```
//! use vod_model::{BitRate, Catalog, ClusterSpec, Layout, ServerId, ServerSpec};
//! use vod_sim::{SimConfig, Simulation};
//! use vod_workload::{Request, Trace};
//! use vod_model::VideoId;
//!
//! // One 10-minute video on a 1-stream server: the second concurrent
//! // request is rejected, the third (after the first ends) admitted.
//! let catalog = Catalog::fixed_rate(1, BitRate::MPEG2, 600).unwrap();
//! let cluster = ClusterSpec::homogeneous(1, ServerSpec {
//!     storage_bytes: u64::MAX,
//!     bandwidth_kbps: 4_000,
//! }).unwrap();
//! let layout = Layout::new(1, vec![vec![ServerId(0)]]).unwrap();
//! let trace = Trace::new(vec![
//!     Request { arrival_min: 0.0, video: VideoId(0) },
//!     Request { arrival_min: 5.0, video: VideoId(0) },
//!     Request { arrival_min: 10.0, video: VideoId(0) },
//! ]).unwrap();
//!
//! let sim = Simulation::new(&catalog, &cluster, &layout, SimConfig::default()).unwrap();
//! let report = sim.run(&trace).unwrap();
//! assert_eq!((report.admitted, report.rejected), (2, 1));
//! assert!(report.is_conservative());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod actuation;
pub mod admission;
mod audit;
pub mod controller;
pub mod dispatch;
pub mod engine;
pub mod event;
pub mod failure;
pub mod metrics;
pub mod repair;
pub mod server;
pub mod shard;
pub mod striping;
pub mod time;

pub use admission::{AdmissionConfig, QueuePolicy};
pub use controller::ControllerConfig;
pub use dispatch::AdmissionPolicy;
pub use engine::{SimConfig, Simulation, WindowConfig};
pub use failure::{Brownout, BrownoutModel, FailureModel, FailurePlan, Outage, RackFailures};
pub use metrics::SimReport;
pub use repair::{FailoverPolicy, RepairConfig};
pub use shard::ShardPlan;
pub use striping::{StripedConfig, StripedSimulation};
pub use time::SimTime;
