//! Wide-striping comparator — the architecture the paper argues against.
//!
//! "There are cluster architectures for VoD servers: shared storage and
//! distributed storage … wide data striping can induce high scheduling
//! and extension overhead \[4, 12\] … As the number of disks increases,
//! so do the controlling overhead and the probability of a failure"
//! (paper, Secs. 1–2, citing Chou et al., "Striping doesn't scale").
//!
//! This module models the contrast at the same abstraction level as the
//! replication simulator: every video is striped across **all** servers,
//! so each admitted stream draws `b/N` from every server's outgoing link
//! simultaneously, inflated by a configurable per-stream coordination
//! overhead. Balance is perfect by construction — the architecture's
//! genuine strength — but the coupling has two costs the experiments
//! expose:
//!
//! * **overhead** — the effective per-stream bandwidth is
//!   `b · (1 + overhead)`, so peak throughput is strictly below the
//!   replicated cluster's;
//! * **failure coupling** — a single server failure interrupts *every*
//!   active stream (each needs all stripes) and halts admission until
//!   recovery, where the replicated cluster degrades by ~1/N.

use crate::failure::{FailurePlan, TransitionKind};
use crate::metrics::{MetricsCollector, SimReport};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vod_model::{Catalog, ClusterSpec, ModelError};
use vod_telemetry::Telemetry;
use vod_workload::Trace;

/// Configuration of the striped-cluster simulation.
#[derive(Debug, Clone)]
pub struct StripedConfig {
    /// Fractional per-stream bandwidth overhead of stripe coordination
    /// (0.1 = 10%; the "high scheduling and extension overhead" of wide
    /// striping). Must be ≥ 0 and finite.
    pub overhead: f64,
    /// Peak-period length in minutes.
    pub horizon_min: f64,
    /// Load-sampling cadence in minutes.
    pub sample_interval_min: f64,
    /// Injected outages; any down server blocks all admissions and kills
    /// all active streams (full coupling).
    pub failures: FailurePlan,
}

impl Default for StripedConfig {
    fn default() -> Self {
        StripedConfig {
            overhead: 0.1,
            horizon_min: 90.0,
            sample_interval_min: 1.0,
            failures: FailurePlan::none(),
        }
    }
}

/// Simulation of a wide-striped (shared-storage-style) cluster.
#[derive(Debug, Clone)]
pub struct StripedSimulation<'a> {
    catalog: &'a Catalog,
    cluster: &'a ClusterSpec,
    config: StripedConfig,
}

impl<'a> StripedSimulation<'a> {
    /// Binds and validates. Striping has no placement step (every server
    /// holds every stripe), so only the cluster-wide storage total must
    /// fit one copy of the catalog.
    pub fn new(
        catalog: &'a Catalog,
        cluster: &'a ClusterSpec,
        config: StripedConfig,
    ) -> Result<Self, ModelError> {
        if !config.overhead.is_finite() || config.overhead < 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "overhead",
                value: config.overhead,
            });
        }
        if !config.horizon_min.is_finite() || config.horizon_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "horizon_min",
                value: config.horizon_min,
            });
        }
        if !config.sample_interval_min.is_finite() || config.sample_interval_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "sample_interval_min",
                value: config.sample_interval_min,
            });
        }
        config.failures.validate_servers(cluster.len())?;
        let single_copy = catalog.single_copy_storage_bytes();
        let total = cluster.total_storage_bytes();
        if single_copy > total {
            return Err(ModelError::InsufficientStorage {
                required: single_copy,
                capacity: total,
            });
        }
        Ok(StripedSimulation {
            catalog,
            cluster,
            config,
        })
    }

    /// [`StripedSimulation::run`], recording the run's `sim.*`
    /// instruments into `telemetry`. The striped replay has no per-event
    /// dispatch to hook, so the counters are derived from the final
    /// report; the `sim.run` span still times the whole replay.
    pub fn run_with_telemetry(
        &self,
        trace: &Trace,
        telemetry: &Telemetry,
    ) -> Result<SimReport, ModelError> {
        let span = telemetry.span("sim.run");
        let report = self.run(trace)?;
        drop(span);
        telemetry.counter("sim.arrivals").add(report.arrivals);
        telemetry.counter("sim.admitted").add(report.admitted);
        telemetry.counter("sim.rejected").add(report.rejected);
        telemetry.counter("sim.disrupted").add(report.disrupted);
        Ok(report)
    }

    /// Replays `trace`. The binding constraint is the *most loaded link*;
    /// since every stream loads all links identically, that is simply the
    /// smallest per-server bandwidth.
    pub fn run(&self, trace: &Trace) -> Result<SimReport, ModelError> {
        let n = self.cluster.len() as f64;
        // Admission limit: each stream consumes b(1+ovh)/N per link; the
        // weakest link caps the concurrent aggregate.
        let min_link_kbps = self
            .cluster
            .servers()
            .iter()
            .map(|s| s.bandwidth_kbps)
            .min()
            .expect("non-empty cluster") as f64;

        let mut metrics = MetricsCollector::new(self.catalog.len());
        // (end_time, epoch, per-link kbps) per active stream.
        let mut departures: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut used_per_link_kbps = 0.0f64; // identical on every link
        let mut epoch = 0u32;
        let mut down_servers = 0usize;

        let transitions = self.config.failures.transitions();
        let mut next_transition = 0usize;
        let sample_step = self.config.sample_interval_min;
        let mut next_sample_min = 0.0f64;
        let horizon = self.config.horizon_min;
        let mut active = 0u32;
        // Stale-epoch bookkeeping: streams killed by a failure leave
        // their departures in the heap; a mismatched epoch marks them.
        let mut epoch_of: Vec<u32> = Vec::new();

        let process_until = |t: SimTime,
                             metrics: &mut MetricsCollector,
                             departures: &mut BinaryHeap<Reverse<(SimTime, u64, u64)>>,
                             used: &mut f64,
                             active: &mut u32,
                             epoch: &mut u32,
                             down: &mut usize,
                             next_transition: &mut usize,
                             next_sample_min: &mut f64,
                             epoch_of: &mut Vec<u32>| {
            loop {
                let dep_at = departures.peek().map(|Reverse((at, _, _))| *at);
                let tr_at = transitions.get(*next_transition).map(|x| x.at);
                let sample_at = if *next_sample_min <= horizon {
                    Some(SimTime::from_min(*next_sample_min))
                } else {
                    None
                };
                let Some(min_at) = [dep_at, tr_at, sample_at].iter().flatten().min().copied()
                else {
                    break;
                };
                if min_at > t {
                    break;
                }
                if dep_at == Some(min_at) {
                    let Reverse((_, id, kbps_milli)) = departures.pop().expect("peeked");
                    if epoch_of[id as usize] == *epoch {
                        *used -= kbps_milli as f64 / 1_000.0;
                        *active -= 1;
                    }
                } else if tr_at == Some(min_at) {
                    let tr = transitions[*next_transition];
                    *next_transition += 1;
                    match tr.kind {
                        TransitionKind::Up => {
                            *down = down.saturating_sub(1);
                        }
                        TransitionKind::Down => {
                            // Full coupling: every active stream dies.
                            metrics.on_disrupted(*active as u64);
                            *active = 0;
                            *used = 0.0;
                            *epoch += 1;
                            *down += 1;
                        }
                        // The comparator models full failures only;
                        // partial bandwidth degradation of one member is
                        // outside its (deliberately pessimal) scope.
                        TransitionKind::BrownoutStart(_) | TransitionKind::BrownoutEnd => {}
                    }
                } else {
                    // Perfect balance: every link carries the same load.
                    let per_link = *active as f64 / n;
                    let loads = vec![per_link; self.cluster.len()];
                    metrics.sample_loads(&loads, *next_sample_min);
                    *next_sample_min += sample_step;
                }
            }
        };

        for req in trace.requests() {
            let t = SimTime::from_min(req.arrival_min);
            process_until(
                t,
                &mut metrics,
                &mut departures,
                &mut used_per_link_kbps,
                &mut active,
                &mut epoch,
                &mut down_servers,
                &mut next_transition,
                &mut next_sample_min,
                &mut epoch_of,
            );

            let video = self
                .catalog
                .get(req.video)
                .ok_or(ModelError::UnknownVideo(req.video))?;
            let per_link_kbps = video.bitrate.kbps() as f64 * (1.0 + self.config.overhead) / n;

            metrics.on_arrival(req.video.index());
            if down_servers == 0 && used_per_link_kbps + per_link_kbps <= min_link_kbps + 1e-9 {
                used_per_link_kbps += per_link_kbps;
                active += 1;
                epoch_of.push(epoch);
                departures.push(Reverse((
                    t + SimTime::from_secs(video.duration_s),
                    seq,
                    (per_link_kbps * 1_000.0).round() as u64,
                )));
                seq += 1;
                metrics.on_admit(false);
            } else {
                metrics.on_reject(req.video.index());
            }
        }

        process_until(
            SimTime::from_min(horizon),
            &mut metrics,
            &mut departures,
            &mut used_per_link_kbps,
            &mut active,
            &mut epoch,
            &mut down_servers,
            &mut next_transition,
            &mut next_sample_min,
            &mut epoch_of,
        );

        Ok(metrics.finish(horizon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::Outage;
    use vod_model::{BitRate, ServerId, ServerSpec, VideoId};
    use vod_workload::Request;

    fn world() -> (Catalog, ClusterSpec) {
        let catalog = Catalog::fixed_rate(4, BitRate::MPEG2, 600).unwrap(); // 10-min videos
        let cluster = ClusterSpec::homogeneous(
            4,
            ServerSpec {
                storage_bytes: 16 * BitRate::MPEG2.storage_bytes(600),
                bandwidth_kbps: 4_400, // ~4 aggregate streams at 10% overhead
            },
        )
        .unwrap();
        (catalog, cluster)
    }

    fn req(min: f64, v: u32) -> Request {
        Request {
            arrival_min: min,
            video: VideoId(v),
        }
    }

    #[test]
    fn aggregate_capacity_gates_admission() {
        // Per-stream per-link: 4000*1.1/4 = 1100 kbps; link 4400 kbps
        // admits exactly 4 concurrent streams cluster-wide.
        let (catalog, cluster) = world();
        let sim = StripedSimulation::new(&catalog, &cluster, StripedConfig::default()).unwrap();
        let reqs: Vec<Request> = (0..6).map(|k| req(k as f64 * 0.5, k % 4)).collect();
        let r = sim.run(&Trace::new(reqs).unwrap()).unwrap();
        assert_eq!(r.admitted, 4);
        assert_eq!(r.rejected, 2);
        assert!(r.is_conservative());
    }

    #[test]
    fn zero_overhead_admits_more() {
        let (catalog, cluster) = world();
        let cfg = StripedConfig {
            overhead: 0.0,
            ..StripedConfig::default()
        };
        let sim = StripedSimulation::new(&catalog, &cluster, cfg).unwrap();
        // 4000/4 = 1000 per link; 4400 admits 4 (floor) — with 10%
        // overhead only 4 as well; use 5 requests and a tighter link to
        // see the difference.
        let reqs: Vec<Request> = (0..5).map(|k| req(k as f64 * 0.5, k % 4)).collect();
        let r = sim.run(&Trace::new(reqs).unwrap()).unwrap();
        assert_eq!(r.admitted, 4); // 4.4 floor
        let cfg_heavy = StripedConfig {
            overhead: 0.5,
            ..StripedConfig::default()
        };
        let sim_heavy = StripedSimulation::new(&catalog, &cluster, cfg_heavy).unwrap();
        let reqs: Vec<Request> = (0..5).map(|k| req(k as f64 * 0.5, k % 4)).collect();
        let r_heavy = sim_heavy.run(&Trace::new(reqs).unwrap()).unwrap();
        assert!(r_heavy.admitted < r.admitted);
    }

    #[test]
    fn perfect_balance_by_construction() {
        let (catalog, cluster) = world();
        let sim = StripedSimulation::new(&catalog, &cluster, StripedConfig::default()).unwrap();
        let reqs: Vec<Request> = (0..4).map(|k| req(k as f64, k)).collect();
        let r = sim.run(&Trace::new(reqs).unwrap()).unwrap();
        assert!(r.mean_imbalance_cv < 1e-12);
        assert!(r.mean_imbalance_maxdev_streams < 1e-12);
    }

    #[test]
    fn single_failure_kills_everything() {
        let (catalog, cluster) = world();
        let cfg = StripedConfig {
            failures: FailurePlan::new(vec![Outage {
                server: ServerId(2),
                down_at_min: 2.0,
                up_at_min: Some(5.0),
            }])
            .unwrap(),
            ..StripedConfig::default()
        };
        let sim = StripedSimulation::new(&catalog, &cluster, cfg).unwrap();
        // 3 streams start before the failure; all die at t=2; requests
        // during the outage are rejected; after recovery admission works.
        let reqs = vec![
            req(0.0, 0),
            req(0.5, 1),
            req(1.0, 2),
            req(3.0, 3),
            req(6.0, 0),
        ];
        let r = sim.run(&Trace::new(reqs).unwrap()).unwrap();
        assert_eq!(r.disrupted, 3);
        assert_eq!(r.rejected, 1); // t=3.0 during outage
        assert_eq!(r.admitted, 4);
        assert!(r.is_conservative());
    }

    #[test]
    fn storage_must_fit_one_catalog_copy() {
        let catalog = Catalog::fixed_rate(4, BitRate::MPEG2, 600).unwrap();
        let tiny = ClusterSpec::homogeneous(
            4,
            ServerSpec {
                storage_bytes: 1,
                bandwidth_kbps: 10_000,
            },
        )
        .unwrap();
        assert!(matches!(
            StripedSimulation::new(&catalog, &tiny, StripedConfig::default()),
            Err(ModelError::InsufficientStorage { .. })
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let (catalog, cluster) = world();
        let bad = StripedConfig {
            overhead: -0.1,
            ..StripedConfig::default()
        };
        assert!(StripedSimulation::new(&catalog, &cluster, bad).is_err());
        let bad = StripedConfig {
            horizon_min: 0.0,
            ..StripedConfig::default()
        };
        assert!(StripedSimulation::new(&catalog, &cluster, bad).is_err());
    }
}
