//! JSONL run manifests: one self-describing record per run, capturing
//! seeds, parameters, per-phase wall times, throughput, and the final
//! counter snapshot. Records append to a file one JSON object per line,
//! so manifests from many runs (or many processes) concatenate cleanly.

use crate::Snapshot;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Wall time spent in one named phase of a run.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseTiming {
    /// Phase name (e.g. `"plan"`, `"simulate"`, `"aggregate"`).
    pub name: String,
    /// Wall-clock seconds spent in the phase.
    pub wall_secs: f64,
}

/// One manifest record: everything needed to identify, reproduce, and
/// performance-compare a run.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunRecord {
    /// What ran (e.g. `"fig3"`, `"perf_smoke"`).
    pub experiment: String,
    /// Base RNG seed the run derives all randomness from.
    pub seed: u64,
    /// Numeric run parameters (catalog size, servers, lambda, ...).
    pub params: BTreeMap<String, f64>,
    /// Per-phase wall times, in execution order.
    pub phases: Vec<PhaseTiming>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// Derived rates (e.g. `"events_per_sec"`, `"requests_per_sec"`).
    pub throughput: BTreeMap<String, f64>,
    /// Total wall-clock seconds for the run.
    pub wall_secs: f64,
}

impl RunRecord {
    /// A record for `experiment` seeded with `seed`; fill in the rest
    /// with the builder-style methods.
    pub fn new(experiment: impl Into<String>, seed: u64) -> Self {
        RunRecord {
            experiment: experiment.into(),
            seed,
            ..RunRecord::default()
        }
    }

    /// Sets one numeric parameter.
    pub fn param(mut self, name: impl Into<String>, value: f64) -> Self {
        self.params.insert(name.into(), value);
        self
    }

    /// Appends a phase timing.
    pub fn phase(mut self, name: impl Into<String>, wall_secs: f64) -> Self {
        self.phases.push(PhaseTiming {
            name: name.into(),
            wall_secs,
        });
        self
    }

    /// Sets one derived rate.
    pub fn rate(mut self, name: impl Into<String>, value: f64) -> Self {
        self.throughput.insert(name.into(), value);
        self
    }

    /// Sets the total wall time.
    pub fn wall(mut self, wall_secs: f64) -> Self {
        self.wall_secs = wall_secs;
        self
    }

    /// Copies counters from a snapshot, and turns its span histograms
    /// into phase timings (total seconds per span, appended in name
    /// order after any explicit phases). Histograms named `*_per_sec`
    /// hold observed rates, histograms named `*_min` hold
    /// simulated-time integrals (e.g. `sim.repair.time_to_redundancy_min`),
    /// and histograms named `*_pctl` hold per-request distributions
    /// reported as percentiles (e.g. `sim.admission.wait_min_pctl`);
    /// none is wall time, so all three are skipped.
    pub fn with_snapshot(mut self, snapshot: &Snapshot) -> Self {
        self.counters
            .extend(snapshot.counters.iter().map(|(name, &v)| (name.clone(), v)));
        for (name, stats) in &snapshot.histograms {
            if name.ends_with("_per_sec") || name.ends_with("_min") || name.ends_with("_pctl") {
                continue;
            }
            self.phases.push(PhaseTiming {
                name: name.clone(),
                wall_secs: stats.sum,
            });
        }
        self
    }
}

/// Appends [`RunRecord`]s to a file as JSON Lines.
#[derive(Debug)]
pub struct ManifestWriter {
    file: std::fs::File,
}

impl ManifestWriter {
    /// Opens `path` for appending (creating it and missing parent
    /// directories as needed).
    pub fn append_to(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(ManifestWriter { file })
    }

    /// Truncates `path` and opens it for writing (fresh manifest).
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(ManifestWriter { file })
    }

    /// Writes one record as a single JSON line and flushes.
    pub fn write(&mut self, record: &RunRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(self.file, "{line}")?;
        self.file.flush()
    }
}

/// Parses a JSONL manifest back into records, skipping blank lines.
pub fn read_manifest(path: impl AsRef<Path>) -> std::io::Result<Vec<RunRecord>> {
    let contents = std::fs::read_to_string(path)?;
    contents
        .lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            serde_json::from_str(line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vod-telemetry-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn record_builder_fills_fields() {
        let record = RunRecord::new("fig3", 42)
            .param("m", 200.0)
            .param("lambda", 40.0)
            .phase("plan", 0.5)
            .rate("events_per_sec", 1e6)
            .wall(1.25);
        assert_eq!(record.experiment, "fig3");
        assert_eq!(record.seed, 42);
        assert_eq!(record.params["m"], 200.0);
        assert_eq!(record.phases.len(), 1);
        assert_eq!(record.throughput["events_per_sec"], 1e6);
        assert_eq!(record.wall_secs, 1.25);
    }

    #[test]
    fn snapshot_merges_counters_and_spans() {
        let telemetry = Telemetry::enabled();
        telemetry.counter("sim.arrivals").add(10);
        drop(telemetry.span("sim.run"));
        telemetry.histogram("sim.events_per_sec").observe(1e6);
        let record = RunRecord::new("x", 1).with_snapshot(&telemetry.snapshot());
        assert_eq!(record.counters["sim.arrivals"], 10);
        assert!(record.phases.iter().any(|p| p.name == "sim.run"));
        // Rate histograms are not wall time; they must not become phases.
        assert!(!record.phases.iter().any(|p| p.name.ends_with("_per_sec")));
    }

    #[test]
    fn simulated_time_histograms_do_not_become_phases() {
        let telemetry = Telemetry::enabled();
        drop(telemetry.span("sim.run"));
        // Simulated minutes, not wall seconds.
        telemetry
            .histogram("sim.repair.time_to_redundancy_min")
            .observe(42.0);
        let record = RunRecord::new("x", 1).with_snapshot(&telemetry.snapshot());
        assert!(record.phases.iter().any(|p| p.name == "sim.run"));
        assert!(!record.phases.iter().any(|p| p.name.ends_with("_min")));
    }

    #[test]
    fn percentile_histograms_do_not_become_phases() {
        let telemetry = Telemetry::enabled();
        drop(telemetry.span("sim.run"));
        // Per-request wait-time distribution in simulated minutes.
        telemetry
            .histogram("sim.admission.wait_min_pctl")
            .observe(1.5);
        let record = RunRecord::new("x", 1).with_snapshot(&telemetry.snapshot());
        assert!(record.phases.iter().any(|p| p.name == "sim.run"));
        assert!(!record.phases.iter().any(|p| p.name.ends_with("_pctl")));
    }

    #[test]
    fn jsonl_round_trips() {
        let path = temp_path("roundtrip.jsonl");
        let a = RunRecord::new("fig1", 7).param("m", 100.0).wall(0.25);
        let b = RunRecord::new("fig2", 8)
            .phase("plan", 0.125)
            .rate("requests_per_sec", 1234.5);
        {
            let mut writer = ManifestWriter::create(&path).unwrap();
            writer.write(&a).unwrap();
            writer.write(&b).unwrap();
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 2);
        for line in contents.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        let records = read_manifest(&path).unwrap();
        assert_eq!(records, vec![a, b]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_mode_accumulates() {
        let path = temp_path("append.jsonl");
        std::fs::remove_file(&path).ok();
        for seed in 0..3 {
            let mut writer = ManifestWriter::append_to(&path).unwrap();
            writer.write(&RunRecord::new("run", seed)).unwrap();
        }
        let records = read_manifest(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].seed, 2);
        std::fs::remove_file(&path).ok();
    }
}
