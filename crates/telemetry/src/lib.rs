//! Lightweight run telemetry for the VoD reproduction.
//!
//! Three instruments, all handed out by a [`Telemetry`] handle:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64`;
//! * [`Histogram`] — count/sum/min/max plus power-of-two buckets;
//! * [`Span`] — an RAII wall-clock timer keyed by name, recording into
//!   the span registry (and usable for per-phase timings).
//!
//! A `Telemetry` handle is either *enabled* (backed by a shared
//! registry) or *disabled*. Disabled handles hand out instrument
//! handles whose every operation is a branch on `None` — no
//! allocation, no locking, no atomics — so instrumented hot loops pay
//! effectively nothing when telemetry is off. Handles are `Clone` and
//! cheap to pass around; clones of an enabled handle share one
//! registry.
//!
//! [`Snapshot`] freezes the registry into plain serializable maps, and
//! the [`manifest`] module turns snapshots plus run parameters into
//! JSONL run-manifest records.

#![forbid(unsafe_code)]

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

pub mod manifest;

pub use manifest::{ManifestWriter, PhaseTiming, RunRecord};

/// Number of power-of-two histogram buckets (`bucket[i]` counts values
/// in `[2^(i-1), 2^i)`, with bucket 0 catching everything below 1).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Per-shard engine instruments (see [`Telemetry::shard_counter`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardInstrument {
    /// Events processed by one engine shard (`sim.shard.events.NN`).
    Events,
    /// Departures scheduled on one shard's queue
    /// (`sim.shard.departures.NN`).
    Departures,
}

/// Highest individually named shard index; shards beyond this fold into
/// the last slot (counter names are `&'static str`, so the table is
/// fixed-size).
pub const MAX_NAMED_SHARDS: usize = 16;

static SHARD_EVENTS: [&str; MAX_NAMED_SHARDS] = [
    "sim.shard.events.00",
    "sim.shard.events.01",
    "sim.shard.events.02",
    "sim.shard.events.03",
    "sim.shard.events.04",
    "sim.shard.events.05",
    "sim.shard.events.06",
    "sim.shard.events.07",
    "sim.shard.events.08",
    "sim.shard.events.09",
    "sim.shard.events.10",
    "sim.shard.events.11",
    "sim.shard.events.12",
    "sim.shard.events.13",
    "sim.shard.events.14",
    "sim.shard.events.15",
];

static SHARD_DEPARTURES: [&str; MAX_NAMED_SHARDS] = [
    "sim.shard.departures.00",
    "sim.shard.departures.01",
    "sim.shard.departures.02",
    "sim.shard.departures.03",
    "sim.shard.departures.04",
    "sim.shard.departures.05",
    "sim.shard.departures.06",
    "sim.shard.departures.07",
    "sim.shard.departures.08",
    "sim.shard.departures.09",
    "sim.shard.departures.10",
    "sim.shard.departures.11",
    "sim.shard.departures.12",
    "sim.shard.departures.13",
    "sim.shard.departures.14",
    "sim.shard.departures.15",
];

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<HistogramCell>>>,
}

/// Entry point: hands out counters, histograms, and spans.
///
/// Construct with [`Telemetry::enabled`] or [`Telemetry::disabled`].
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A recording handle backed by a fresh registry.
    pub fn enabled() -> Self {
        Telemetry {
            registry: Some(Arc::new(Registry::default())),
        }
    }

    /// A no-op handle: all instruments it hands out record nothing.
    pub fn disabled() -> Self {
        Telemetry { registry: None }
    }

    /// Whether instruments from this handle actually record.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The counter registered under `name` (created on first use).
    /// Clones of this handle return the same underlying counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter {
            cell: self.registry.as_ref().map(|r| {
                Arc::clone(
                    r.counters
                        .lock()
                        .entry(name)
                        .or_insert_with(|| Arc::new(AtomicU64::new(0))),
                )
            }),
        }
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &'static str) -> Histogram {
        Histogram {
            cell: self.registry.as_ref().map(|r| {
                Arc::clone(
                    r.histograms
                        .lock()
                        .entry(name)
                        .or_insert_with(|| Arc::new(HistogramCell::default())),
                )
            }),
        }
    }

    /// Starts an RAII wall-clock timer; on drop it records elapsed
    /// seconds into the histogram `name`. Spans nest freely — each
    /// records independently.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            histogram: self.histogram(name),
            started: self.is_enabled().then(Instant::now),
        }
    }

    /// The per-shard counter for `what` on shard index `shard`. Names
    /// follow `sim.shard.<what>.NN`; indices at or beyond
    /// [`MAX_NAMED_SHARDS`] fold into the last named slot, so totals
    /// stay exact however many shards a run uses. Comparisons across
    /// runs with different shard counts should exclude the
    /// `sim.shard.` prefix — the per-shard split is topology-dependent
    /// by design.
    pub fn shard_counter(&self, what: ShardInstrument, shard: usize) -> Counter {
        let names = match what {
            ShardInstrument::Events => &SHARD_EVENTS,
            ShardInstrument::Departures => &SHARD_DEPARTURES,
        };
        self.counter(names[shard.min(MAX_NAMED_SHARDS - 1)])
    }

    /// Freezes all instruments into plain maps. Returns an empty
    /// snapshot for disabled handles.
    pub fn snapshot(&self) -> Snapshot {
        let Some(registry) = &self.registry else {
            return Snapshot::default();
        };
        let counters = registry
            .counters
            .lock()
            .iter()
            .map(|(&name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
            .collect();
        let histograms = registry
            .histograms
            .lock()
            .iter()
            .map(|(&name, cell)| (name.to_string(), cell.stats()))
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// A monotonically increasing counter. No-op when its `Telemetry`
/// handle was disabled.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A detached no-op counter (equivalent to one from a disabled
    /// handle); useful as a default field value.
    pub fn noop() -> Self {
        Counter::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for no-op counters).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

#[derive(Default)]
struct HistogramCell {
    inner: Mutex<HistogramData>,
}

#[derive(Clone)]
struct HistogramData {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramData {
    fn default() -> Self {
        HistogramData {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// The index of the power-of-two bucket covering `value`.
fn bucket_index(value: f64) -> usize {
    if value < 1.0 {
        return 0;
    }
    let exp = value.log2().floor() as usize + 1;
    exp.min(HISTOGRAM_BUCKETS - 1)
}

impl HistogramCell {
    fn observe(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut data = self.inner.lock();
        data.count += 1;
        data.sum += value;
        data.min = data.min.min(value);
        data.max = data.max.max(value);
        let idx = bucket_index(value);
        data.buckets[idx] += 1;
    }

    fn stats(&self) -> HistogramStats {
        let data = self.inner.lock().clone();
        HistogramStats {
            count: data.count,
            sum: data.sum,
            min: if data.count == 0 { 0.0 } else { data.min },
            max: if data.count == 0 { 0.0 } else { data.max },
        }
    }
}

/// A distribution recorder. No-op when its `Telemetry` handle was
/// disabled. Non-finite observations are dropped.
#[derive(Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.observe(value);
        }
    }

    /// Summary statistics (zeros for no-op histograms).
    pub fn stats(&self) -> HistogramStats {
        self.cell
            .as_ref()
            .map_or_else(HistogramStats::default, |cell| cell.stats())
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("stats", &self.stats())
            .finish()
    }
}

/// Count/sum/min/max summary of a histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramStats {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramStats {
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// RAII wall-clock timer from [`Telemetry::span`]. Records elapsed
/// seconds into its histogram when dropped.
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    started: Option<Instant>,
}

impl Span {
    /// Seconds since the span started (0 for no-op spans).
    pub fn elapsed_secs(&self) -> f64 {
        self.started.map_or(0.0, |t| t.elapsed().as_secs_f64())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            self.histogram.observe(started.elapsed().as_secs_f64());
        }
    }
}

/// A frozen, serializable view of a registry.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name (spans appear here, in seconds).
    pub histograms: BTreeMap<String, HistogramStats>,
}

impl Snapshot {
    /// The counter value, or 0 if never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram summary, or zeros if never registered.
    pub fn histogram(&self, name: &str) -> HistogramStats {
        self.histograms.get(name).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let telemetry = Telemetry::enabled();
        let a = telemetry.counter("arrivals");
        let b = telemetry.counter("arrivals");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(telemetry.snapshot().counter("arrivals"), 5);
    }

    #[test]
    fn clones_share_one_registry() {
        let telemetry = Telemetry::enabled();
        let clone = telemetry.clone();
        clone.counter("x").add(7);
        assert_eq!(telemetry.snapshot().counter("x"), 7);
    }

    #[test]
    fn histogram_stats_are_correct() {
        let telemetry = Telemetry::enabled();
        let h = telemetry.histogram("load");
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.observe(v);
        }
        let stats = h.stats();
        assert_eq!(stats.count, 4);
        assert_eq!(stats.sum, 16.0);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 10.0);
        assert_eq!(stats.mean(), 4.0);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let telemetry = Telemetry::enabled();
        let h = telemetry.histogram("h");
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(2.0);
        assert_eq!(h.stats().count, 1);
    }

    #[test]
    fn bucket_index_covers_domain() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(0.5), 0);
        assert_eq!(bucket_index(1.0), 1);
        assert_eq!(bucket_index(1.9), 1);
        assert_eq!(bucket_index(2.0), 2);
        assert_eq!(bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn spans_record_elapsed_and_nest() {
        let telemetry = Telemetry::enabled();
        {
            let _outer = telemetry.span("outer");
            {
                let _inner = telemetry.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = telemetry.snapshot();
        let outer = snap.histogram("outer");
        let inner = snap.histogram("inner");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(
            outer.sum >= inner.sum,
            "outer {} should cover inner {}",
            outer.sum,
            inner.sum
        );
    }

    #[test]
    fn disabled_handles_record_nothing() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        let c = telemetry.counter("c");
        let h = telemetry.histogram("h");
        c.add(100);
        h.observe(1.0);
        {
            let span = telemetry.span("s");
            assert_eq!(span.elapsed_secs(), 0.0);
        }
        assert_eq!(c.get(), 0);
        assert_eq!(h.stats().count, 0);
        let snap = telemetry.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn shard_counters_are_named_and_folded() {
        let telemetry = Telemetry::enabled();
        telemetry.shard_counter(ShardInstrument::Events, 0).add(3);
        telemetry
            .shard_counter(ShardInstrument::Departures, 7)
            .add(5);
        // Indices past the named table fold into the last slot.
        telemetry
            .shard_counter(ShardInstrument::Events, MAX_NAMED_SHARDS + 9)
            .add(2);
        telemetry
            .shard_counter(ShardInstrument::Events, MAX_NAMED_SHARDS - 1)
            .add(1);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("sim.shard.events.00"), 3);
        assert_eq!(snap.counter("sim.shard.departures.07"), 5);
        assert_eq!(snap.counter("sim.shard.events.15"), 3);
    }

    #[test]
    fn counters_are_thread_safe() {
        let telemetry = Telemetry::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = telemetry.counter("shared");
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(telemetry.snapshot().counter("shared"), 4000);
    }
}
