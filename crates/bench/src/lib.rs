//! Benchmark-only crate; all content lives in `benches/`.
//!
//! * `replication` — the Sec. 4 complexity claims: bounded Adams is
//!   `O(M + (N·C−M) log M)`, Zipf-interval `O(M log M)`, across an M sweep;
//! * `placement` — round-robin vs smallest-load-first cost;
//! * `simulator` — request throughput of the discrete-event engine;
//! * `workload` — alias-table sampling and trace generation;
//! * `anneal` — SA move/energy throughput and a small end-to-end run;
//! * `figures` — reduced single-run versions of every simulation figure
//!   (4, 5, 6) and the quality/bound tables, so `cargo bench` exercises
//!   each experiment's full code path.
