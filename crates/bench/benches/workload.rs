//! Workload substrate throughput: alias-table draws (the per-request hot
//! path) and full trace generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vod_model::Popularity;
use vod_workload::{TraceGenerator, ZipfSampler};

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    for m in [200usize, 20_000] {
        let sampler = ZipfSampler::new(m, 0.75).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("zipf_sample", m), &m, |b, _| {
            b.iter(|| black_box(sampler.sample(&mut rng)))
        });
    }

    let pop = Popularity::zipf(200, 0.75).unwrap();
    let generator = TraceGenerator::new(40.0, &pop, 90.0).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    group.throughput(Throughput::Elements(3_600));
    group.bench_function("trace_90min_lambda40", |b| {
        b.iter(|| black_box(generator.generate(&mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
