//! Discrete-event engine throughput: requests simulated per second at the
//! paper's scale and at 10× overload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vod_core::prelude::*;

fn world(m: usize, slots: u64) -> (ClusterPlanner, Plan) {
    let planner = ClusterPlanner::builder()
        .catalog(Catalog::paper_default(m).unwrap())
        .cluster(ClusterSpec::paper_default(slots))
        .popularity(Popularity::zipf(m, 1.0).unwrap())
        .demand_requests(3_600.0)
        .build()
        .unwrap();
    let plan = planner
        .plan(ReplicationAlgo::Adams, PlacementAlgo::SmallestLoadFirst)
        .unwrap();
    (planner, plan)
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(15);
    let (planner, plan) = world(200, 30);
    for lambda in [40.0f64, 400.0] {
        let generator = TraceGenerator::new(lambda, planner.popularity(), 90.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let trace = generator.generate(&mut rng);
        let sim = Simulation::new(
            planner.catalog(),
            planner.cluster(),
            &plan.layout,
            SimConfig::default(),
        )
        .unwrap();
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("replay", format!("lambda{lambda}")),
            &lambda,
            |b, _| b.iter(|| black_box(sim.run(black_box(&trace)).unwrap())),
        );
        // Same replay with live instruments: the gap to `replay` above is
        // the full recording cost; `replay` itself runs the no-op
        // recorder path, so it doubles as the zero-overhead check.
        let telemetry = vod_telemetry::Telemetry::enabled();
        group.bench_with_input(
            BenchmarkId::new("replay_telemetry", format!("lambda{lambda}")),
            &lambda,
            |b, _| {
                b.iter(|| {
                    black_box(
                        sim.run_with_telemetry(black_box(&trace), &telemetry)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
