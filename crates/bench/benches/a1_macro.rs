//! Macro benchmark: a full A-1-scale peak-period replay, reported in
//! *events per second* (arrivals + departures + transitions + samples +
//! retries + abandonments — the same event count the perf-smoke gate and
//! the `sim.events` telemetry counter use).
//!
//! Three flavors of the same 200-video, Zipf(1.0), Adams/SLF world:
//!
//! * `steady`   — the paper's failure-free default at capacity load;
//! * `overload` — 10× arrival rate, so the run is dominated by
//!   dispatch-and-reject scans and departure-queue churn;
//! * `chaos`    — stochastic crashes + brownouts with stream failover and
//!   mid-run repair, the path that hammers `extract_active`.
//!
//! Plus the sharded-engine group: a pod-structured 256-server world
//! replayed at `shards = 1` (serial) vs `shards = 8` (decoupled
//! parallel). The two runs produce byte-identical reports — asserted
//! before measuring — so the throughput delta is pure engine overhead
//! vs parallel speedup.
//!
//! Plus the scale group: the A-9 world shape (512 servers, 20,000
//! videos, diurnal + premiere + churn arrivals) replayed through the
//! streaming arrival pipeline vs a pre-materialized trace of the
//! identical request sequence. The two reports are equal — asserted
//! before measuring — so the delta isolates what lazy pull costs (or
//! saves) against iterate-a-Vec at production catalog sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vod_core::prelude::*;
use vod_model::{ServerId, VideoId};
use vod_sim::{BrownoutModel, FailoverPolicy, FailureModel, RepairConfig};
use vod_workload::{Request, Trace};

fn world(m: usize, slots: u64) -> (ClusterPlanner, Plan) {
    let planner = ClusterPlanner::builder()
        .catalog(Catalog::paper_default(m).unwrap())
        .cluster(ClusterSpec::paper_default(slots))
        .popularity(Popularity::zipf(m, 1.0).unwrap())
        .demand_requests(3_600.0)
        .build()
        .unwrap();
    let plan = planner
        .plan(ReplicationAlgo::Adams, PlacementAlgo::SmallestLoadFirst)
        .unwrap();
    (planner, plan)
}

fn trace(planner: &ClusterPlanner, lambda: f64, seed: u64) -> Trace {
    let generator = TraceGenerator::new(lambda, planner.popularity(), 90.0).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    generator.generate(&mut rng)
}

fn chaos_config() -> SimConfig {
    let mut model = FailureModel::exponential(25.0, 8.0, 0xA1_5EED);
    model.brownouts = Some(BrownoutModel {
        mtbf_min: 40.0,
        mttr_min: 6.0,
        min_capacity_frac: 0.4,
        max_capacity_frac: 0.8,
    });
    SimConfig {
        failure_model: Some(model),
        failover: FailoverPolicy::ResumeOrDegrade,
        repair: RepairConfig {
            bandwidth_kbps: 8_000,
            max_concurrent: 4,
        },
        ..SimConfig::default()
    }
}

/// Counts one run's events on a throwaway telemetry handle so the
/// benchmark can report elements (= events) per second.
fn count_events(sim: &Simulation, trace: &Trace) -> u64 {
    let telemetry = vod_telemetry::Telemetry::enabled();
    sim.run_with_telemetry(trace, &telemetry).unwrap();
    telemetry.snapshot().counter("sim.events")
}

fn bench_a1_macro(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_macro");
    group.sample_size(15);
    let (planner, plan) = world(200, 30);
    let cases = [
        ("steady", 40.0, SimConfig::default()),
        ("overload", 400.0, SimConfig::default()),
        ("chaos", 40.0, chaos_config()),
    ];
    for (name, lambda, config) in cases {
        let trace = trace(&planner, lambda, 9);
        let sim =
            Simulation::new(planner.catalog(), planner.cluster(), &plan.layout, config).unwrap();
        group.throughput(Throughput::Elements(count_events(&sim, &trace)));
        group.bench_with_input(BenchmarkId::new("replay", name), &lambda, |b, _| {
            b.iter(|| black_box(sim.run(black_box(&trace)).unwrap()))
        });
    }
    group.finish();
}

/// A pod-structured world of `pods` independent 8-server groups, each
/// pod holding its own 8 videos on 2-replica sets, plus an evenly
/// spread peak-period trace. Every replica set stays inside one pod,
/// so the decoupled parallel path fans out to the full shard count.
fn pods_world(pods: usize) -> (Catalog, ClusterSpec, Layout, Trace) {
    const PER_POD: usize = 8;
    let n_servers = pods * PER_POD;
    let n_videos = n_servers;
    let catalog = Catalog::fixed_rate(n_videos, BitRate::MPEG2, 600).unwrap();
    let cluster = ClusterSpec::homogeneous(
        n_servers,
        ServerSpec {
            storage_bytes: u64::MAX,
            bandwidth_kbps: 40_000, // 10 concurrent streams per server
        },
    )
    .unwrap();
    let layout = Layout::new(
        n_servers,
        (0..n_videos)
            .map(|v| {
                let base = (v / PER_POD) * PER_POD;
                vec![
                    ServerId((base + v % PER_POD) as u32),
                    ServerId((base + (v + 1) % PER_POD) as u32),
                ]
            })
            .collect(),
    )
    .unwrap();
    let n_requests = 20_000usize;
    // 37 is coprime with the catalog size, so the video sequence cycles
    // the whole catalog uniformly across pods.
    let trace = Trace::new(
        (0..n_requests)
            .map(|k| Request {
                arrival_min: k as f64 * (90.0 / n_requests as f64),
                video: VideoId(((k * 37) % n_videos) as u32),
            })
            .collect(),
    )
    .unwrap();
    (catalog, cluster, layout, trace)
}

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_macro_sharded");
    group.sample_size(10);
    let (catalog, cluster, layout, trace) = pods_world(32);
    let sim_for = |shards| {
        Simulation::new(
            &catalog,
            &cluster,
            &layout,
            SimConfig {
                shards,
                ..SimConfig::default()
            },
        )
        .unwrap()
    };
    // Determinism gate: the numbers below are only comparable because
    // the sharded replay is byte-identical to the serial one.
    assert_eq!(
        sim_for(1).run(&trace).unwrap(),
        sim_for(8).run(&trace).unwrap()
    );
    for shards in [1usize, 8] {
        let sim = sim_for(shards);
        group.throughput(Throughput::Elements(count_events(&sim, &trace)));
        group.bench_with_input(
            BenchmarkId::new("pods", format!("shards={shards}")),
            &shards,
            |b, _| b.iter(|| black_box(sim.run(black_box(&trace)).unwrap())),
        );
    }
    group.finish();
}

/// Coupled-path A/B: the same pods world with one mid-run outage, which
/// makes the decoupled fan-out ineligible. `serial` replays it through
/// the plain coupled loop (windowing off); `windowed` replays it at
/// `shards = 8` under the bounded-lookahead window scheduler
/// (DESIGN.md §7). Reports are byte-identical — asserted before
/// measuring — so the delta is exactly what windowing costs (or saves)
/// on this machine.
fn bench_coupled_windowed(c: &mut Criterion) {
    use vod_sim::{FailurePlan, Outage, WindowConfig};

    let mut group = c.benchmark_group("a1_macro_coupled");
    group.sample_size(10);
    let (catalog, cluster, layout, trace) = pods_world(32);
    let outage = || {
        FailurePlan::new(vec![Outage {
            server: ServerId(3),
            down_at_min: 30.0,
            up_at_min: Some(60.0),
        }])
        .unwrap()
    };
    let sim_for = |shards, enabled| {
        Simulation::new(
            &catalog,
            &cluster,
            &layout,
            SimConfig {
                shards,
                failures: outage(),
                window: WindowConfig {
                    enabled,
                    ..WindowConfig::default()
                },
                ..SimConfig::default()
            },
        )
        .unwrap()
    };
    // Determinism gate: the windowed replay is byte-identical to the
    // serial coupled loop, or the A/B compares nothing.
    assert_eq!(
        sim_for(1, false).run(&trace).unwrap(),
        sim_for(8, true).run(&trace).unwrap()
    );
    for (name, shards, enabled) in [("serial", 1usize, false), ("windowed", 8, true)] {
        let sim = sim_for(shards, enabled);
        group.throughput(Throughput::Elements(count_events(&sim, &trace)));
        group.bench_with_input(BenchmarkId::new("pods_outage", name), &shards, |b, _| {
            b.iter(|| black_box(sim.run(black_box(&trace)).unwrap()))
        });
    }
    group.finish();
}

/// The A-9 production world shape, horizon-trimmed so one engine pass
/// fits a bench iteration (the full 48-hour run is the `experiments
/// scale` command's job; throughput per event is what matters here).
fn bench_scale(c: &mut Criterion) {
    use vod_experiments::runner::{build_plan, Combo};
    use vod_experiments::scale::ScaleWorld;

    let mut group = c.benchmark_group("a1_macro_scale");
    group.sample_size(10);
    let mut world = ScaleWorld::production(1);
    world.setup.horizon_min = 360.0;
    world.diurnal.period_min = 360.0;
    world.pulses = vec![vod_workload::RatePulse {
        start_min: 120.0,
        duration_min: 45.0,
        multiplier: 1.5,
    }];
    let point = build_plan(&world.setup, Combo::ZIPF_SLF, world.theta, world.degree).unwrap();
    let workload = world.workload().unwrap();
    let sim = Simulation::new(
        point.planner().catalog(),
        point.planner().cluster(),
        &point.plan.layout,
        SimConfig {
            horizon_min: world.setup.horizon_min,
            ..SimConfig::default()
        },
    )
    .unwrap();
    let seed = 0x5CA1E;
    let stream = || workload.stream(ChaCha8Rng::seed_from_u64(seed)).unwrap();
    let trace = workload
        .generate(&mut ChaCha8Rng::seed_from_u64(seed))
        .unwrap();
    // Equivalence gate: the streaming pull and the materialized replay
    // must report identically, or the A/B below compares nothing.
    assert_eq!(
        sim.run_streaming(stream()).unwrap(),
        sim.run(&trace).unwrap()
    );
    let telemetry = vod_telemetry::Telemetry::enabled();
    sim.run_with_telemetry(&trace, &telemetry).unwrap();
    let events = telemetry.snapshot().counter("sim.events");
    group.throughput(Throughput::Elements(events));
    group.bench_function(BenchmarkId::new("arrivals", "streaming"), |b| {
        b.iter(|| black_box(sim.run_streaming(black_box(stream())).unwrap()))
    });
    group.bench_function(BenchmarkId::new("arrivals", "materialized"), |b| {
        b.iter(|| black_box(sim.run(black_box(&trace)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_a1_macro,
    bench_sharded,
    bench_coupled_windowed,
    bench_scale
);
criterion_main!(benches);
