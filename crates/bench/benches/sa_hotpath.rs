//! SA hot-path A/B: the delta-evaluated move engine vs the legacy
//! clone-per-step path, on both annealing problems.
//!
//! Each benchmark runs a fixed budget of Metropolis steps through
//! `anneal` (delta: `*Search` states with cached per-server aggregates,
//! O(touched) per step) or `anneal_neighbor` (legacy: clone + full
//! O(M·N) energy recompute per step) and reports element throughput =
//! steps/sec. The `perf-smoke` CI gate pins a floor for the delta path
//! (`sa_steps_per_sec` in `bench/baseline.json`); these benches are the
//! diagnostic view behind that number.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vod_anneal::{
    anneal, anneal_neighbor, AnnealParams, CoolingSchedule, MultiRateProblem, ScalableProblem,
};
use vod_model::{BitRate, ClusterSpec, ObjectiveWeights, Popularity, ServerSpec};

const DURATION_S: u64 = 90 * 60;

/// The paper's cluster shape: N = 8 homogeneous servers with storage for
/// a ~1.4 replication degree and ~1.8 Gbps links.
fn cluster(m: usize) -> ClusterSpec {
    let slot = BitRate::STUDIO.storage_bytes(DURATION_S);
    ClusterSpec::homogeneous(
        8,
        ServerSpec {
            storage_bytes: ((1.4 * m as f64 / 8.0).ceil() as u64) * slot,
            bandwidth_kbps: 1_800_000,
        },
    )
    .unwrap()
}

fn scalable(m: usize) -> ScalableProblem {
    ScalableProblem::new(
        Popularity::zipf(m, 1.0).unwrap(),
        cluster(m),
        DURATION_S,
        BitRate::LADDER.to_vec(),
        // ~60% of an 8-link cluster's 4 Mbps stream capacity, like SA-1.
        0.6 * 8.0 * 1_800_000.0 / 4_000.0,
        ObjectiveWeights::default(),
    )
    .unwrap()
}

fn multirate(m: usize) -> MultiRateProblem {
    MultiRateProblem::new(
        Popularity::zipf(m, 1.0).unwrap(),
        cluster(m),
        DURATION_S,
        BitRate::LADDER.to_vec(),
        0.6 * 8.0 * 1_800_000.0 / 4_000.0,
        ObjectiveWeights::default(),
        false,
    )
    .unwrap()
}

/// Annealing knobs sized to `steps` total Metropolis steps, with the
/// 1/M-scaled temperature the experiments use.
fn params(m: usize, steps: u32) -> AnnealParams {
    let t0 = 20.0 / m as f64;
    AnnealParams {
        schedule: CoolingSchedule::Geometric {
            t0,
            alpha: 0.93,
            t_min: t0 * 1e-4,
        },
        epochs: 12,
        steps_per_epoch: steps / 12,
    }
}

fn bench_sa_hotpath(c: &mut Criterion) {
    // (label, catalog size, steps per iteration, legacy steps per iteration)
    // The legacy path gets a smaller budget at M = 1000 — a full clone
    // walk at that scale would push one criterion sample past minutes.
    let scales: &[(&str, usize, u32, u32)] = &[
        ("m200", 200, 24_000, 6_000),
        ("m1000", 1_000, 24_000, 1_200),
    ];

    let mut group = c.benchmark_group("sa_hotpath");
    group.sample_size(10);

    for &(label, m, steps, legacy_steps) in scales {
        let p = scalable(m);
        group.throughput(Throughput::Elements(u64::from(steps)));
        group.bench_function(format!("scalable_{label}_delta"), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(0xBE);
                black_box(anneal(&p, p.initial_search(), &params(m, steps), &mut rng))
            })
        });
        group.throughput(Throughput::Elements(u64::from(legacy_steps)));
        group.bench_function(format!("scalable_{label}_legacy"), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(0xBE);
                black_box(anneal_neighbor(
                    &p,
                    p.initial_state(),
                    &params(m, legacy_steps),
                    &mut rng,
                ))
            })
        });

        let q = multirate(m);
        group.throughput(Throughput::Elements(u64::from(steps)));
        group.bench_function(format!("multirate_{label}_delta"), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(0xBF);
                black_box(anneal(&q, q.initial_search(), &params(m, steps), &mut rng))
            })
        });
        group.throughput(Throughput::Elements(u64::from(legacy_steps)));
        group.bench_function(format!("multirate_{label}_legacy"), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(0xBF);
                black_box(anneal_neighbor(
                    &q,
                    q.initial_state(),
                    &params(m, legacy_steps),
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sa_hotpath);
criterion_main!(benches);
