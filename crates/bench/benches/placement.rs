//! Placement cost: round-robin vs smallest-load-first across catalog
//! sizes (paper, Sec. 4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vod_model::Popularity;
use vod_placement::traits::PlacementInput;
use vod_placement::{PlacementPolicy, RoundRobinPlacement, SmallestLoadFirstPlacement};
use vod_replication::{BoundedAdamsReplication, ReplicationPolicy};

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    group.sample_size(20);
    let n_servers = 8;
    for m in [200usize, 2_000, 20_000] {
        let pop = Popularity::zipf(m, 0.75).unwrap();
        let budget = ((1.4 * m as f64) as u64).div_ceil(8) * 8;
        let scheme = BoundedAdamsReplication
            .replicate(&pop, n_servers, budget)
            .unwrap();
        let weights = scheme.weights(&pop, 3_600.0).unwrap();
        let capacities = vec![scheme.total().div_ceil(8); n_servers];
        let input = PlacementInput {
            scheme: &scheme,
            weights: &weights,
            n_servers,
            capacities: &capacities,
        };
        group.bench_with_input(BenchmarkId::new("slf", m), &m, |b, _| {
            b.iter(|| black_box(SmallestLoadFirstPlacement.place(black_box(&input)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("round_robin", m), &m, |b, _| {
            b.iter(|| black_box(RoundRobinPlacement.place(black_box(&input)).unwrap()))
        });
        // Incremental update cost (identity case: pure keep phase).
        let previous = SmallestLoadFirstPlacement.place(&input).unwrap();
        group.bench_with_input(BenchmarkId::new("incremental_identity", m), &m, |b, _| {
            let policy = vod_placement::IncrementalPlacement::from_previous(previous.clone());
            b.iter(|| black_box(policy.place(black_box(&input)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
