//! Micro-benchmarks for the engine's per-event hot path: departure-queue
//! operations, the dispatcher's replica pick, and alias-table sampling —
//! the three inner loops every simulated event touches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vod_model::{BitRate, Catalog, ClusterSpec, Layout, ServerId, ServerSpec, VideoId};
use vod_sim::dispatch::{AdmissionPolicy, Dispatcher};
use vod_sim::event::{Departure, DepartureQueue, NO_STREAM};
use vod_sim::server::LinkState;
use vod_sim::time::SimTime;
use vod_workload::ZipfSampler;

const SERVERS: u32 = 8;

fn dep(rng: &mut ChaCha8Rng) -> Departure {
    Departure {
        at: SimTime(rng.gen_range(0..5_400_000)),
        server: ServerId(rng.gen_range(0..SERVERS)),
        video: VideoId(rng.gen_range(0..200)),
        kbps: 4_000,
        backbone_kbps: 0,
        epoch: 0,
        stream: NO_STREAM,
    }
}

/// Steady-state churn: a queue holding `n` live streams, one departure
/// popped and one pushed per iteration — the engine's per-admission cost.
fn bench_queue_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");
    for n in [256usize, 4_096] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut q = DepartureQueue::new();
        for _ in 0..n {
            q.push(dep(&mut rng));
        }
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, _| {
            b.iter(|| {
                let d = q.pop_due(SimTime(u64::MAX)).unwrap();
                q.push(Departure {
                    at: SimTime(d.at.ticks().wrapping_add(600_000)),
                    ..d
                });
                black_box(q.next_time())
            })
        });
    }
    group.finish();
}

/// Failover cost: extract one server's k active streams out of a queue of
/// n and put them back — the crash/brownout path.
fn bench_queue_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");
    for n in [256usize, 4_096] {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut q = DepartureQueue::new();
        for _ in 0..n {
            q.push(dep(&mut rng));
        }
        let mut server = 0u32;
        group.throughput(Throughput::Elements((n as u64) / SERVERS as u64));
        group.bench_with_input(BenchmarkId::new("extract_active", n), &n, |b, _| {
            b.iter(|| {
                let extracted = q.extract_active(ServerId(server % SERVERS), 0);
                server = server.wrapping_add(1);
                let k = extracted.len();
                for d in extracted {
                    q.push(d);
                }
                black_box(k)
            })
        });
    }
    group.finish();
}

/// The dispatcher's replica scan on an idle cluster, per policy.
fn bench_dispatcher_pick(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatcher");
    let catalog = Catalog::fixed_rate(200, BitRate::MPEG2, 5_400).unwrap();
    let cluster = ClusterSpec::homogeneous(
        SERVERS as usize,
        ServerSpec {
            storage_bytes: u64::MAX,
            bandwidth_kbps: 1_000_000_000,
        },
    )
    .unwrap();
    let layout = Layout::new(
        SERVERS as usize,
        (0..200u32)
            .map(|v| vec![ServerId(v % SERVERS), ServerId((v + 1) % SERVERS)])
            .collect(),
    )
    .unwrap();
    let links = LinkState::new(&cluster);
    let policies = [
        ("static_rr", AdmissionPolicy::StaticRoundRobin),
        ("rr_failover", AdmissionPolicy::RoundRobinFailover),
        ("least_loaded", AdmissionPolicy::LeastLoadedReplica),
        (
            "backbone",
            AdmissionPolicy::BackboneRedirect {
                backbone_capacity_kbps: 1_000_000,
            },
        ),
    ];
    for (name, policy) in policies {
        let mut dispatcher = Dispatcher::new(policy, catalog.len());
        let mut v = 0u32;
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("pick", name), &policy, |b, _| {
            b.iter(|| {
                let video = VideoId(v % 200);
                v = v.wrapping_add(1);
                black_box(dispatcher.dispatch(video, 4_000, layout.replicas_of(video), &links))
            })
        });
    }
    group.finish();
}

/// A/B for the round-robin candidate-order cache: the dispatcher keeps
/// the next precomputed `counter % n` position per video and serves it
/// without the integer division while the replica count is stable
/// (`cached`); a replica set whose length keeps changing invalidates
/// the slot every pick and falls back to the modulo (`invalidated`).
/// The stable case is the hot path — every windowed coordinator
/// pre-pass and every serial round-robin dispatch takes it.
fn bench_rr_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatcher");
    let catalog = Catalog::fixed_rate(200, BitRate::MPEG2, 5_400).unwrap();
    let cluster = ClusterSpec::homogeneous(
        SERVERS as usize,
        ServerSpec {
            storage_bytes: u64::MAX,
            bandwidth_kbps: 1_000_000_000,
        },
    )
    .unwrap();
    let links = LinkState::new(&cluster);
    // Three- and two-server candidate lists for the same videos: the
    // `invalidated` case alternates between them so the cached length
    // never matches, the `cached` case always offers all three.
    let full: Vec<Vec<ServerId>> = (0..200u32)
        .map(|v| {
            vec![
                ServerId(v % SERVERS),
                ServerId((v + 1) % SERVERS),
                ServerId((v + 2) % SERVERS),
            ]
        })
        .collect();
    for (name, alternate) in [("rr_cached", false), ("rr_invalidated", true)] {
        let mut dispatcher = Dispatcher::new(AdmissionPolicy::StaticRoundRobin, catalog.len());
        let mut v = 0u32;
        let mut flip = false;
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("pick", name), &alternate, |b, _| {
            b.iter(|| {
                let video = VideoId(v % 200);
                v = v.wrapping_add(1);
                let replicas = &full[video.index()];
                let replicas = if alternate && flip {
                    &replicas[..2]
                } else {
                    &replicas[..]
                };
                flip = !flip;
                black_box(dispatcher.dispatch(video, 4_000, replicas, &links))
            })
        });
    }
    group.finish();
}

/// Walker/Vose alias sampling — the per-arrival video pick.
fn bench_alias_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias");
    let sampler = ZipfSampler::new(200, 1.0).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    group.throughput(Throughput::Elements(1));
    group.bench_function("sample", |b| b.iter(|| black_box(sampler.sample(&mut rng))));
    group.finish();
}

criterion_group!(
    benches,
    bench_queue_churn,
    bench_queue_extract,
    bench_dispatcher_pick,
    bench_rr_cache,
    bench_alias_sample
);
criterion_main!(benches);
