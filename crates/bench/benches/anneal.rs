//! Simulated-annealing substrate cost: the neighborhood move (with
//! constraint repair) and energy evaluation, plus a small end-to-end run
//! on the delta-evaluated engine. The delta-vs-legacy A/B comparison
//! lives in `sa_hotpath.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use vod_anneal::{anneal, AnnealParams, CoolingSchedule, NeighborProblem, ScalableProblem};
use vod_model::{BitRate, ClusterSpec, ObjectiveWeights, Popularity, ServerSpec};

fn problem(m: usize) -> ScalableProblem {
    let duration_s = 90 * 60;
    ScalableProblem::new(
        Popularity::zipf(m, 0.8).unwrap(),
        ClusterSpec::homogeneous(
            8,
            ServerSpec {
                storage_bytes: (m as u64 / 2) * BitRate::STUDIO.storage_bytes(duration_s),
                bandwidth_kbps: 1_800_000,
            },
        )
        .unwrap(),
        duration_s,
        BitRate::LADDER.to_vec(),
        2_000.0,
        ObjectiveWeights::default(),
    )
    .unwrap()
}

fn bench_anneal(c: &mut Criterion) {
    let mut group = c.benchmark_group("anneal");
    group.sample_size(20);

    let p = problem(100);
    let state = p.initial_state();
    group.bench_function("energy_m100", |b| {
        b.iter(|| black_box(p.energy(black_box(&state))))
    });

    let mut rng = ChaCha8Rng::seed_from_u64(11);
    group.bench_function("neighbor_m100", |b| {
        b.iter(|| black_box(p.neighbor(black_box(&state), &mut rng)))
    });

    group.sample_size(10);
    group.bench_function("anneal_m50_2k_steps", |b| {
        let p = problem(50);
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(12);
            black_box(anneal(
                &p,
                p.initial_search(),
                &AnnealParams {
                    schedule: CoolingSchedule::default_geometric(0.5),
                    epochs: 20,
                    steps_per_epoch: 100,
                },
                &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_anneal);
criterion_main!(benches);
