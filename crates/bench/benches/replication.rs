//! Complexity claims of Sec. 4.1: Adams vs Zipf-interval vs
//! classification across catalog sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vod_model::Popularity;
use vod_replication::{
    BoundedAdamsReplication, ClassificationReplication, ReplicationPolicy, ZipfIntervalReplication,
};

fn bench_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication");
    group.sample_size(20);
    let n_servers = 8;
    for m in [200usize, 2_000, 20_000] {
        let pop = Popularity::zipf(m, 0.75).unwrap();
        let budget = (1.4 * m as f64) as u64;
        group.bench_with_input(BenchmarkId::new("adams", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    BoundedAdamsReplication
                        .replicate(black_box(&pop), n_servers, budget)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("zipf_interval", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    ZipfIntervalReplication::default()
                        .replicate(black_box(&pop), n_servers, budget)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("classification", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    ClassificationReplication
                        .replicate(black_box(&pop), n_servers, budget)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();

    // The Adams worst case the paper cites — budget saturating at N·M.
    let mut group = c.benchmark_group("replication_saturated");
    group.sample_size(15);
    let pop = Popularity::zipf(5_000, 0.75).unwrap();
    group.bench_function("adams_full_nm", |b| {
        b.iter(|| {
            black_box(
                BoundedAdamsReplication
                    .replicate(black_box(&pop), 8, 40_000)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
