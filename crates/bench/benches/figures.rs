//! One bench per paper figure/table: reduced single-run versions of every
//! experiment, so `cargo bench` exercises each regenerator's full code
//! path and tracks its cost. The full-scale runs (20 averaged runs, full
//! λ sweep) live in the `experiments` binary; their outputs are recorded
//! in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vod_experiments::runner::{build_plan, run_point, Combo};
use vod_experiments::{bound, quality, sa, PaperSetup};
use vod_sim::AdmissionPolicy;

fn reduced_setup() -> PaperSetup {
    PaperSetup {
        n_videos: 64,
        runs: 1,
        ..PaperSetup::default()
    }
}

/// Figure 4: one (degree, λ) cell per curve family, both subplot combos.
fn bench_fig4(c: &mut Criterion) {
    let setup = reduced_setup();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for (name, combo) in [("zipf_slf", Combo::ZIPF_SLF), ("class_rr", Combo::CLASS_RR)] {
        let point = build_plan(&setup, combo, 1.0, 1.4).unwrap();
        group.bench_with_input(BenchmarkId::new(name, "deg1.4_l40"), &combo, |b, _| {
            b.iter(|| {
                black_box(
                    run_point(&setup, &point, 40.0, AdmissionPolicy::StaticRoundRobin, 1).unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Figure 5: one cell per algorithm combination.
fn bench_fig5(c: &mut Criterion) {
    let setup = reduced_setup();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for combo in Combo::FIGURE_5 {
        let point = build_plan(&setup, combo, 1.0, 1.2).unwrap();
        group.bench_with_input(
            BenchmarkId::new(combo.label(), "deg1.2_l40"),
            &combo,
            |b, _| {
                b.iter(|| {
                    black_box(
                        run_point(&setup, &point, 40.0, AdmissionPolicy::StaticRoundRobin, 2)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Figure 6: the imbalance measurement path (same engine, L-focused cell
/// at the pre-saturation peak).
fn bench_fig6(c: &mut Criterion) {
    let setup = reduced_setup();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    let point = build_plan(&setup, Combo::CLASS_RR, 1.0, 1.2).unwrap();
    group.bench_function("class_rr_deg1.2_l32", |b| {
        b.iter(|| {
            black_box(
                run_point(&setup, &point, 32.0, AdmissionPolicy::StaticRoundRobin, 3).unwrap(),
            )
        })
    });
    group.finish();
}

/// Figures 1–3 are deterministic algorithm illustrations; their code
/// paths are the traced algorithm variants.
fn bench_fig123(c: &mut Criterion) {
    use vod_model::{Popularity, ReplicationScheme};
    use vod_placement::slf::SmallestLoadFirstPlacement;
    use vod_placement::traits::PlacementInput;
    use vod_replication::adams::BoundedAdamsReplication;
    use vod_replication::zipf_interval::ZipfIntervalReplication;

    let mut group = c.benchmark_group("fig123_illustrations");
    let pop5 = Popularity::from_weights(&[5.0, 4.0, 3.0, 2.0, 1.0]).unwrap();
    group.bench_function("fig1_adams_trace", |b| {
        b.iter(|| {
            black_box(
                BoundedAdamsReplication
                    .replicate_traced(&pop5, 3, 9)
                    .unwrap(),
            )
        })
    });
    let pop7 = Popularity::zipf(7, 0.75).unwrap();
    group.bench_function("fig2_interval_search", |b| {
        b.iter(|| {
            black_box(
                ZipfIntervalReplication::default()
                    .search(&pop7, 4, 13)
                    .unwrap(),
            )
        })
    });
    let pop8 = Popularity::from_weights(&[8.0, 6.0, 4.0, 3.0, 2.0, 1.5, 1.0, 0.5]).unwrap();
    let scheme = ReplicationScheme::new(vec![3, 2, 2, 1, 1, 1, 1, 1]).unwrap();
    let weights = scheme.weights(&pop8, 100.0).unwrap();
    let caps = vec![4u64; 4];
    group.bench_function("fig3_slf_trace", |b| {
        b.iter(|| {
            black_box(
                SmallestLoadFirstPlacement
                    .place_traced(&PlacementInput {
                        scheme: &scheme,
                        weights: &weights,
                        n_servers: 4,
                        capacities: &caps,
                    })
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// C-1 (quality table), C-2 (bound table) and SA-1, reduced.
fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("quality_c1_m500", |b| {
        b.iter(|| black_box(quality::compare(&[500], 0.75, 8, 1.4)))
    });
    let setup = PaperSetup {
        n_videos: 48,
        runs: 1,
        ..PaperSetup::default()
    };
    group.bench_function("bound_c2", |b| {
        b.iter(|| black_box(bound::compute(&setup).unwrap()))
    });
    group.sample_size(10);
    let sa_setup = PaperSetup {
        n_videos: 24,
        runs: 1,
        ..PaperSetup::default()
    };
    group.bench_function("sa1_reduced", |b| {
        b.iter(|| black_box(sa::evaluate(&sa_setup, 0.75).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig123,
    bench_tables
);
criterion_main!(benches);
