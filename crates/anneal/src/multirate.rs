//! Multi-rate replicas — the paper's future-work extension.
//!
//! "The replication and placement framework in this article provides a
//! flexible way to maintain multiple replicas of a video with different
//! encoding bit rates. The flexibility can facilitate providing different
//! qualities to requests for various videos or to requests from various
//! clients/devices. We will report our experience in future work"
//! (paper, Sec. 6). The authors never published that follow-up; this
//! module builds the natural formulation on top of the same annealing
//! substrate.
//!
//! Differences from [`crate::problem::ScalableProblem`]:
//!
//! * each replica carries its **own** bit rate (constraint "all replicas
//!   share one rate" is dropped);
//! * the quality term of Eq. (1) becomes the *delivered* quality: under
//!   static round-robin each replica serves an equal share of its video's
//!   requests, so video `i` delivers the mean of its replica rates; the
//!   configurable objective averages that per video either unweighted
//!   (the paper's Eq. 1 convention) or weighted by popularity (the
//!   variant that makes hot titles sharp — see the SA-2 experiment for
//!   the contrast);
//! * the neighborhood upgrades a single replica, or adds a lowest-rate
//!   replica, with the same decrease-or-drop repair discipline.

use crate::engine::AnnealProblem;
use rand::Rng;
use serde::{Deserialize, Serialize};
use vod_model::{load, BitRate, ClusterSpec, ModelError, ObjectiveWeights, Popularity, ServerId};

/// One placed replica: where it lives and how it is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RatedReplica {
    /// Host server.
    pub server: ServerId,
    /// This replica's encoding rate.
    pub rate: BitRate,
}

/// A search-space point: per-video list of rated replicas (servers
/// pairwise distinct per video).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiRateState {
    /// Replicas of each video.
    pub replicas: Vec<Vec<RatedReplica>>,
}

impl MultiRateState {
    /// Mean delivered rate of video `v` in Mbps (replicas serve equal
    /// request shares under static round robin).
    pub fn delivered_mbps(&self, v: usize) -> f64 {
        let reps = &self.replicas[v];
        reps.iter().map(|r| r.rate.mbps()).sum::<f64>() / reps.len() as f64
    }

    /// Mean replication degree.
    pub fn degree(&self) -> f64 {
        self.replicas.iter().map(|r| r.len() as f64).sum::<f64>() / self.replicas.len() as f64
    }
}

/// The multi-rate replication/placement problem.
#[derive(Debug, Clone)]
pub struct MultiRateProblem {
    /// Video popularities (rank-ordered; video id = rank).
    pub pop: Popularity,
    /// The cluster's capacities.
    pub cluster: ClusterSpec,
    /// Video duration in seconds.
    pub duration_s: u64,
    /// The discrete rate ladder, ascending.
    pub ladder: Vec<BitRate>,
    /// Expected peak-period demand `λT`, in requests.
    pub demand: f64,
    /// Objective weights `α`, `β`.
    pub weights: ObjectiveWeights,
    /// When true, the quality term is `Σ_i p_i · delivered_i` (popularity
    /// weighted); when false, `Σ_i delivered_i / M` (the paper's Eq. 1
    /// convention).
    pub popularity_weighted_quality: bool,
}

impl MultiRateProblem {
    /// Validates inputs; requires the lowest-rate single-copy deployment
    /// to fit.
    pub fn new(
        pop: Popularity,
        cluster: ClusterSpec,
        duration_s: u64,
        ladder: Vec<BitRate>,
        demand: f64,
        weights: ObjectiveWeights,
        popularity_weighted_quality: bool,
    ) -> Result<Self, ModelError> {
        if ladder.is_empty() {
            return Err(ModelError::Empty);
        }
        if !ladder.windows(2).all(|w| w[0] < w[1]) {
            return Err(ModelError::InvalidParameter {
                name: "ladder (must ascend)",
                value: ladder.len() as f64,
            });
        }
        if !demand.is_finite() || demand <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "demand",
                value: demand,
            });
        }
        let problem = MultiRateProblem {
            pop,
            cluster,
            duration_s,
            ladder,
            demand,
            weights,
            popularity_weighted_quality,
        };
        let initial = problem.initial_state();
        if !problem.is_feasible(&initial) {
            return Err(ModelError::InsufficientStorage {
                required: problem.pop.len() as u64,
                capacity: problem
                    .cluster
                    .total_replica_slots(problem.ladder[0], problem.duration_s),
            });
        }
        Ok(problem)
    }

    /// Number of videos.
    pub fn n_videos(&self) -> usize {
        self.pop.len()
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.cluster.len()
    }

    /// Lowest-rate one-replica-each round-robin deployment.
    pub fn initial_state(&self) -> MultiRateState {
        let n = self.n_servers();
        MultiRateState {
            replicas: (0..self.n_videos())
                .map(|v| {
                    vec![RatedReplica {
                        server: ServerId((v % n) as u32),
                        rate: self.ladder[0],
                    }]
                })
                .collect(),
        }
    }

    /// Per-server storage use in bytes.
    pub fn storage_used(&self, state: &MultiRateState) -> Vec<u64> {
        let mut used = vec![0u64; self.n_servers()];
        for reps in &state.replicas {
            for r in reps {
                used[r.server.index()] += r.rate.storage_bytes(self.duration_s);
            }
        }
        used
    }

    /// Per-server expected outgoing load in kbps: replica `k` of video
    /// `v` carries `p_v · demand / r_v` requests at its own rate.
    pub fn bandwidth_load(&self, state: &MultiRateState) -> Vec<f64> {
        let mut loads = vec![0.0f64; self.n_servers()];
        for (v, reps) in state.replicas.iter().enumerate() {
            let share = self.pop.get(v) * self.demand / reps.len() as f64;
            for r in reps {
                loads[r.server.index()] += share * r.rate.kbps() as f64;
            }
        }
        loads
    }

    /// Whether every constraint holds.
    pub fn is_feasible(&self, state: &MultiRateState) -> bool {
        let n = self.n_servers();
        for reps in &state.replicas {
            if reps.is_empty() || reps.len() > n {
                return false;
            }
            for (i, r) in reps.iter().enumerate() {
                if r.server.index() >= n
                    || !r.rate.in_ladder(&self.ladder)
                    || reps[..i].iter().any(|q| q.server == r.server)
                {
                    return false;
                }
            }
        }
        let used = self.storage_used(state);
        let loads = self.bandwidth_load(state);
        self.cluster
            .servers()
            .iter()
            .zip(used.iter().zip(&loads))
            .all(|(spec, (&u, &l))| {
                u <= spec.storage_bytes && l <= spec.bandwidth_kbps as f64 + 1e-6
            })
    }

    /// The adapted Eq. (1) objective (higher is better).
    pub fn objective(&self, state: &MultiRateState) -> f64 {
        let m = self.n_videos();
        let quality = if self.popularity_weighted_quality {
            (0..m)
                .map(|v| self.pop.get(v) * state.delivered_mbps(v))
                .sum::<f64>()
        } else {
            (0..m).map(|v| state.delivered_mbps(v)).sum::<f64>() / m as f64
        };
        let loads = self.bandwidth_load(state);
        let l = load::imbalance(&loads, self.weights.metric);
        self.weights.evaluate_components(quality, state.degree(), l)
    }

    /// Repairs `server` after a load-increasing move: step down or drop
    /// the lowest-rate replica hosted there (never a video's last
    /// replica). Returns false if stuck.
    fn repair(&self, state: &mut MultiRateState, server: usize) -> bool {
        let sid = ServerId(server as u32);
        let mut guard = 0;
        loop {
            let spec = &self.cluster.servers()[server];
            let (storage, bandwidth) = {
                let mut st = 0u64;
                let mut bw = 0.0f64;
                for (v, reps) in state.replicas.iter().enumerate() {
                    let share = self.pop.get(v) * self.demand / reps.len() as f64;
                    for r in reps.iter().filter(|r| r.server == sid) {
                        st += r.rate.storage_bytes(self.duration_s);
                        bw += share * r.rate.kbps() as f64;
                    }
                }
                (st, bw)
            };
            if storage <= spec.storage_bytes && bandwidth <= spec.bandwidth_kbps as f64 + 1e-6 {
                return true;
            }
            guard += 1;
            if guard > 10_000 {
                return false;
            }
            // Victim: the lowest-rate replica on this server, preferring
            // ones that can step down; otherwise a droppable one.
            let mut downgrade: Option<(usize, usize)> = None; // (video, replica idx)
            let mut droppable: Option<(usize, usize)> = None;
            for (v, reps) in state.replicas.iter().enumerate() {
                for (k, r) in reps.iter().enumerate() {
                    if r.server != sid {
                        continue;
                    }
                    if r.rate.step_down(&self.ladder).is_some()
                        && downgrade.is_none_or(|(dv, dk)| r.rate < state.replicas[dv][dk].rate)
                    {
                        downgrade = Some((v, k));
                    }
                    if reps.len() > 1
                        && droppable.is_none_or(|(dv, dk)| r.rate < state.replicas[dv][dk].rate)
                    {
                        droppable = Some((v, k));
                    }
                }
            }
            if let Some((v, k)) = downgrade {
                let down = state.replicas[v][k]
                    .rate
                    .step_down(&self.ladder)
                    .expect("checked");
                state.replicas[v][k].rate = down;
            } else if let Some((v, k)) = droppable {
                state.replicas[v].remove(k);
            } else {
                return false;
            }
        }
    }
}

impl AnnealProblem for MultiRateProblem {
    type State = MultiRateState;

    fn energy(&self, state: &MultiRateState) -> f64 {
        let mut e = -self.objective(state);
        if !self.is_feasible(state) {
            e += 1e9;
        }
        e
    }

    fn neighbor<R: Rng + ?Sized>(&self, state: &MultiRateState, rng: &mut R) -> MultiRateState {
        let mut next = state.clone();
        let n = self.n_servers();
        let server = rng.gen_range(0..n);
        let sid = ServerId(server as u32);

        // Move mix: mostly upgrades and additions, with an occasional
        // explicit drop so the chain can trade replicas back into rate
        // headroom (without it, storage-saturated replica-heavy states
        // are a strong local optimum).
        let dice = rng.gen_range(0..10);
        if dice == 0 {
            let droppable: Vec<(usize, usize)> = next
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, reps)| reps.len() > 1)
                .flat_map(|(v, reps)| {
                    reps.iter()
                        .enumerate()
                        .filter(|(_, r)| r.server == sid)
                        .map(move |(k, _)| (v, k))
                })
                .collect();
            if droppable.is_empty() {
                return state.clone();
            }
            let (v, k) = droppable[rng.gen_range(0..droppable.len())];
            next.replicas[v].remove(k);
            return next; // dropping load never violates constraints
        }

        let mut moved = false;
        if dice < 5 {
            // Upgrade one replica hosted on the server.
            let hosted: Vec<(usize, usize)> = next
                .replicas
                .iter()
                .enumerate()
                .flat_map(|(v, reps)| {
                    reps.iter()
                        .enumerate()
                        .filter(|(_, r)| r.server == sid)
                        .map(move |(k, _)| (v, k))
                })
                .collect();
            if !hosted.is_empty() {
                let (v, k) = hosted[rng.gen_range(0..hosted.len())];
                if let Some(up) = next.replicas[v][k].rate.step_up(&self.ladder) {
                    next.replicas[v][k].rate = up;
                    moved = true;
                }
            }
        }
        if !moved {
            // Add a lowest-rate replica of a video absent from the server.
            let absent: Vec<usize> = next
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, reps)| reps.len() < n && !reps.iter().any(|r| r.server == sid))
                .map(|(v, _)| v)
                .collect();
            if absent.is_empty() {
                return state.clone();
            }
            let v = absent[rng.gen_range(0..absent.len())];
            next.replicas[v].push(RatedReplica {
                server: sid,
                rate: self.ladder[0],
            });
        }

        let mut ok = self.repair(&mut next, server);
        if ok {
            // Adding/removing replicas shifts shares on other servers too.
            for j in 0..n {
                if j != server {
                    ok = self.repair(&mut next, j);
                    if !ok {
                        break;
                    }
                }
            }
        }
        if ok && self.is_feasible(&next) {
            next
        } else {
            state.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{anneal, AnnealParams};
    use crate::schedule::CoolingSchedule;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vod_model::ServerSpec;

    fn problem(weighted: bool) -> MultiRateProblem {
        let low_bytes = BitRate::LADDER[0].storage_bytes(5_400);
        MultiRateProblem::new(
            Popularity::zipf(12, 1.0).unwrap(),
            ClusterSpec::homogeneous(
                4,
                ServerSpec {
                    storage_bytes: 8 * low_bytes,
                    bandwidth_kbps: 1_800_000,
                },
            )
            .unwrap(),
            5_400,
            BitRate::LADDER.to_vec(),
            1_500.0,
            ObjectiveWeights::default(),
            weighted,
        )
        .unwrap()
    }

    #[test]
    fn initial_is_feasible() {
        let p = problem(false);
        let s = p.initial_state();
        assert!(p.is_feasible(&s));
        assert!((s.degree() - 1.0).abs() < 1e-12);
        assert!((s.delivered_mbps(0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn neighbor_preserves_feasibility_and_identity() {
        let p = problem(false);
        let mut s = p.initial_state();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for _ in 0..400 {
            s = p.neighbor(&s, &mut rng);
            assert!(p.is_feasible(&s));
            assert!(s.replicas.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn replicas_of_one_video_can_differ_in_rate() {
        // The defining capability of the extension: walk until some video
        // holds replicas at two different rates.
        let p = problem(false);
        let mut s = p.initial_state();
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let mut found = false;
        for _ in 0..2_000 {
            s = p.neighbor(&s, &mut rng);
            if s.replicas
                .iter()
                .any(|reps| reps.len() > 1 && reps.iter().any(|r| r.rate != reps[0].rate))
            {
                found = true;
                break;
            }
        }
        assert!(found, "no mixed-rate video emerged in 2000 moves");
    }

    #[test]
    fn annealing_improves_objective() {
        let p = problem(false);
        let initial = p.initial_state();
        let o0 = p.objective(&initial);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let result = anneal(
            &p,
            initial,
            &AnnealParams {
                schedule: CoolingSchedule::default_geometric(0.5),
                epochs: 50,
                steps_per_epoch: 60,
            },
            &mut rng,
        );
        assert!(p.objective(&result.best_state) > o0);
        assert!(p.is_feasible(&result.best_state));
    }

    #[test]
    fn weighted_objective_prefers_hot_title_quality() {
        // Same state, two objectives (β = 0 isolates the quality term):
        // raising the top title's delivered rate moves the weighted
        // objective more than the unweighted one.
        let quality_only = ObjectiveWeights::new(1.0, 0.0).unwrap();
        let mut pu = problem(false);
        pu.weights = quality_only;
        let mut pw = problem(true);
        pw.weights = quality_only;
        let base = pu.initial_state();
        let mut upgraded = base.clone();
        upgraded.replicas[0][0].rate = BitRate::LADDER[1];

        let du = pu.objective(&upgraded) - pu.objective(&base);
        let dw = pw.objective(&upgraded) - pw.objective(&base);
        assert!(du > 0.0 && dw > 0.0);
        // p_0 ≈ 0.32 under Zipf(12, 1.0) > 1/12: the weighted gain is larger.
        assert!(dw > du, "weighted {dw} should exceed unweighted {du}");
    }

    #[test]
    fn rejects_bad_construction() {
        let tiny = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: 1,
                bandwidth_kbps: 1_000_000,
            },
        )
        .unwrap();
        assert!(MultiRateProblem::new(
            Popularity::zipf(4, 0.5).unwrap(),
            tiny,
            5_400,
            BitRate::LADDER.to_vec(),
            100.0,
            ObjectiveWeights::default(),
            false,
        )
        .is_err());
    }
}
