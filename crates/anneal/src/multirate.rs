//! Multi-rate replicas — the paper's future-work extension.
//!
//! "The replication and placement framework in this article provides a
//! flexible way to maintain multiple replicas of a video with different
//! encoding bit rates. The flexibility can facilitate providing different
//! qualities to requests for various videos or to requests from various
//! clients/devices. We will report our experience in future work"
//! (paper, Sec. 6). The authors never published that follow-up; this
//! module builds the natural formulation on top of the same annealing
//! substrate.
//!
//! Differences from [`crate::problem::ScalableProblem`]:
//!
//! * each replica carries its **own** bit rate (constraint "all replicas
//!   share one rate" is dropped);
//! * the quality term of Eq. (1) becomes the *delivered* quality: under
//!   static round-robin each replica serves an equal share of its video's
//!   requests, so video `i` delivers the mean of its replica rates; the
//!   configurable objective averages that per video either unweighted
//!   (the paper's Eq. 1 convention) or weighted by popularity (the
//!   variant that makes hot titles sharp — see the SA-2 experiment for
//!   the contrast);
//! * the neighborhood upgrades a single replica, or adds a lowest-rate
//!   replica, with the same decrease-or-drop repair discipline, plus an
//!   occasional explicit replica drop.
//!
//! Like the scalable problem, both search paths are provided: the
//! legacy clone-based [`NeighborProblem`] and the delta-evaluated
//! [`AnnealProblem`] over [`MultiRateSearch`] with incrementally
//! maintained per-server aggregates. One legacy quirk is reproduced
//! deliberately: an explicit drop was returned *without* repair, so a
//! drop that overloads the survivors produced an infeasible candidate
//! whose 1e9-penalized energy went through a Metropolis draw (and was
//! rejected for any sane temperature). The delta path proposes the same
//! drop, detects the violation against cached headroom, and returns the
//! same penalized candidate energy while keeping the state feasible —
//! consuming the identical RNG draw, so both paths walk the same
//! trajectory from the same seed.

use crate::delta::{nth_absent, sorted_insert, sorted_remove, SnapLog, TxnStatus};
use crate::engine::{AnnealProblem, NeighborProblem};
use rand::Rng;
use serde::{Deserialize, Serialize};
use vod_model::{load, BitRate, ClusterSpec, ModelError, ObjectiveWeights, Popularity, ServerId};

/// One placed replica: where it lives and how it is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RatedReplica {
    /// Host server.
    pub server: ServerId,
    /// This replica's encoding rate.
    pub rate: BitRate,
}

/// A search-space point: per-video list of rated replicas (servers
/// pairwise distinct per video).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiRateState {
    /// Replicas of each video.
    pub replicas: Vec<Vec<RatedReplica>>,
}

impl MultiRateState {
    /// Mean delivered rate of video `v` in Mbps (replicas serve equal
    /// request shares under static round robin).
    pub fn delivered_mbps(&self, v: usize) -> f64 {
        let reps = &self.replicas[v];
        reps.iter().map(|r| r.rate.mbps()).sum::<f64>() / reps.len() as f64
    }

    /// Mean replication degree.
    pub fn degree(&self) -> f64 {
        self.replicas.iter().map(|r| r.len() as f64).sum::<f64>() / self.replicas.len() as f64
    }
}

/// The multi-rate replication/placement problem.
#[derive(Debug, Clone)]
pub struct MultiRateProblem {
    /// Video popularities (rank-ordered; video id = rank).
    pub pop: Popularity,
    /// The cluster's capacities.
    pub cluster: ClusterSpec,
    /// Video duration in seconds.
    pub duration_s: u64,
    /// The discrete rate ladder, ascending.
    pub ladder: Vec<BitRate>,
    /// Expected peak-period demand `λT`, in requests.
    pub demand: f64,
    /// Objective weights `α`, `β`.
    pub weights: ObjectiveWeights,
    /// When true, the quality term is `Σ_i p_i · delivered_i` (popularity
    /// weighted); when false, `Σ_i delivered_i / M` (the paper's Eq. 1
    /// convention).
    pub popularity_weighted_quality: bool,
}

impl MultiRateProblem {
    /// Validates inputs; requires the lowest-rate single-copy deployment
    /// to fit.
    pub fn new(
        pop: Popularity,
        cluster: ClusterSpec,
        duration_s: u64,
        ladder: Vec<BitRate>,
        demand: f64,
        weights: ObjectiveWeights,
        popularity_weighted_quality: bool,
    ) -> Result<Self, ModelError> {
        if ladder.is_empty() {
            return Err(ModelError::Empty);
        }
        if !ladder.windows(2).all(|w| w[0] < w[1]) {
            return Err(ModelError::InvalidParameter {
                name: "ladder (must ascend)",
                value: ladder.len() as f64,
            });
        }
        if !demand.is_finite() || demand <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "demand",
                value: demand,
            });
        }
        let problem = MultiRateProblem {
            pop,
            cluster,
            duration_s,
            ladder,
            demand,
            weights,
            popularity_weighted_quality,
        };
        let initial = problem.initial_state();
        if !problem.is_feasible(&initial) {
            return Err(ModelError::InsufficientStorage {
                required: problem.pop.len() as u64,
                capacity: problem
                    .cluster
                    .total_replica_slots(problem.ladder[0], problem.duration_s),
            });
        }
        Ok(problem)
    }

    /// Number of videos.
    pub fn n_videos(&self) -> usize {
        self.pop.len()
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.cluster.len()
    }

    /// Lowest-rate one-replica-each round-robin deployment.
    pub fn initial_state(&self) -> MultiRateState {
        let n = self.n_servers();
        MultiRateState {
            replicas: (0..self.n_videos())
                .map(|v| {
                    vec![RatedReplica {
                        server: ServerId((v % n) as u32),
                        rate: self.ladder[0],
                    }]
                })
                .collect(),
        }
    }

    /// Per-server storage use in bytes.
    pub fn storage_used(&self, state: &MultiRateState) -> Vec<u64> {
        let mut used = vec![0u64; self.n_servers()];
        for reps in &state.replicas {
            for r in reps {
                used[r.server.index()] += r.rate.storage_bytes(self.duration_s);
            }
        }
        used
    }

    /// Per-server expected outgoing load in kbps: replica `k` of video
    /// `v` carries `p_v · demand / r_v` requests at its own rate.
    pub fn bandwidth_load(&self, state: &MultiRateState) -> Vec<f64> {
        let mut loads = vec![0.0f64; self.n_servers()];
        for (v, reps) in state.replicas.iter().enumerate() {
            let share = self.pop.get(v) * self.demand / reps.len() as f64;
            for r in reps {
                loads[r.server.index()] += share * r.rate.kbps() as f64;
            }
        }
        loads
    }

    /// Whether every constraint holds.
    pub fn is_feasible(&self, state: &MultiRateState) -> bool {
        let n = self.n_servers();
        for reps in &state.replicas {
            if reps.is_empty() || reps.len() > n {
                return false;
            }
            for (i, r) in reps.iter().enumerate() {
                if r.server.index() >= n
                    || !r.rate.in_ladder(&self.ladder)
                    || reps[..i].iter().any(|q| q.server == r.server)
                {
                    return false;
                }
            }
        }
        let used = self.storage_used(state);
        let loads = self.bandwidth_load(state);
        self.cluster
            .servers()
            .iter()
            .zip(used.iter().zip(&loads))
            .all(|(spec, (&u, &l))| {
                u <= spec.storage_bytes && l <= spec.bandwidth_kbps as f64 + 1e-6
            })
    }

    /// The adapted Eq. (1) objective (higher is better).
    pub fn objective(&self, state: &MultiRateState) -> f64 {
        let m = self.n_videos();
        let quality = if self.popularity_weighted_quality {
            (0..m)
                .map(|v| self.pop.get(v) * state.delivered_mbps(v))
                .sum::<f64>()
        } else {
            (0..m).map(|v| state.delivered_mbps(v)).sum::<f64>() / m as f64
        };
        let loads = self.bandwidth_load(state);
        let l = load::imbalance(&loads, self.weights.metric);
        self.weights.evaluate_components(quality, state.degree(), l)
    }

    /// Energy (`−O`, plus the legacy 1e9 penalty if infeasible) from a
    /// full recompute — the reference both search paths must agree with.
    fn scratch_energy(&self, state: &MultiRateState) -> f64 {
        let mut e = -self.objective(state);
        if !self.is_feasible(state) {
            e += 1e9;
        }
        e
    }

    /// Repairs `server` after a load-increasing move: step down or drop
    /// the lowest-rate replica hosted there (never a video's last
    /// replica). Returns false if stuck.
    fn repair(&self, state: &mut MultiRateState, server: usize) -> bool {
        let sid = ServerId(server as u32);
        let mut guard = 0;
        loop {
            let spec = &self.cluster.servers()[server];
            let (storage, bandwidth) = {
                let mut st = 0u64;
                let mut bw = 0.0f64;
                for (v, reps) in state.replicas.iter().enumerate() {
                    let share = self.pop.get(v) * self.demand / reps.len() as f64;
                    for r in reps.iter().filter(|r| r.server == sid) {
                        st += r.rate.storage_bytes(self.duration_s);
                        bw += share * r.rate.kbps() as f64;
                    }
                }
                (st, bw)
            };
            if storage <= spec.storage_bytes && bandwidth <= spec.bandwidth_kbps as f64 + 1e-6 {
                return true;
            }
            guard += 1;
            if guard > 10_000 {
                return false;
            }
            // Victim: the lowest-rate replica on this server, preferring
            // ones that can step down; otherwise a droppable one.
            let mut downgrade: Option<(usize, usize)> = None; // (video, replica idx)
            let mut droppable: Option<(usize, usize)> = None;
            for (v, reps) in state.replicas.iter().enumerate() {
                for (k, r) in reps.iter().enumerate() {
                    if r.server != sid {
                        continue;
                    }
                    if r.rate.step_down(&self.ladder).is_some()
                        && downgrade.is_none_or(|(dv, dk)| r.rate < state.replicas[dv][dk].rate)
                    {
                        downgrade = Some((v, k));
                    }
                    if reps.len() > 1
                        && droppable.is_none_or(|(dv, dk)| r.rate < state.replicas[dv][dk].rate)
                    {
                        droppable = Some((v, k));
                    }
                }
            }
            if let Some((v, k)) = downgrade {
                let down = state.replicas[v][k]
                    .rate
                    .step_down(&self.ladder)
                    .expect("checked");
                state.replicas[v][k].rate = down;
            } else if let Some((v, k)) = droppable {
                state.replicas[v].remove(k);
            } else {
                return false;
            }
        }
    }

    /// Wraps a feasible state into the delta-evaluated search
    /// representation, building all cached aggregates from scratch.
    pub fn search_state(&self, state: MultiRateState) -> MultiRateSearch {
        debug_assert!(
            self.is_feasible(&state),
            "search_state expects a feasible state"
        );
        let n = self.n_servers();
        let m = self.n_videos();
        let storage = self.storage_used(&state);
        let load = self.bandwidth_load(&state);
        let mut hosted = vec![Vec::new(); n];
        for (v, reps) in state.replicas.iter().enumerate() {
            for r in reps {
                hosted[r.server.index()].push(v as u32);
            }
        }
        for h in &mut hosted {
            h.sort_unstable();
        }
        let vsum: Vec<f64> = state
            .replicas
            .iter()
            .map(|reps| reps.iter().map(|r| r.rate.mbps()).sum())
            .collect();
        let q_sum = (0..m)
            .map(|v| self.quality_weight(v) * (vsum[v] / state.replicas[v].len() as f64))
            .sum();
        let replica_total = state.replicas.iter().map(|r| r.len() as u64).sum();
        let mut search = MultiRateSearch {
            state,
            cache: MultiRateCache {
                storage,
                load,
                hosted,
                vsum,
                q_sum,
                replica_total,
                energy: 0.0,
            },
            txn: MultiRateTxn::default(),
        };
        search.recompute_energy(self);
        search
    }

    /// [`search_state`](MultiRateProblem::search_state) of the initial
    /// deployment.
    pub fn initial_search(&self) -> MultiRateSearch {
        self.search_state(self.initial_state())
    }

    /// Per-video weight of the delivered-quality term: `p_v` when
    /// popularity-weighted, otherwise 1 (the `1/M` normalization is
    /// folded in at energy time).
    fn quality_weight(&self, v: usize) -> f64 {
        if self.popularity_weighted_quality {
            self.pop.get(v)
        } else {
            1.0
        }
    }
}

/// Cached aggregates of a [`MultiRateSearch`]; maintained incrementally
/// by moves and restored bit-for-bit on revert.
#[derive(Debug, Clone, PartialEq)]
struct MultiRateCache {
    /// Bytes stored per server.
    storage: Vec<u64>,
    /// Expected outgoing kbps per server.
    load: Vec<f64>,
    /// Videos hosted per server, ascending (at most one replica of a
    /// video per server).
    hosted: Vec<Vec<u32>>,
    /// Per-video sum of replica rates in Mbps (`delivered_i` numerator).
    vsum: Vec<f64>,
    /// `Σ_i w_i · delivered_i` with `w_i` from
    /// [`MultiRateProblem::quality_weight`].
    q_sum: f64,
    /// `Σ_i r_i`.
    replica_total: u64,
    /// Energy (`−O`) of the current state.
    energy: f64,
}

/// Structural undo record for one elementary mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MultiRateUndo {
    /// `replicas[video][idx].rate` was `old`.
    ReplicaRate { video: u32, idx: u32, old: BitRate },
    /// A replica was appended to `replicas[video]`.
    PushedReplica { video: u32 },
    /// `replicas[video][pos]` was removed (`replica` holds its data).
    RemovedReplica {
        video: u32,
        pos: u32,
        replica: RatedReplica,
    },
}

/// Scratch transaction state: undo logs and pre-move snapshots.
#[derive(Debug, Clone, Default)]
struct MultiRateTxn {
    status: TxnStatus,
    pending: Option<MultiRateMove>,
    undo: Vec<MultiRateUndo>,
    load_snap: SnapLog<f64>,
    storage_snap: SnapLog<u64>,
    vsum_snap: SnapLog<f64>,
    q_sum_snap: f64,
    replica_total_snap: u64,
    energy_snap: f64,
}

/// The delta-evaluated search representation of the multi-rate problem.
/// Build one with [`MultiRateProblem::search_state`]; equality compares
/// state and caches (not scratch).
#[derive(Debug, Clone)]
pub struct MultiRateSearch {
    state: MultiRateState,
    cache: MultiRateCache,
    txn: MultiRateTxn,
}

impl PartialEq for MultiRateSearch {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state && self.cache == other.cache
    }
}

impl MultiRateSearch {
    /// The underlying search-space point.
    pub fn state(&self) -> &MultiRateState {
        &self.state
    }

    /// Unwraps into the underlying search-space point.
    pub fn into_state(self) -> MultiRateState {
        self.state
    }

    /// Opens a move transaction.
    fn begin(&mut self, n_servers: usize, n_videos: usize) {
        debug_assert!(
            matches!(self.txn.status, TxnStatus::Idle | TxnStatus::Committed),
            "begin over an unresolved tentative move"
        );
        self.txn.undo.clear();
        self.txn.load_snap.begin(n_servers);
        self.txn.storage_snap.begin(n_servers);
        self.txn.vsum_snap.begin(n_videos);
        self.txn.q_sum_snap = self.cache.q_sum;
        self.txn.replica_total_snap = self.cache.replica_total;
        self.txn.energy_snap = self.cache.energy;
        self.txn.status = TxnStatus::Idle;
        self.txn.pending = None;
    }

    /// Undoes the open (or still-logged) transaction, restoring state
    /// and caches bit-for-bit.
    fn rollback(&mut self) {
        while let Some(entry) = self.txn.undo.pop() {
            match entry {
                MultiRateUndo::ReplicaRate { video, idx, old } => {
                    self.state.replicas[video as usize][idx as usize].rate = old;
                }
                MultiRateUndo::PushedReplica { video } => {
                    let rep = self.state.replicas[video as usize]
                        .pop()
                        .expect("pushed replica present");
                    sorted_remove(&mut self.cache.hosted[rep.server.index()], video);
                }
                MultiRateUndo::RemovedReplica {
                    video,
                    pos,
                    replica,
                } => {
                    self.state.replicas[video as usize].insert(pos as usize, replica);
                    sorted_insert(&mut self.cache.hosted[replica.server.index()], video);
                }
            }
        }
        self.txn.load_snap.rollback(&mut self.cache.load);
        self.txn.storage_snap.rollback(&mut self.cache.storage);
        self.txn.vsum_snap.rollback(&mut self.cache.vsum);
        self.cache.q_sum = self.txn.q_sum_snap;
        self.cache.replica_total = self.txn.replica_total_snap;
        self.cache.energy = self.txn.energy_snap;
        self.txn.status = TxnStatus::Idle;
        self.txn.pending = None;
    }

    /// Cached constraint check for one server.
    fn server_ok(&self, p: &MultiRateProblem, server: usize) -> bool {
        let spec = &p.cluster.servers()[server];
        self.cache.storage[server] <= spec.storage_bytes
            && self.cache.load[server] <= spec.bandwidth_kbps as f64 + 1e-6
    }

    /// Updates the cached quality sum after `video`'s replica set or
    /// rates changed: `vsum` must already hold the *new* rate sum.
    fn requality(&mut self, p: &MultiRateProblem, video: usize, old_delivered: f64) {
        let new_delivered = self.cache.vsum[video] / self.state.replicas[video].len() as f64;
        self.cache.q_sum += p.quality_weight(video) * (new_delivered - old_delivered);
    }

    /// Current delivered quality of `video` from the cache.
    fn delivered(&self, video: usize) -> f64 {
        self.cache.vsum[video] / self.state.replicas[video].len() as f64
    }

    /// Re-rates replica `idx` of `video` in place.
    fn set_replica_rate(&mut self, p: &MultiRateProblem, video: usize, idx: usize, new: BitRate) {
        let old = self.state.replicas[video][idx].rate;
        let server = self.state.replicas[video][idx].server.index();
        self.txn.undo.push(MultiRateUndo::ReplicaRate {
            video: video as u32,
            idx: idx as u32,
            old,
        });
        let share = p.pop.get(video) * p.demand / self.state.replicas[video].len() as f64;
        self.txn.load_snap.touch(server, self.cache.load[server]);
        self.cache.load[server] =
            self.cache.load[server] - share * old.kbps() as f64 + share * new.kbps() as f64;
        self.txn
            .storage_snap
            .touch(server, self.cache.storage[server]);
        self.cache.storage[server] = self.cache.storage[server] - old.storage_bytes(p.duration_s)
            + new.storage_bytes(p.duration_s);
        let old_delivered = self.delivered(video);
        self.txn.vsum_snap.touch(video, self.cache.vsum[video]);
        self.cache.vsum[video] += new.mbps() - old.mbps();
        self.state.replicas[video][idx].rate = new;
        self.requality(p, video, old_delivered);
    }

    /// Adds a lowest-available `rate` replica of `video` on `server`.
    fn add_replica(&mut self, p: &MultiRateProblem, video: usize, server: usize, rate: BitRate) {
        let pd = p.pop.get(video) * p.demand;
        let r_old = self.state.replicas[video].len() as f64;
        let old_share = pd / r_old;
        let new_share = pd / (r_old + 1.0);
        for k in 0..self.state.replicas[video].len() {
            let rep = self.state.replicas[video][k];
            let s = rep.server.index();
            let kbps = rep.rate.kbps() as f64;
            self.txn.load_snap.touch(s, self.cache.load[s]);
            self.cache.load[s] = self.cache.load[s] - old_share * kbps + new_share * kbps;
        }
        self.txn
            .storage_snap
            .touch(server, self.cache.storage[server]);
        self.cache.storage[server] += rate.storage_bytes(p.duration_s);
        self.txn.load_snap.touch(server, self.cache.load[server]);
        self.cache.load[server] += new_share * rate.kbps() as f64;
        let old_delivered = self.delivered(video);
        self.txn.vsum_snap.touch(video, self.cache.vsum[video]);
        self.cache.vsum[video] += rate.mbps();
        self.state.replicas[video].push(RatedReplica {
            server: ServerId(server as u32),
            rate,
        });
        sorted_insert(&mut self.cache.hosted[server], video as u32);
        self.cache.replica_total += 1;
        self.txn.undo.push(MultiRateUndo::PushedReplica {
            video: video as u32,
        });
        self.requality(p, video, old_delivered);
    }

    /// Removes replica `pos` of `video` (not its last one).
    fn remove_replica(&mut self, p: &MultiRateProblem, video: usize, pos: usize) {
        let removed = self.state.replicas[video][pos];
        let pd = p.pop.get(video) * p.demand;
        let r_old = self.state.replicas[video].len() as f64;
        let old_share = pd / r_old;
        let new_share = pd / (r_old - 1.0);
        for k in 0..self.state.replicas[video].len() {
            let rep = self.state.replicas[video][k];
            let s = rep.server.index();
            let kbps = rep.rate.kbps() as f64;
            self.txn.load_snap.touch(s, self.cache.load[s]);
            if k == pos {
                self.cache.load[s] -= old_share * kbps;
            } else {
                self.cache.load[s] = self.cache.load[s] - old_share * kbps + new_share * kbps;
            }
        }
        let server = removed.server.index();
        self.txn
            .storage_snap
            .touch(server, self.cache.storage[server]);
        self.cache.storage[server] -= removed.rate.storage_bytes(p.duration_s);
        let old_delivered = self.delivered(video);
        self.txn.vsum_snap.touch(video, self.cache.vsum[video]);
        self.cache.vsum[video] -= removed.rate.mbps();
        self.state.replicas[video].remove(pos);
        sorted_remove(&mut self.cache.hosted[server], video as u32);
        self.cache.replica_total -= 1;
        self.txn.undo.push(MultiRateUndo::RemovedReplica {
            video: video as u32,
            pos: pos as u32,
            replica: removed,
        });
        self.requality(p, video, old_delivered);
    }

    /// Position of `video`'s replica on `server` within its replica
    /// list (unique: servers are pairwise distinct per video).
    fn replica_pos(&self, video: usize, server: usize) -> usize {
        let sid = ServerId(server as u32);
        self.state.replicas[video]
            .iter()
            .position(|r| r.server == sid)
            .expect("replica hosted on server")
    }

    /// Cached-aggregate mirror of [`MultiRateProblem::repair`]: same
    /// victim preference (strictly-lowest rate, first video among ties;
    /// downgrades before drops).
    fn repair(&mut self, p: &MultiRateProblem, server: usize) -> bool {
        let sid = ServerId(server as u32);
        let mut guard = 0;
        while !self.server_ok(p, server) {
            guard += 1;
            if guard > 10_000 {
                return false;
            }
            let mut downgrade: Option<(BitRate, u32, u32)> = None; // rate, video, idx
            let mut droppable: Option<(BitRate, u32, u32)> = None;
            for &v in &self.cache.hosted[server] {
                let reps = &self.state.replicas[v as usize];
                let k = reps
                    .iter()
                    .position(|r| r.server == sid)
                    .expect("hosted list consistent");
                let rate = reps[k].rate;
                if rate.step_down(&p.ladder).is_some()
                    && downgrade.is_none_or(|(best, _, _)| rate < best)
                {
                    downgrade = Some((rate, v, k as u32));
                }
                if reps.len() > 1 && droppable.is_none_or(|(best, _, _)| rate < best) {
                    droppable = Some((rate, v, k as u32));
                }
            }
            if let Some((rate, v, k)) = downgrade {
                let down = rate.step_down(&p.ladder).expect("checked");
                self.set_replica_rate(p, v as usize, k as usize, down);
            } else if let Some((_, v, k)) = droppable {
                self.remove_replica(p, v as usize, k as usize);
            } else {
                return false;
            }
        }
        true
    }

    /// Recomputes the cached energy from the cached Eq. (1) component
    /// aggregates.
    fn recompute_energy(&mut self, p: &MultiRateProblem) {
        let m = p.n_videos() as f64;
        let quality = if p.popularity_weighted_quality {
            self.cache.q_sum
        } else {
            self.cache.q_sum / m
        };
        let degree = self.cache.replica_total as f64 / m;
        let l = load::imbalance(&self.cache.load, p.weights.metric);
        self.cache.energy = -p.weights.evaluate_components(quality, degree, l);
    }

    /// Whether the open transaction's net effect on the *state* is the
    /// identity — e.g. an added replica that repair immediately dropped,
    /// or an upgrade stepped straight back down. The legacy path saw
    /// two equal states there and got an exactly-zero energy delta
    /// (accepting without a Metropolis draw); the caller must reproduce
    /// that by rolling back the (drifted) caches and reporting the
    /// current energy unchanged.
    fn txn_is_identity(&self) -> bool {
        let undo = &self.txn.undo;
        // At most one push per move (the primary op); repair only
        // downgrades or removes. `pushed` tracks whether it is still
        // uncancelled.
        let mut pushed: Option<u32> = None;
        for (i, e) in undo.iter().enumerate() {
            match *e {
                MultiRateUndo::ReplicaRate { video, idx, old } => {
                    // Only a slot's first record holds its original value.
                    let first = !undo[..i].iter().any(|p| {
                        matches!(*p, MultiRateUndo::ReplicaRate { video: v, idx: k, .. }
                            if v == video && k == idx)
                    });
                    if first && self.state.replicas[video as usize][idx as usize].rate != old {
                        return false;
                    }
                }
                MultiRateUndo::PushedReplica { video } => pushed = Some(video),
                MultiRateUndo::RemovedReplica { video, pos, .. } => {
                    // Cancels the push only if it removed the appended
                    // replica itself (always the last slot); any other
                    // removal is irreversible within one move.
                    if pushed == Some(video)
                        && pos as usize == self.state.replicas[video as usize].len()
                    {
                        pushed = None;
                    } else {
                        return false;
                    }
                }
            }
        }
        pushed.is_none()
    }
}

/// One elementary move of the delta-evaluated multi-rate search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiRateMove {
    kind: MultiRateMoveKind,
    video: u32,
    server: u32,
}

/// What a [`MultiRateMove`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MultiRateMoveKind {
    /// Drop `video`'s replica on `server` (an explicit load-shedding
    /// move; applied without repair, like the legacy path).
    Drop,
    /// Step the rate of `video`'s replica on `server` up one rung.
    Upgrade,
    /// Add a lowest-rate replica of `video` on `server`.
    Add,
}

/// Legacy clone-based search path (reference implementation).
impl NeighborProblem for MultiRateProblem {
    type State = MultiRateState;

    fn energy(&self, state: &MultiRateState) -> f64 {
        self.scratch_energy(state)
    }

    fn neighbor<R: Rng + ?Sized>(&self, state: &MultiRateState, rng: &mut R) -> MultiRateState {
        let mut next = state.clone();
        let n = self.n_servers();
        let server = rng.gen_range(0..n);
        let sid = ServerId(server as u32);

        // Move mix: mostly upgrades and additions, with an occasional
        // explicit drop so the chain can trade replicas back into rate
        // headroom (without it, storage-saturated replica-heavy states
        // are a strong local optimum).
        let dice = rng.gen_range(0..10);
        if dice == 0 {
            let droppable: Vec<(usize, usize)> = next
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, reps)| reps.len() > 1)
                .flat_map(|(v, reps)| {
                    reps.iter()
                        .enumerate()
                        .filter(|(_, r)| r.server == sid)
                        .map(move |(k, _)| (v, k))
                })
                .collect();
            if droppable.is_empty() {
                return state.clone();
            }
            let (v, k) = droppable[rng.gen_range(0..droppable.len())];
            next.replicas[v].remove(k);
            return next; // unrepaired: an overloading drop is penalized away
        }

        let mut moved = false;
        if dice < 5 {
            // Upgrade one replica hosted on the server.
            let hosted: Vec<(usize, usize)> = next
                .replicas
                .iter()
                .enumerate()
                .flat_map(|(v, reps)| {
                    reps.iter()
                        .enumerate()
                        .filter(|(_, r)| r.server == sid)
                        .map(move |(k, _)| (v, k))
                })
                .collect();
            if !hosted.is_empty() {
                let (v, k) = hosted[rng.gen_range(0..hosted.len())];
                if let Some(up) = next.replicas[v][k].rate.step_up(&self.ladder) {
                    next.replicas[v][k].rate = up;
                    moved = true;
                }
            }
        }
        if !moved {
            // Add a lowest-rate replica of a video absent from the server.
            let absent: Vec<usize> = next
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, reps)| reps.len() < n && !reps.iter().any(|r| r.server == sid))
                .map(|(v, _)| v)
                .collect();
            if absent.is_empty() {
                return state.clone();
            }
            let v = absent[rng.gen_range(0..absent.len())];
            next.replicas[v].push(RatedReplica {
                server: sid,
                rate: self.ladder[0],
            });
        }

        let mut ok = self.repair(&mut next, server);
        if ok {
            // Adding/removing replicas shifts shares on other servers too.
            for j in 0..n {
                if j != server {
                    ok = self.repair(&mut next, j);
                    if !ok {
                        break;
                    }
                }
            }
        }
        if ok && self.is_feasible(&next) {
            next
        } else {
            state.clone()
        }
    }
}

/// Delta-evaluated search path.
impl AnnealProblem for MultiRateProblem {
    type State = MultiRateSearch;
    type Move = MultiRateMove;

    fn energy(&self, search: &MultiRateSearch) -> f64 {
        self.scratch_energy(&search.state)
    }

    fn state_energy(&self, search: &MultiRateSearch) -> f64 {
        search.cache.energy
    }

    /// Draws the legacy neighborhood's RNG sequence: server, the 0..10
    /// move die, then an index into the relevant candidate list —
    /// counted and rank-selected from the cached hosted lists, with no
    /// per-call allocation.
    fn propose_move<R: Rng + ?Sized>(
        &self,
        search: &mut MultiRateSearch,
        rng: &mut R,
    ) -> Option<MultiRateMove> {
        let n = self.n_servers();
        let server = rng.gen_range(0..n);
        let dice = rng.gen_range(0..10);
        if dice == 0 {
            // Count-then-pick over hosted videos with spare replicas
            // (the legacy path materialized this list on every call).
            let droppable = search.cache.hosted[server]
                .iter()
                .filter(|&&v| search.state.replicas[v as usize].len() > 1)
                .count();
            if droppable == 0 {
                return None;
            }
            let pick = rng.gen_range(0..droppable);
            let v = *search.cache.hosted[server]
                .iter()
                .filter(|&&v| search.state.replicas[v as usize].len() > 1)
                .nth(pick)
                .expect("pick < droppable count");
            return Some(MultiRateMove {
                kind: MultiRateMoveKind::Drop,
                video: v,
                server: server as u32,
            });
        }
        if dice < 5 {
            let hosted = &search.cache.hosted[server];
            if !hosted.is_empty() {
                let v = hosted[rng.gen_range(0..hosted.len())];
                let k = search.replica_pos(v as usize, server);
                if search.state.replicas[v as usize][k]
                    .rate
                    .step_up(&self.ladder)
                    .is_some()
                {
                    return Some(MultiRateMove {
                        kind: MultiRateMoveKind::Upgrade,
                        video: v,
                        server: server as u32,
                    });
                }
                // Top rung already: fall through to the add branch,
                // like the legacy `moved = false` path.
            }
        }
        let hosted = &search.cache.hosted[server];
        let absent = self.n_videos() - hosted.len();
        if absent == 0 {
            return None;
        }
        let v = nth_absent(hosted, rng.gen_range(0..absent));
        Some(MultiRateMove {
            kind: MultiRateMoveKind::Add,
            video: v,
            server: server as u32,
        })
    }

    fn evaluate_move(&self, search: &mut MultiRateSearch, mv: &MultiRateMove) -> Option<f64> {
        let n = self.n_servers();
        search.begin(n, self.n_videos());
        let video = mv.video as usize;
        let server = mv.server as usize;
        match mv.kind {
            MultiRateMoveKind::Drop => {
                let pos = search.replica_pos(video, server);
                search.remove_replica(self, video, pos);
                search.recompute_energy(self);
                if (0..n).all(|j| search.server_ok(self, j)) {
                    search.txn.status = TxnStatus::Tentative;
                    search.txn.pending = Some(*mv);
                    return Some(search.cache.energy);
                }
                // The legacy path returned this infeasible candidate and
                // let its 1e9-penalized energy lose the Metropolis draw.
                // Reproduce the identical draw (and its penalized energy)
                // while keeping the live state feasible: roll back now
                // and hand the engine a candidate it will reject.
                let penalized = search.cache.energy + 1e9;
                search.rollback();
                return Some(penalized);
            }
            MultiRateMoveKind::Upgrade => {
                let pos = search.replica_pos(video, server);
                let up = search.state.replicas[video][pos]
                    .rate
                    .step_up(&self.ladder)
                    .expect("proposed upgrade has ladder headroom");
                search.set_replica_rate(self, video, pos, up);
            }
            MultiRateMoveKind::Add => {
                search.add_replica(self, video, server, self.ladder[0]);
            }
        }
        let mut ok = search.repair(self, server);
        if ok {
            // Adding replicas shifts request shares on other servers too;
            // the legacy path re-ran repair everywhere (each run is a
            // no-op when the server already fits).
            for j in 0..n {
                if j != server {
                    ok = search.repair(self, j);
                    if !ok {
                        break;
                    }
                }
            }
        }
        ok = ok && (0..n).all(|j| search.server_ok(self, j));
        if !ok {
            search.rollback();
            return None;
        }
        if search.txn_is_identity() {
            // Net no-op: restore the caches bit-for-bit (incremental
            // updates drift even over an identity cycle) and commit an
            // empty transaction, so the candidate energy equals the
            // current energy exactly and the engine accepts without a
            // Metropolis draw — just like the legacy clone path.
            search.rollback();
            search.txn.status = TxnStatus::Tentative;
            search.txn.pending = Some(*mv);
            return Some(search.cache.energy);
        }
        search.recompute_energy(self);
        search.txn.status = TxnStatus::Tentative;
        search.txn.pending = Some(*mv);
        Some(search.cache.energy)
    }

    fn apply(&self, search: &mut MultiRateSearch, mv: &MultiRateMove) -> bool {
        if search.txn.status == TxnStatus::Tentative {
            debug_assert_eq!(search.txn.pending, Some(*mv));
            search.txn.status = TxnStatus::Committed;
            return true;
        }
        // Fresh application. A penalized drop evaluates to Some but
        // leaves no tentative transaction — it cannot be applied
        // (doing so would make the live state infeasible).
        self.evaluate_move(search, mv);
        if search.txn.status == TxnStatus::Tentative {
            search.txn.status = TxnStatus::Committed;
            true
        } else {
            false
        }
    }

    fn revert(&self, search: &mut MultiRateSearch, mv: &MultiRateMove) {
        if search.txn.status != TxnStatus::Idle {
            debug_assert_eq!(search.txn.pending, Some(*mv));
            search.rollback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{anneal, anneal_neighbor, AnnealParams};
    use crate::schedule::CoolingSchedule;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vod_model::ServerSpec;

    fn problem(weighted: bool) -> MultiRateProblem {
        let low_bytes = BitRate::LADDER[0].storage_bytes(5_400);
        MultiRateProblem::new(
            Popularity::zipf(12, 1.0).unwrap(),
            ClusterSpec::homogeneous(
                4,
                ServerSpec {
                    storage_bytes: 8 * low_bytes,
                    bandwidth_kbps: 1_800_000,
                },
            )
            .unwrap(),
            5_400,
            BitRate::LADDER.to_vec(),
            1_500.0,
            ObjectiveWeights::default(),
            weighted,
        )
        .unwrap()
    }

    #[test]
    fn initial_is_feasible() {
        let p = problem(false);
        let s = p.initial_state();
        assert!(p.is_feasible(&s));
        assert!((s.degree() - 1.0).abs() < 1e-12);
        assert!((s.delivered_mbps(0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn neighbor_preserves_feasibility_and_identity() {
        let p = problem(false);
        let mut s = p.initial_state();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for _ in 0..400 {
            s = p.neighbor(&s, &mut rng);
            assert!(p.is_feasible(&s));
            assert!(s.replicas.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn replicas_of_one_video_can_differ_in_rate() {
        // The defining capability of the extension: walk until some video
        // holds replicas at two different rates.
        let p = problem(false);
        let mut s = p.initial_state();
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let mut found = false;
        for _ in 0..2_000 {
            s = p.neighbor(&s, &mut rng);
            if s.replicas
                .iter()
                .any(|reps| reps.len() > 1 && reps.iter().any(|r| r.rate != reps[0].rate))
            {
                found = true;
                break;
            }
        }
        assert!(found, "no mixed-rate video emerged in 2000 moves");
    }

    #[test]
    fn annealing_improves_objective() {
        let p = problem(false);
        let initial = p.initial_state();
        let o0 = p.objective(&initial);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let result = anneal(
            &p,
            p.search_state(initial),
            &AnnealParams {
                schedule: CoolingSchedule::default_geometric(0.5),
                epochs: 50,
                steps_per_epoch: 60,
            },
            &mut rng,
        );
        assert!(p.objective(result.best_state.state()) > o0);
        assert!(p.is_feasible(result.best_state.state()));
    }

    #[test]
    fn delta_walk_matches_legacy_walk() {
        // Same seed ⇒ identical trajectories — including the penalized
        // infeasible-drop candidates, which must consume one Metropolis
        // draw exactly like the legacy 1e9-penalty path did.
        for weighted in [false, true] {
            let p = problem(weighted);
            let params = AnnealParams {
                schedule: CoolingSchedule::default_geometric(0.5),
                epochs: 40,
                steps_per_epoch: 60,
            };
            let mut rng_legacy = ChaCha8Rng::seed_from_u64(31);
            let legacy = anneal_neighbor(&p, p.initial_state(), &params, &mut rng_legacy);
            let mut rng_delta = ChaCha8Rng::seed_from_u64(31);
            let delta = anneal(&p, p.initial_search(), &params, &mut rng_delta);
            assert_eq!(delta.best_state.state(), &legacy.best_state);
            assert!((delta.best_energy - legacy.best_energy).abs() < 1e-9);
            for (a, b) in delta.trajectory.iter().zip(&legacy.trajectory) {
                assert!((a - b).abs() < 1e-9, "trajectory diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn cached_energy_tracks_recompute_over_walk() {
        for weighted in [false, true] {
            let p = problem(weighted);
            let mut search = p.initial_search();
            let mut rng = ChaCha8Rng::seed_from_u64(32);
            for _ in 0..600 {
                let Some(mv) = p.propose_move(&mut search, &mut rng) else {
                    continue;
                };
                p.apply(&mut search, &mv);
                let cached = p.state_energy(&search);
                let full = AnnealProblem::energy(&p, &search);
                assert!(
                    (cached - full).abs() < 1e-9,
                    "cache drifted: {cached} vs {full}"
                );
                assert!(p.is_feasible(search.state()));
            }
        }
    }

    #[test]
    fn revert_restores_state_and_caches_bit_for_bit() {
        let p = problem(false);
        let mut search = p.initial_search();
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        for _ in 0..200 {
            if let Some(mv) = p.propose_move(&mut search, &mut rng) {
                p.apply(&mut search, &mv);
            }
        }
        for _ in 0..300 {
            let Some(mv) = p.propose_move(&mut search, &mut rng) else {
                continue;
            };
            let before = search.clone();
            if p.apply(&mut search, &mv) {
                p.revert(&mut search, &mv);
            }
            assert!(search == before, "revert failed to restore the search");
            assert_eq!(
                search.cache.load, before.cache.load,
                "load cache bits differ"
            );
            assert_eq!(
                search.cache.vsum, before.cache.vsum,
                "vsum cache bits differ"
            );
            p.apply(&mut search, &mv);
        }
    }

    #[test]
    fn weighted_objective_prefers_hot_title_quality() {
        // Same state, two objectives (β = 0 isolates the quality term):
        // raising the top title's delivered rate moves the weighted
        // objective more than the unweighted one.
        let quality_only = ObjectiveWeights::new(1.0, 0.0).unwrap();
        let mut pu = problem(false);
        pu.weights = quality_only;
        let mut pw = problem(true);
        pw.weights = quality_only;
        let base = pu.initial_state();
        let mut upgraded = base.clone();
        upgraded.replicas[0][0].rate = BitRate::LADDER[1];

        let du = pu.objective(&upgraded) - pu.objective(&base);
        let dw = pw.objective(&upgraded) - pw.objective(&base);
        assert!(du > 0.0 && dw > 0.0);
        // p_0 ≈ 0.32 under Zipf(12, 1.0) > 1/12: the weighted gain is larger.
        assert!(dw > du, "weighted {dw} should exceed unweighted {du}");
    }

    #[test]
    fn rejects_bad_construction() {
        let tiny = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: 1,
                bandwidth_kbps: 1_000_000,
            },
        )
        .unwrap();
        assert!(MultiRateProblem::new(
            Popularity::zipf(4, 0.5).unwrap(),
            tiny,
            5_400,
            BitRate::LADDER.to_vec(),
            100.0,
            ObjectiveWeights::default(),
            false,
        )
        .is_err());
    }
}
