//! The generic Metropolis annealer, delta-evaluated.
//!
//! Problem-agnostic: anything exposing reversible in-place moves with an
//! incrementally maintainable energy can be annealed without cloning the
//! state at every step. The engine is deterministic given the caller's
//! RNG, making every SA experiment reproducible from a seed.
//!
//! Two problem shapes are supported:
//!
//! * [`AnnealProblem`] — the move-based API the engine consumes directly:
//!   `propose_move` / `evaluate_move` / `apply` / `revert`. Problems that
//!   cache per-state aggregates (see `vod-anneal::problem` and
//!   `vod-anneal::multirate`) evaluate a move in O(affected) instead of
//!   O(M·N), which is what makes millions of Metropolis steps cheap.
//! * [`NeighborProblem`] — the legacy clone-based shape (`energy` +
//!   `neighbor`). The [`CloneAdapter`] gives any such problem the move
//!   API for free (each "move" carries the cloned successor state), so
//!   simple problems keep working unchanged and the pre-delta search
//!   path stays available for A/B benchmarking.

use crate::schedule::CoolingSchedule;
use rand::Rng;
use vod_telemetry::Telemetry;

/// A problem to minimize by simulated annealing, expressed as reversible
/// in-place moves with delta evaluation.
///
/// # Calling protocol
///
/// The engine drives a state through steps of:
///
/// 1. [`propose_move`](AnnealProblem::propose_move) — draw a candidate
///    move (`None` = nothing to propose at this draw; the step is
///    rejected without consuming further randomness);
/// 2. [`evaluate_move`](AnnealProblem::evaluate_move) — tentatively
///    apply it in place and return the *candidate's total energy*
///    (`None` = the move cannot be made feasible; the state is rolled
///    back internally and the step is rejected);
/// 3. exactly one of [`apply`](AnnealProblem::apply) (commit the
///    tentative application) or [`revert`](AnnealProblem::revert)
///    (discard it, restoring the state bit-for-bit).
///
/// `apply` may also be called without a preceding `evaluate_move` (a
/// "fresh" application, used by differential tests); `revert` then
/// undoes that application. `revert` after a call that left the state
/// unchanged is a no-op.
///
/// `propose_move` and `evaluate_move` take `&mut State` so problems can
/// reuse scratch buffers owned by the state (keeping the hot path
/// allocation-free); both must leave the state *observably* unchanged —
/// `evaluate_move`'s tentative application is resolved by the mandatory
/// `apply`/`revert` that follows.
pub trait AnnealProblem {
    /// The search-space point (including any cached aggregates).
    type State: Clone;

    /// A reversible elementary move.
    type Move;

    /// Energy of a state, recomputed from scratch; the annealer
    /// minimizes this. Used at initialization and by differential
    /// tests — the hot loop goes through [`evaluate_move`]
    /// (`evaluate_move`: AnnealProblem::evaluate_move).
    fn energy(&self, state: &Self::State) -> f64;

    /// The state's current energy as the problem tracks it — O(1) for
    /// problems carrying cached aggregates. Defaults to a from-scratch
    /// recompute. Must equal [`energy`](AnnealProblem::energy) up to
    /// incremental float drift (the differential suite bounds it at
    /// 1e-9).
    fn state_energy(&self, state: &Self::State) -> f64 {
        self.energy(state)
    }

    /// Proposes a random move. `None` means no move is available at
    /// this draw (e.g. the drawn server is saturated); the engine
    /// counts the step as rejected without consuming more randomness.
    fn propose_move<R: Rng + ?Sized>(
        &self,
        state: &mut Self::State,
        rng: &mut R,
    ) -> Option<Self::Move>;

    /// Tentatively applies `mv` in place and returns the resulting
    /// total energy. Returns `None` (with the state rolled back) when
    /// the move cannot be made feasible. The caller must follow up
    /// with [`apply`](AnnealProblem::apply) or
    /// [`revert`](AnnealProblem::revert).
    fn evaluate_move(&self, state: &mut Self::State, mv: &Self::Move) -> Option<f64>;

    /// Applies `mv`: commits a pending tentative application, or
    /// applies from scratch when none is pending. Returns `false`
    /// (state unchanged) when the move cannot be applied.
    fn apply(&self, state: &mut Self::State, mv: &Self::Move) -> bool;

    /// Undoes the most recent `evaluate_move`/`apply` of `mv`,
    /// restoring the state (and caches) bit-for-bit. No-op if that
    /// call left the state unchanged.
    fn revert(&self, state: &mut Self::State, mv: &Self::Move);

    /// One-shot delta evaluation: the energy change `mv` would cause,
    /// with the state left untouched. `None` when the move is
    /// infeasible. Built from the primitives; provided for harnesses
    /// and ad-hoc callers — the engine fuses these calls instead.
    fn energy_delta(&self, state: &mut Self::State, mv: &Self::Move) -> Option<f64> {
        let before = self.state_energy(state);
        let after = self.evaluate_move(state, mv)?;
        self.revert(state, mv);
        Some(after - before)
    }
}

/// The legacy clone-based problem shape: a full-state energy and a
/// neighborhood move that builds a successor state.
pub trait NeighborProblem {
    /// The search-space point.
    type State: Clone;

    /// Energy of a state; lower is better.
    fn energy(&self, state: &Self::State) -> f64;

    /// Proposes a random neighbor of `state`.
    fn neighbor<R: Rng + ?Sized>(&self, state: &Self::State, rng: &mut R) -> Self::State;
}

/// A move of the [`CloneAdapter`]: the cloned predecessor and successor
/// states.
#[derive(Debug, Clone)]
pub struct CloneMove<S> {
    prev: S,
    next: S,
}

/// Adapter running any [`NeighborProblem`] on the move-based engine.
/// Each proposal clones the successor (and predecessor, for revert), so
/// the per-step cost matches the pre-delta clone-and-swap engine; use it
/// for simple problems and for legacy-path A/B benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct CloneAdapter<P>(pub P);

impl<P: NeighborProblem> AnnealProblem for CloneAdapter<P> {
    type State = P::State;
    type Move = CloneMove<P::State>;

    fn energy(&self, state: &Self::State) -> f64 {
        self.0.energy(state)
    }

    fn propose_move<R: Rng + ?Sized>(
        &self,
        state: &mut Self::State,
        rng: &mut R,
    ) -> Option<Self::Move> {
        let next = self.0.neighbor(state, rng);
        Some(CloneMove {
            prev: state.clone(),
            next,
        })
    }

    fn evaluate_move(&self, _state: &mut Self::State, mv: &Self::Move) -> Option<f64> {
        // Pure evaluation: nothing is tentatively applied, so the
        // follow-up revert is a no-op assignment and apply does the
        // clone-in.
        Some(self.0.energy(&mv.next))
    }

    fn apply(&self, state: &mut Self::State, mv: &Self::Move) -> bool {
        *state = mv.next.clone();
        true
    }

    fn revert(&self, state: &mut Self::State, mv: &Self::Move) {
        *state = mv.prev.clone();
    }
}

/// Annealer knobs.
#[derive(Debug, Clone, Copy)]
pub struct AnnealParams {
    /// Cooling schedule.
    pub schedule: CoolingSchedule,
    /// Number of temperature epochs.
    pub epochs: u32,
    /// Metropolis steps per epoch.
    pub steps_per_epoch: u32,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            schedule: CoolingSchedule::default_geometric(1.0),
            epochs: 100,
            steps_per_epoch: 100,
        }
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult<S> {
    /// The best state visited.
    pub best_state: S,
    /// Its energy.
    pub best_energy: f64,
    /// Best energy at the end of each epoch (the convergence trajectory
    /// plotted by the SA experiment).
    pub trajectory: Vec<f64>,
    /// Moves accepted (including downhill).
    pub accepted: u64,
    /// Moves rejected.
    pub rejected: u64,
    /// Rejected moves that never reached the Metropolis test: no
    /// candidate was available at the draw, or the candidate could not
    /// be made feasible (subset of `rejected`).
    pub infeasible: u64,
}

impl<S> AnnealResult<S> {
    /// Acceptance ratio over the whole run.
    pub fn acceptance_ratio(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

/// Minimizes `problem` starting from `initial`.
pub fn anneal<P: AnnealProblem, R: Rng + ?Sized>(
    problem: &P,
    initial: P::State,
    params: &AnnealParams,
    rng: &mut R,
) -> AnnealResult<P::State> {
    anneal_with_telemetry(problem, initial, params, rng, &Telemetry::disabled())
}

/// [`anneal`] for a clone-based [`NeighborProblem`], via the
/// [`CloneAdapter`].
pub fn anneal_neighbor<P: NeighborProblem + Clone, R: Rng + ?Sized>(
    problem: &P,
    initial: P::State,
    params: &AnnealParams,
    rng: &mut R,
) -> AnnealResult<P::State> {
    anneal(&CloneAdapter(problem.clone()), initial, params, rng)
}

/// [`anneal`], recording engine counters and timings into `telemetry`.
/// With a disabled handle the instrumentation reduces to branches on
/// `None` and this is identical to [`anneal`].
///
/// Instruments: counters `anneal.proposed`, `anneal.accepted`,
/// `anneal.rejected`, `anneal.epochs` (temperature steps),
/// `anneal.evaluations` (energy evaluations), and the move-level
/// mirror `anneal.moves.{proposed,accepted,infeasible}`; span
/// `anneal.run` (seconds); histograms `anneal.evals_per_sec` and
/// `anneal.steps_per_sec` (one observation per run).
pub fn anneal_with_telemetry<P: AnnealProblem, R: Rng + ?Sized>(
    problem: &P,
    initial: P::State,
    params: &AnnealParams,
    rng: &mut R,
    telemetry: &Telemetry,
) -> AnnealResult<P::State> {
    let span = telemetry.span("anneal.run");
    let mut current = initial;
    let mut current_energy = problem.state_energy(&current);
    let mut best_state = current.clone();
    let mut best_energy = current_energy;
    let mut trajectory = Vec::with_capacity(params.epochs as usize);
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut infeasible = 0u64;

    for epoch in 0..params.epochs {
        let temp = params.schedule.temperature(epoch);
        for _ in 0..params.steps_per_epoch {
            let Some(mv) = problem.propose_move(&mut current, rng) else {
                rejected += 1;
                infeasible += 1;
                continue;
            };
            let Some(candidate_energy) = problem.evaluate_move(&mut current, &mv) else {
                rejected += 1;
                infeasible += 1;
                continue;
            };
            let delta = candidate_energy - current_energy;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
            if accept && problem.apply(&mut current, &mv) {
                current_energy = candidate_energy;
                accepted += 1;
                if current_energy < best_energy {
                    best_energy = current_energy;
                    best_state = current.clone();
                }
            } else {
                // Rejected by Metropolis, or (vanishingly rare) accepted
                // but unappliable — e.g. a penalized move kept only for
                // RNG parity with the legacy penalty path. Either way
                // the tentative application (if any) is rolled back.
                problem.revert(&mut current, &mv);
                rejected += 1;
            }
        }
        trajectory.push(best_energy);
    }

    if telemetry.is_enabled() {
        let proposed = accepted + rejected;
        // One evaluation for the initial state plus one per proposal.
        let evaluations = proposed + 1;
        telemetry.counter("anneal.proposed").add(proposed);
        telemetry.counter("anneal.accepted").add(accepted);
        telemetry.counter("anneal.rejected").add(rejected);
        telemetry.counter("anneal.moves.proposed").add(proposed);
        telemetry.counter("anneal.moves.accepted").add(accepted);
        telemetry.counter("anneal.moves.infeasible").add(infeasible);
        telemetry
            .counter("anneal.epochs")
            .add(u64::from(params.epochs));
        telemetry.counter("anneal.evaluations").add(evaluations);
        let elapsed = span.elapsed_secs();
        if elapsed > 0.0 {
            telemetry
                .histogram("anneal.evals_per_sec")
                .observe(evaluations as f64 / elapsed);
            telemetry
                .histogram("anneal.steps_per_sec")
                .observe(proposed as f64 / elapsed);
        }
    }

    AnnealResult {
        best_state,
        best_energy,
        trajectory,
        accepted,
        rejected,
        infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// 1-D quadratic over integers: minimum at x = 17.
    #[derive(Clone, Copy)]
    struct Quadratic;

    impl NeighborProblem for Quadratic {
        type State = i64;
        fn energy(&self, s: &i64) -> f64 {
            let d = (*s - 17) as f64;
            d * d
        }
        fn neighbor<R: Rng + ?Sized>(&self, s: &i64, rng: &mut R) -> i64 {
            s + if rng.gen::<bool>() { 1 } else { -1 }
        }
    }

    #[test]
    fn finds_quadratic_minimum() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let result = anneal_neighbor(
            &Quadratic,
            -50,
            &AnnealParams {
                schedule: CoolingSchedule::default_geometric(100.0),
                epochs: 200,
                steps_per_epoch: 50,
            },
            &mut rng,
        );
        assert_eq!(result.best_state, 17);
        assert_eq!(result.best_energy, 0.0);
    }

    #[test]
    fn trajectory_is_monotone_non_increasing() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let result = anneal_neighbor(&Quadratic, 1000, &AnnealParams::default(), &mut rng);
        assert_eq!(result.trajectory.len(), 100);
        assert!(result.trajectory.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            anneal_neighbor(&Quadratic, -5, &AnnealParams::default(), &mut rng).best_state
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn one_shot_energy_delta_leaves_state_untouched() {
        let adapter = CloneAdapter(Quadratic);
        let mut state = 10i64;
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mv = adapter.propose_move(&mut state, &mut rng).unwrap();
        let before = state;
        let delta = adapter.energy_delta(&mut state, &mv).unwrap();
        assert_eq!(state, before);
        let full = adapter.energy(&mv.next) - adapter.energy(&before);
        assert_eq!(delta, full);
    }

    #[test]
    fn telemetry_counters_match_result() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let telemetry = Telemetry::enabled();
        let params = AnnealParams {
            schedule: CoolingSchedule::default_geometric(100.0),
            epochs: 20,
            steps_per_epoch: 30,
        };
        let result =
            anneal_with_telemetry(&CloneAdapter(Quadratic), -50, &params, &mut rng, &telemetry);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("anneal.proposed"), 600);
        assert_eq!(snap.counter("anneal.accepted"), result.accepted);
        assert_eq!(snap.counter("anneal.rejected"), result.rejected);
        assert_eq!(snap.counter("anneal.moves.proposed"), 600);
        assert_eq!(snap.counter("anneal.moves.accepted"), result.accepted);
        // The adapter always has a candidate, so nothing is infeasible.
        assert_eq!(snap.counter("anneal.moves.infeasible"), 0);
        assert_eq!(result.infeasible, 0);
        assert_eq!(snap.counter("anneal.epochs"), 20);
        assert_eq!(snap.counter("anneal.evaluations"), 601);
        assert_eq!(snap.histogram("anneal.run").count, 1);
        assert_eq!(snap.histogram("anneal.evals_per_sec").count, 1);
        assert_eq!(snap.histogram("anneal.steps_per_sec").count, 1);
    }

    #[test]
    fn telemetry_does_not_change_the_search() {
        let run = |telemetry: &Telemetry| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            anneal_with_telemetry(
                &CloneAdapter(Quadratic),
                -30,
                &AnnealParams::default(),
                &mut rng,
                telemetry,
            )
        };
        let plain = run(&Telemetry::disabled());
        let instrumented = run(&Telemetry::enabled());
        assert_eq!(plain.best_state, instrumented.best_state);
        assert_eq!(plain.accepted, instrumented.accepted);
        assert_eq!(plain.trajectory, instrumented.trajectory);
    }

    #[test]
    fn hot_chain_accepts_uphill() {
        // At very high temperature nearly everything is accepted.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let result = anneal_neighbor(
            &Quadratic,
            0,
            &AnnealParams {
                schedule: CoolingSchedule::Geometric {
                    t0: 1e9,
                    alpha: 1.0 - f64::EPSILON,
                    t_min: 1e8,
                },
                epochs: 10,
                steps_per_epoch: 100,
            },
            &mut rng,
        );
        assert!(result.acceptance_ratio() > 0.95);
    }

    #[test]
    fn cold_chain_is_greedy() {
        // Near-zero temperature: only downhill moves accepted, so from the
        // minimum nothing moves.
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let result = anneal_neighbor(
            &Quadratic,
            17,
            &AnnealParams {
                schedule: CoolingSchedule::Geometric {
                    t0: 1e-12,
                    alpha: 0.5,
                    t_min: 1e-15,
                },
                epochs: 5,
                steps_per_epoch: 200,
            },
            &mut rng,
        );
        assert_eq!(result.best_state, 17);
        assert!(result.acceptance_ratio() < 0.05);
    }
}
