//! The generic Metropolis annealer.
//!
//! Problem-agnostic: anything exposing an energy (lower = better) and a
//! neighborhood move can be annealed. The engine is deterministic given
//! the caller's RNG, making every SA experiment reproducible from a seed.

use crate::schedule::CoolingSchedule;
use rand::Rng;
use vod_telemetry::Telemetry;

/// A problem to minimize by simulated annealing.
pub trait AnnealProblem {
    /// The search-space point.
    type State: Clone;

    /// Energy of a state; the annealer minimizes this.
    fn energy(&self, state: &Self::State) -> f64;

    /// Proposes a random neighbor of `state`.
    fn neighbor<R: Rng + ?Sized>(&self, state: &Self::State, rng: &mut R) -> Self::State;
}

/// Annealer knobs.
#[derive(Debug, Clone, Copy)]
pub struct AnnealParams {
    /// Cooling schedule.
    pub schedule: CoolingSchedule,
    /// Number of temperature epochs.
    pub epochs: u32,
    /// Metropolis steps per epoch.
    pub steps_per_epoch: u32,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            schedule: CoolingSchedule::default_geometric(1.0),
            epochs: 100,
            steps_per_epoch: 100,
        }
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult<S> {
    /// The best state visited.
    pub best_state: S,
    /// Its energy.
    pub best_energy: f64,
    /// Best energy at the end of each epoch (the convergence trajectory
    /// plotted by the SA experiment).
    pub trajectory: Vec<f64>,
    /// Moves accepted (including downhill).
    pub accepted: u64,
    /// Moves rejected.
    pub rejected: u64,
}

impl<S> AnnealResult<S> {
    /// Acceptance ratio over the whole run.
    pub fn acceptance_ratio(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

/// Minimizes `problem` starting from `initial`.
pub fn anneal<P: AnnealProblem, R: Rng + ?Sized>(
    problem: &P,
    initial: P::State,
    params: &AnnealParams,
    rng: &mut R,
) -> AnnealResult<P::State> {
    anneal_with_telemetry(problem, initial, params, rng, &Telemetry::disabled())
}

/// [`anneal`], recording engine counters and timings into `telemetry`.
/// With a disabled handle the instrumentation reduces to branches on
/// `None` and this is identical to [`anneal`].
///
/// Instruments: counters `anneal.proposed`, `anneal.accepted`,
/// `anneal.rejected`, `anneal.epochs` (temperature steps),
/// `anneal.evaluations` (objective evaluations); span `anneal.run`
/// (seconds); histogram `anneal.evals_per_sec` (one observation per
/// run).
pub fn anneal_with_telemetry<P: AnnealProblem, R: Rng + ?Sized>(
    problem: &P,
    initial: P::State,
    params: &AnnealParams,
    rng: &mut R,
    telemetry: &Telemetry,
) -> AnnealResult<P::State> {
    let span = telemetry.span("anneal.run");
    let mut current = initial;
    let mut current_energy = problem.energy(&current);
    let mut best_state = current.clone();
    let mut best_energy = current_energy;
    let mut trajectory = Vec::with_capacity(params.epochs as usize);
    let mut accepted = 0u64;
    let mut rejected = 0u64;

    for epoch in 0..params.epochs {
        let temp = params.schedule.temperature(epoch);
        for _ in 0..params.steps_per_epoch {
            let candidate = problem.neighbor(&current, rng);
            let candidate_energy = problem.energy(&candidate);
            let delta = candidate_energy - current_energy;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
            if accept {
                current = candidate;
                current_energy = candidate_energy;
                accepted += 1;
                if current_energy < best_energy {
                    best_energy = current_energy;
                    best_state = current.clone();
                }
            } else {
                rejected += 1;
            }
        }
        trajectory.push(best_energy);
    }

    if telemetry.is_enabled() {
        let proposed = accepted + rejected;
        // One evaluation for the initial state plus one per proposal.
        let evaluations = proposed + 1;
        telemetry.counter("anneal.proposed").add(proposed);
        telemetry.counter("anneal.accepted").add(accepted);
        telemetry.counter("anneal.rejected").add(rejected);
        telemetry
            .counter("anneal.epochs")
            .add(u64::from(params.epochs));
        telemetry.counter("anneal.evaluations").add(evaluations);
        let elapsed = span.elapsed_secs();
        if elapsed > 0.0 {
            telemetry
                .histogram("anneal.evals_per_sec")
                .observe(evaluations as f64 / elapsed);
        }
    }

    AnnealResult {
        best_state,
        best_energy,
        trajectory,
        accepted,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// 1-D quadratic over integers: minimum at x = 17.
    struct Quadratic;

    impl AnnealProblem for Quadratic {
        type State = i64;
        fn energy(&self, s: &i64) -> f64 {
            let d = (*s - 17) as f64;
            d * d
        }
        fn neighbor<R: Rng + ?Sized>(&self, s: &i64, rng: &mut R) -> i64 {
            s + if rng.gen::<bool>() { 1 } else { -1 }
        }
    }

    #[test]
    fn finds_quadratic_minimum() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let result = anneal(
            &Quadratic,
            -50,
            &AnnealParams {
                schedule: CoolingSchedule::default_geometric(100.0),
                epochs: 200,
                steps_per_epoch: 50,
            },
            &mut rng,
        );
        assert_eq!(result.best_state, 17);
        assert_eq!(result.best_energy, 0.0);
    }

    #[test]
    fn trajectory_is_monotone_non_increasing() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let result = anneal(&Quadratic, 1000, &AnnealParams::default(), &mut rng);
        assert_eq!(result.trajectory.len(), 100);
        assert!(result.trajectory.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            anneal(&Quadratic, -5, &AnnealParams::default(), &mut rng).best_state
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn telemetry_counters_match_result() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let telemetry = Telemetry::enabled();
        let params = AnnealParams {
            schedule: CoolingSchedule::default_geometric(100.0),
            epochs: 20,
            steps_per_epoch: 30,
        };
        let result = anneal_with_telemetry(&Quadratic, -50, &params, &mut rng, &telemetry);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("anneal.proposed"), 600);
        assert_eq!(snap.counter("anneal.accepted"), result.accepted);
        assert_eq!(snap.counter("anneal.rejected"), result.rejected);
        assert_eq!(snap.counter("anneal.epochs"), 20);
        assert_eq!(snap.counter("anneal.evaluations"), 601);
        assert_eq!(snap.histogram("anneal.run").count, 1);
        assert_eq!(snap.histogram("anneal.evals_per_sec").count, 1);
    }

    #[test]
    fn telemetry_does_not_change_the_search() {
        let run = |telemetry: &Telemetry| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            anneal_with_telemetry(
                &Quadratic,
                -30,
                &AnnealParams::default(),
                &mut rng,
                telemetry,
            )
        };
        let plain = run(&Telemetry::disabled());
        let instrumented = run(&Telemetry::enabled());
        assert_eq!(plain.best_state, instrumented.best_state);
        assert_eq!(plain.accepted, instrumented.accepted);
        assert_eq!(plain.trajectory, instrumented.trajectory);
    }

    #[test]
    fn hot_chain_accepts_uphill() {
        // At very high temperature nearly everything is accepted.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let result = anneal(
            &Quadratic,
            0,
            &AnnealParams {
                schedule: CoolingSchedule::Geometric {
                    t0: 1e9,
                    alpha: 1.0 - f64::EPSILON,
                    t_min: 1e8,
                },
                epochs: 10,
                steps_per_epoch: 100,
            },
            &mut rng,
        );
        assert!(result.acceptance_ratio() > 0.95);
    }

    #[test]
    fn cold_chain_is_greedy() {
        // Near-zero temperature: only downhill moves accepted, so from the
        // minimum nothing moves.
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let result = anneal(
            &Quadratic,
            17,
            &AnnealParams {
                schedule: CoolingSchedule::Geometric {
                    t0: 1e-12,
                    alpha: 0.5,
                    t_min: 1e-15,
                },
                epochs: 5,
                steps_per_epoch: 200,
            },
            &mut rng,
        );
        assert_eq!(result.best_state, 17);
        assert!(result.acceptance_ratio() < 0.05);
    }
}
