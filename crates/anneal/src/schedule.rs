//! Cooling schedules.
//!
//! A schedule maps the epoch index to a temperature. Geometric cooling
//! (`T_k = T_0 · α^k`) is the workhorse; linear cooling is provided for
//! ablations.

use serde::{Deserialize, Serialize};

/// Temperature as a function of the epoch index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoolingSchedule {
    /// `T_k = t0 · alpha^k`, floored at `t_min`.
    Geometric {
        /// Initial temperature.
        t0: f64,
        /// Cooling factor in (0, 1).
        alpha: f64,
        /// Floor temperature (> 0 keeps acceptance defined).
        t_min: f64,
    },
    /// `T_k = t0 · (1 − k/epochs)`, floored at `t_min`.
    Linear {
        /// Initial temperature.
        t0: f64,
        /// Total number of epochs the ramp spans.
        epochs: u32,
        /// Floor temperature.
        t_min: f64,
    },
}

impl CoolingSchedule {
    /// A reasonable default: start hot enough to accept most uphill moves,
    /// cool by 5% per epoch, floor near zero.
    pub fn default_geometric(t0: f64) -> Self {
        CoolingSchedule::Geometric {
            t0,
            alpha: 0.95,
            t_min: 1e-6,
        }
    }

    /// Temperature at epoch `k`.
    pub fn temperature(&self, k: u32) -> f64 {
        match *self {
            CoolingSchedule::Geometric { t0, alpha, t_min } => {
                (t0 * alpha.powi(k as i32)).max(t_min)
            }
            CoolingSchedule::Linear { t0, epochs, t_min } => {
                // epochs == 0 degenerates to a constant-temperature chain.
                let frac = if epochs == 0 {
                    1.0
                } else {
                    1.0 - (k as f64 / epochs as f64)
                };
                (t0 * frac.max(0.0)).max(t_min)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_decays() {
        let s = CoolingSchedule::Geometric {
            t0: 10.0,
            alpha: 0.5,
            t_min: 0.01,
        };
        assert_eq!(s.temperature(0), 10.0);
        assert_eq!(s.temperature(1), 5.0);
        assert_eq!(s.temperature(2), 2.5);
        // Floors at t_min.
        assert_eq!(s.temperature(100), 0.01);
    }

    #[test]
    fn linear_ramps_to_floor() {
        let s = CoolingSchedule::Linear {
            t0: 8.0,
            epochs: 4,
            t_min: 0.5,
        };
        assert_eq!(s.temperature(0), 8.0);
        assert_eq!(s.temperature(2), 4.0);
        assert_eq!(s.temperature(4), 0.5);
        assert_eq!(s.temperature(9), 0.5);
    }

    #[test]
    fn zero_epoch_linear_degenerates_safely() {
        let s = CoolingSchedule::Linear {
            t0: 8.0,
            epochs: 0,
            t_min: 0.5,
        };
        assert_eq!(s.temperature(0), 8.0);
    }

    #[test]
    fn monotone_non_increasing() {
        let s = CoolingSchedule::default_geometric(5.0);
        let mut prev = f64::INFINITY;
        for k in 0..200 {
            let t = s.temperature(k);
            assert!(t <= prev && t > 0.0);
            prev = t;
        }
    }
}
