//! Shared scaffolding for delta-evaluated problems: snapshot-based undo
//! logs over cached per-server aggregates.
//!
//! Incrementally updated floating-point aggregates cannot be undone by
//! inverse arithmetic (`(a + x) - x ≠ a` in general), so reverting a
//! move must restore *recorded old values* to be bit-for-bit exact. A
//! [`SnapLog`] records, once per transaction, the pre-move value of
//! every touched slot of an aggregate array; rolling back replays those
//! snapshots. Epoch stamps make "already recorded this slot?" O(1)
//! without clearing a bitmap between transactions.

/// Where a search state is within the evaluate/apply/revert protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum TxnStatus {
    /// No transaction: state and caches are consistent and settled.
    #[default]
    Idle,
    /// A move has been tentatively applied by `evaluate_move` and
    /// awaits `apply` (commit) or `revert` (rollback).
    Tentative,
    /// The last move was committed; its undo log is still intact so a
    /// differential harness may still `revert` it.
    Committed,
}

/// First-touch snapshot log for one aggregate array.
#[derive(Debug, Clone, Default)]
pub(crate) struct SnapLog<T: Copy> {
    entries: Vec<(u32, T)>,
    stamp: Vec<u32>,
    id: u32,
}

impl<T: Copy> SnapLog<T> {
    /// Opens a new transaction over an array of `len` slots, discarding
    /// any previous snapshots.
    pub(crate) fn begin(&mut self, len: usize) {
        self.entries.clear();
        if self.stamp.len() != len {
            self.stamp = vec![0; len];
            self.id = 0;
        }
        self.id = self.id.wrapping_add(1);
        if self.id == 0 {
            // Stamp wrap-around: reset so stale stamps can't collide.
            self.stamp.fill(0);
            self.id = 1;
        }
    }

    /// Records `current` as slot `i`'s pre-transaction value, first
    /// touch only.
    #[inline]
    pub(crate) fn touch(&mut self, i: usize, current: T) {
        if self.stamp[i] != self.id {
            self.stamp[i] = self.id;
            self.entries.push((i as u32, current));
        }
    }

    /// Restores every touched slot of `target` to its recorded
    /// pre-transaction value and clears the log.
    pub(crate) fn rollback(&mut self, target: &mut [T]) {
        for (i, old) in self.entries.drain(..) {
            target[i as usize] = old;
        }
        self.id = self.id.wrapping_add(1);
        if self.id == 0 {
            self.stamp.fill(0);
            self.id = 1;
        }
    }
}

/// Inserts `v` into a sorted vector, keeping it sorted. The hosted-video
/// lists this maintains are the proposal candidate lists: keeping them
/// in ascending video order makes an index draw over them pick the same
/// video the legacy filter-in-index-order scan would.
pub(crate) fn sorted_insert(list: &mut Vec<u32>, v: u32) {
    let pos = list.partition_point(|&x| x < v);
    debug_assert!(list.get(pos) != Some(&v), "duplicate hosted entry");
    list.insert(pos, v);
}

/// Removes `v` from a sorted vector.
pub(crate) fn sorted_remove(list: &mut Vec<u32>, v: u32) {
    let pos = list.partition_point(|&x| x < v);
    debug_assert_eq!(list.get(pos), Some(&v), "missing hosted entry");
    list.remove(pos);
}

/// The `pick`-th (0-based) value in ascending order among
/// `0..universe` that is *not* in the sorted list `present`.
///
/// This is how a proposal draws a random video absent from a server
/// without materializing the complement: `gen_range(0..absent_count)`
/// then rank-select. Binary search over "absent values below
/// `present[j]`" (= `present[j] - j`, non-decreasing).
pub(crate) fn nth_absent(present: &[u32], pick: usize) -> u32 {
    let mut lo = 0usize;
    let mut hi = present.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if present[mid] as usize - mid <= pick {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (pick + lo) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snaplog_restores_first_touch_values() {
        let mut log = SnapLog::default();
        let mut arr = vec![1.0f64, 2.0, 3.0];
        log.begin(arr.len());
        log.touch(1, arr[1]);
        arr[1] = 20.0;
        log.touch(1, arr[1]); // second touch must not overwrite snapshot
        arr[1] = 30.0;
        log.touch(0, arr[0]);
        arr[0] = -1.0;
        log.rollback(&mut arr);
        assert_eq!(arr, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn snaplog_transactions_are_independent() {
        let mut log = SnapLog::default();
        let mut arr = vec![5u64, 6];
        log.begin(arr.len());
        log.touch(0, arr[0]);
        arr[0] = 50;
        // Commit by simply beginning the next transaction.
        log.begin(arr.len());
        log.touch(0, arr[0]);
        arr[0] = 500;
        log.rollback(&mut arr);
        assert_eq!(arr, vec![50, 6]);
    }

    #[test]
    fn nth_absent_selects_complement_in_order() {
        // universe 0..6, present {2, 3}: absent = [0, 1, 4, 5].
        let present = vec![2u32, 3];
        let absent: Vec<u32> = (0..4).map(|i| nth_absent(&present, i)).collect();
        assert_eq!(absent, vec![0, 1, 4, 5]);
        // Empty present: identity.
        assert_eq!(nth_absent(&[], 3), 3);
        // Everything below present.
        assert_eq!(nth_absent(&[0, 1, 2], 0), 3);
    }

    #[test]
    fn sorted_insert_remove_roundtrip() {
        let mut list = vec![1u32, 4, 9];
        sorted_insert(&mut list, 6);
        assert_eq!(list, vec![1, 4, 6, 9]);
        sorted_insert(&mut list, 0);
        assert_eq!(list, vec![0, 1, 4, 6, 9]);
        sorted_remove(&mut list, 4);
        assert_eq!(list, vec![0, 1, 6, 9]);
    }
}
