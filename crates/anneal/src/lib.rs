//! Simulated-annealing substrate and the scalable-bit-rate VoD problem.
//!
//! For videos with scalable encoding bit rates the paper "propose\[s\] a
//! heuristic algorithm based on simulated annealing … constructed … based
//! on the parsa library" (Sec. 4.3). parsa is a proprietary parallel-SA
//! framework; this crate is the from-scratch replacement (see DESIGN.md):
//!
//! * [`schedule`] — cooling schedules (geometric, linear);
//! * [`engine`] — a generic Metropolis annealer over any
//!   [`engine::AnnealProblem`];
//! * [`parallel`] — parallel multi-chain annealing with periodic
//!   best-solution exchange (independent chains on OS threads, results
//!   gathered over a crossbeam channel), matching parsa's
//!   transparent-parallelism design point;
//! * [`problem`] — the paper's problem-specific pieces, exactly the three
//!   the authors enumerate: the Eq. (1) cost function, the
//!   lowest-rate/round-robin initial solution, and the
//!   raise-rate-or-add-replica neighborhood with constraint repair.
//!
//! The engine is **delta-evaluated**: problems expose reversible in-place
//! moves ([`engine::AnnealProblem`]) over search states carrying cached
//! per-server aggregates ([`problem::ScalableSearch`],
//! [`multirate::MultiRateSearch`]), so a Metropolis step costs
//! O(touched servers) instead of a full O(M·N) recompute. Clone-based
//! problems still work through [`engine::NeighborProblem`] and the
//! [`engine::CloneAdapter`] (also the legacy path for A/B benchmarks).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod delta;
pub mod engine;
pub mod multirate;
pub mod parallel;
pub mod problem;
pub mod schedule;

pub use engine::{
    anneal, anneal_neighbor, anneal_with_telemetry, AnnealParams, AnnealProblem, AnnealResult,
    CloneAdapter, NeighborProblem,
};
pub use multirate::{
    MultiRateMove, MultiRateProblem, MultiRateSearch, MultiRateState, RatedReplica,
};
pub use parallel::{anneal_parallel, anneal_parallel_with_telemetry, ParallelParams};
pub use problem::{ScalableMove, ScalableProblem, ScalableSearch, ScalableState};
pub use schedule::CoolingSchedule;
