//! Parallel multi-chain annealing.
//!
//! The paper ran its SA on the `parsa` library, whose "parallelization and
//! generic decisions … are transparent to users". This module supplies the
//! same transparency: K independent Metropolis chains run on OS threads
//! over synchronized rounds; after every round the chains' results are
//! gathered over a crossbeam channel and the globally best state is
//! re-seeded into every chain (elitist exchange). Given the per-chain
//! seeds, the whole procedure is deterministic regardless of thread
//! interleaving, because exchange happens only at round barriers.

use crate::engine::{anneal_with_telemetry, AnnealParams, AnnealProblem, AnnealResult};
use crate::schedule::CoolingSchedule;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vod_telemetry::Telemetry;

/// Parallel-run knobs.
#[derive(Debug, Clone, Copy)]
pub struct ParallelParams {
    /// Number of chains (threads).
    pub chains: u32,
    /// Epochs per exchange round.
    pub epochs_per_round: u32,
    /// Number of exchange rounds.
    pub rounds: u32,
    /// Metropolis steps per epoch, per chain.
    pub steps_per_epoch: u32,
    /// Cooling schedule (advanced across rounds: round `r` starts at
    /// epoch `r · epochs_per_round`).
    pub schedule: CoolingSchedule,
    /// Base RNG seed; chain `c` in round `r` uses
    /// `seed ⊕ (r · chains + c)` splits.
    pub seed: u64,
}

impl Default for ParallelParams {
    fn default() -> Self {
        ParallelParams {
            chains: 4,
            epochs_per_round: 10,
            rounds: 10,
            steps_per_epoch: 100,
            schedule: CoolingSchedule::default_geometric(1.0),
            seed: 0,
        }
    }
}

/// Shifts a schedule so epoch 0 of a round corresponds to global epoch
/// `offset`.
fn shifted(schedule: CoolingSchedule, offset: u32) -> CoolingSchedule {
    match schedule {
        CoolingSchedule::Geometric { t0, alpha, t_min } => CoolingSchedule::Geometric {
            t0: (t0 * alpha.powi(offset as i32)).max(t_min),
            alpha,
            t_min,
        },
        CoolingSchedule::Linear { t0, epochs, t_min } => CoolingSchedule::Linear {
            t0: {
                let frac = if epochs == 0 {
                    1.0
                } else {
                    1.0 - (offset as f64 / epochs as f64)
                };
                (t0 * frac.max(0.0)).max(t_min)
            },
            epochs: epochs.saturating_sub(offset),
            t_min,
        },
    }
}

/// Minimizes `problem` with `params.chains` exchanging chains, starting
/// every chain from `initial`.
pub fn anneal_parallel<P>(
    problem: &P,
    initial: P::State,
    params: &ParallelParams,
) -> AnnealResult<P::State>
where
    P: AnnealProblem + Sync,
    P::State: Send + Sync,
{
    anneal_parallel_with_telemetry(problem, initial, params, &Telemetry::disabled())
}

/// [`anneal_parallel`], with every chain recording its `anneal.*`
/// engine instruments into `telemetry` (the handle is shared, so
/// counters accumulate across chains and rounds), plus the coordinator's
/// own `anneal.rounds` counter and `anneal.parallel_run` span.
pub fn anneal_parallel_with_telemetry<P>(
    problem: &P,
    initial: P::State,
    params: &ParallelParams,
    telemetry: &Telemetry,
) -> AnnealResult<P::State>
where
    P: AnnealProblem + Sync,
    P::State: Send + Sync,
{
    let span = telemetry.span("anneal.parallel_run");
    let mut global_best = initial.clone();
    let mut global_energy = problem.energy(&global_best);
    let mut trajectory = Vec::with_capacity((params.rounds * params.epochs_per_round) as usize);
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut infeasible = 0u64;

    for round in 0..params.rounds {
        let round_params = AnnealParams {
            schedule: shifted(params.schedule, round * params.epochs_per_round),
            epochs: params.epochs_per_round,
            steps_per_epoch: params.steps_per_epoch,
        };
        // One slot per chain: every worker sends exactly once, so a
        // bounded channel never blocks but caps the fan-in buffer.
        let (tx, rx) = crossbeam::channel::bounded(params.chains as usize);
        std::thread::scope(|scope| {
            for chain in 0..params.chains {
                let tx = tx.clone();
                let start = global_best.clone();
                let seed = params
                    .seed
                    .wrapping_add((round as u64) * params.chains as u64 + chain as u64 + 1);
                let chain_telemetry = telemetry.clone();
                scope.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(seed);
                    let result = anneal_with_telemetry(
                        problem,
                        start,
                        &round_params,
                        &mut rng,
                        &chain_telemetry,
                    );
                    tx.send((chain, result)).expect("coordinator alive");
                });
            }
        });
        drop(tx);

        // Deterministic merge: order by chain id, not arrival order.
        let mut results: Vec<(u32, AnnealResult<P::State>)> = rx.iter().collect();
        results.sort_by_key(|(chain, _)| *chain);
        let mut round_traj: Vec<f64> = vec![f64::INFINITY; params.epochs_per_round as usize];
        for (_, r) in results {
            accepted += r.accepted;
            rejected += r.rejected;
            infeasible += r.infeasible;
            for (slot, &e) in round_traj.iter_mut().zip(&r.trajectory) {
                *slot = slot.min(e);
            }
            if r.best_energy < global_energy {
                global_energy = r.best_energy;
                global_best = r.best_state;
            }
        }
        // Trajectory records the global best-so-far per epoch.
        let mut running = trajectory.last().copied().unwrap_or(f64::INFINITY);
        for e in round_traj {
            running = running.min(e);
            trajectory.push(running);
        }
    }

    telemetry
        .counter("anneal.rounds")
        .add(u64::from(params.rounds));
    drop(span);

    AnnealResult {
        best_state: global_best,
        best_energy: global_energy,
        trajectory,
        accepted,
        rejected,
        infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CloneAdapter, NeighborProblem};
    use rand::Rng;

    /// Rastrigin-flavored 1-D integer landscape with many local minima;
    /// global minimum at x = 0.
    #[derive(Clone, Copy)]
    struct BumpyLandscape;

    impl NeighborProblem for BumpyLandscape {
        type State = i64;
        fn energy(&self, s: &i64) -> f64 {
            let x = *s as f64 / 10.0;
            x * x + 5.0 * (1.0 - (2.0 * std::f64::consts::PI * x).cos())
        }
        fn neighbor<R: Rng + ?Sized>(&self, s: &i64, rng: &mut R) -> i64 {
            s + rng.gen_range(-3i64..=3)
        }
    }

    /// The landscape on the move-based engine, via the adapter.
    const BUMPY: CloneAdapter<BumpyLandscape> = CloneAdapter(BumpyLandscape);

    #[test]
    fn parallel_finds_global_minimum() {
        let params = ParallelParams {
            chains: 4,
            epochs_per_round: 20,
            rounds: 5,
            steps_per_epoch: 200,
            schedule: CoolingSchedule::default_geometric(20.0),
            seed: 1,
        };
        let result = anneal_parallel(&BUMPY, 500, &params);
        assert_eq!(result.best_state, 0, "energy {}", result.best_energy);
    }

    #[test]
    fn deterministic_given_seed() {
        let params = ParallelParams {
            chains: 3,
            rounds: 3,
            ..Default::default()
        };
        let a = anneal_parallel(&BUMPY, 100, &params);
        let b = anneal_parallel(&BUMPY, 100, &params);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.trajectory, b.trajectory);
    }

    #[test]
    fn merge_is_byte_identical_across_reruns_for_any_chain_count() {
        // Regression guard for the chain-id merge: results must not
        // depend on thread arrival order, so repeated runs are
        // bit-identical whether one chain or eight feed the channel.
        for chains in [1u32, 8] {
            let params = ParallelParams {
                chains,
                epochs_per_round: 5,
                rounds: 3,
                steps_per_epoch: 50,
                schedule: CoolingSchedule::default_geometric(5.0),
                seed: 9,
            };
            let a = anneal_parallel(&BUMPY, 250, &params);
            let b = anneal_parallel(&BUMPY, 250, &params);
            assert_eq!(a.best_state, b.best_state, "chains={chains}");
            assert_eq!(a.best_energy.to_bits(), b.best_energy.to_bits());
            let bits = |t: &[f64]| t.iter().map(|e| e.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.trajectory), bits(&b.trajectory));
            assert_eq!(
                (a.accepted, a.rejected, a.infeasible),
                (b.accepted, b.rejected, b.infeasible)
            );
        }
    }

    #[test]
    fn trajectory_length_and_monotonicity() {
        let params = ParallelParams {
            chains: 2,
            epochs_per_round: 5,
            rounds: 4,
            steps_per_epoch: 50,
            ..Default::default()
        };
        let r = anneal_parallel(&BUMPY, 200, &params);
        assert_eq!(r.trajectory.len(), 20);
        assert!(r.trajectory.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn move_budget_scales_with_chains() {
        let base = ParallelParams {
            chains: 1,
            epochs_per_round: 10,
            rounds: 4,
            steps_per_epoch: 100,
            schedule: CoolingSchedule::default_geometric(10.0),
            seed: 5,
        };
        let single = anneal_parallel(&BUMPY, 300, &base);
        let multi = anneal_parallel(&BUMPY, 300, &ParallelParams { chains: 4, ..base });
        assert_eq!(single.accepted + single.rejected, 4_000);
        assert_eq!(multi.accepted + multi.rejected, 16_000);
        // Elitist exchange: the result can never be worse than the start.
        assert!(multi.best_energy <= BumpyLandscape.energy(&300));
    }

    #[test]
    fn parallel_telemetry_accumulates_across_chains() {
        let params = ParallelParams {
            chains: 2,
            epochs_per_round: 5,
            rounds: 3,
            steps_per_epoch: 40,
            ..Default::default()
        };
        let telemetry = Telemetry::enabled();
        let r = anneal_parallel_with_telemetry(&BUMPY, 200, &params, &telemetry);
        let snap = telemetry.snapshot();
        // 2 chains × 3 rounds × 5 epochs × 40 steps.
        assert_eq!(snap.counter("anneal.proposed"), 1_200);
        assert_eq!(snap.counter("anneal.proposed"), r.accepted + r.rejected);
        assert_eq!(snap.counter("anneal.rounds"), 3);
        // One engine span per chain per round.
        assert_eq!(snap.histogram("anneal.run").count, 6);
        assert_eq!(snap.histogram("anneal.parallel_run").count, 1);
    }

    #[test]
    fn shifted_geometric_matches_direct() {
        let s = CoolingSchedule::Geometric {
            t0: 8.0,
            alpha: 0.5,
            t_min: 1e-9,
        };
        let sh = shifted(s, 2);
        assert!((sh.temperature(0) - s.temperature(2)).abs() < 1e-12);
        assert!((sh.temperature(3) - s.temperature(5)).abs() < 1e-12);
    }
}
