//! The paper's scalable-bit-rate replication/placement problem (Sec. 4.3).
//!
//! "We consider the general case that the encoding bit rate is scalable and
//! different videos can have different bit rates. The encoding bit rate is
//! a discrete variable and its set is given." A state assigns every video
//! a rung on the rate ladder and a set of distinct servers; the annealer
//! maximizes the Eq. (1) objective (implemented as minimizing its
//! negation). The three problem-specific pieces follow the paper exactly:
//!
//! 1. **Cost function** — `−O` from Eq. (1);
//! 2. **Initial solution** — "place the videos encoded with the lowest
//!    possible bit rate to servers in a round-robin way";
//! 3. **Neighborhood** — "a server in the cluster is identified by random.
//!    The bit rate of one video that has been placed on this server is
//!    increased or one new video is placed on the server", followed by
//!    constraint repair: "the algorithm will decrease the bit rate of one
//!    or more videos that have been placed on the server, or delete one or
//!    more videos that are placed with the lowest bit rate so that the
//!    storage and communication constraints can be satisfied" (we delete
//!    *replicas*, never a video's last copy, preserving constraint 7).
//!
//! Expected bandwidth load: one replica of video `i` carries
//! `w_i · b_i = (p_i · demand / r_i) · b_i` kbps of expected outgoing
//! traffic, compared against the server's link capacity (constraint 5).

use crate::engine::AnnealProblem;
use rand::Rng;
use serde::{Deserialize, Serialize};
use vod_model::{load, BitRate, ClusterSpec, ModelError, ObjectiveWeights, Popularity, ServerId};

/// Problem data (immutable across the search).
#[derive(Debug, Clone)]
pub struct ScalableProblem {
    /// Video popularities (rank-ordered).
    pub pop: Popularity,
    /// The cluster's capacities.
    pub cluster: ClusterSpec,
    /// Video duration in seconds (uniform, per the paper).
    pub duration_s: u64,
    /// The discrete bit-rate ladder, ascending.
    pub ladder: Vec<BitRate>,
    /// Expected peak-period demand `λT`, in requests.
    pub demand: f64,
    /// Objective weights `α`, `β` and the `L` metric of Eq. (1).
    pub weights: ObjectiveWeights,
}

/// A search-space point: per-video bit rate and replica servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalableState {
    /// Encoding rate of each video (shared by all its replicas).
    pub rates: Vec<BitRate>,
    /// Replica servers of each video (pairwise distinct per video).
    pub assignments: Vec<Vec<ServerId>>,
}

impl ScalableProblem {
    /// Validates the inputs and checks the lowest-rate single-copy
    /// catalog fits the cluster at all.
    pub fn new(
        pop: Popularity,
        cluster: ClusterSpec,
        duration_s: u64,
        ladder: Vec<BitRate>,
        demand: f64,
        weights: ObjectiveWeights,
    ) -> Result<Self, ModelError> {
        if ladder.is_empty() {
            return Err(ModelError::Empty);
        }
        if !ladder.windows(2).all(|w| w[0] < w[1]) {
            return Err(ModelError::InvalidParameter {
                name: "ladder (must ascend)",
                value: ladder.len() as f64,
            });
        }
        if !demand.is_finite() || demand <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "demand",
                value: demand,
            });
        }
        let problem = ScalableProblem {
            pop,
            cluster,
            duration_s,
            ladder,
            demand,
            weights,
        };
        let initial = problem.initial_state();
        if !problem.is_feasible(&initial) {
            return Err(ModelError::InsufficientStorage {
                required: problem.pop.len() as u64,
                capacity: problem
                    .cluster
                    .total_replica_slots(problem.ladder[0], problem.duration_s),
            });
        }
        Ok(problem)
    }

    /// Number of videos.
    pub fn n_videos(&self) -> usize {
        self.pop.len()
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.cluster.len()
    }

    /// The paper's initial solution: every video at the lowest rate, one
    /// replica each, dealt round-robin.
    pub fn initial_state(&self) -> ScalableState {
        let n = self.n_servers();
        ScalableState {
            rates: vec![self.ladder[0]; self.n_videos()],
            assignments: (0..self.n_videos())
                .map(|v| vec![ServerId((v % n) as u32)])
                .collect(),
        }
    }

    /// Per-server storage use in bytes.
    pub fn storage_used(&self, state: &ScalableState) -> Vec<u64> {
        let mut used = vec![0u64; self.n_servers()];
        for (v, servers) in state.assignments.iter().enumerate() {
            let bytes = state.rates[v].storage_bytes(self.duration_s);
            for &s in servers {
                used[s.index()] += bytes;
            }
        }
        used
    }

    /// Per-server expected outgoing load in kbps.
    pub fn bandwidth_load(&self, state: &ScalableState) -> Vec<f64> {
        let mut loads = vec![0.0f64; self.n_servers()];
        for (v, servers) in state.assignments.iter().enumerate() {
            let r = servers.len() as f64;
            let per_replica = self.pop.get(v) * self.demand / r * state.rates[v].kbps() as f64;
            for &s in servers {
                loads[s.index()] += per_replica;
            }
        }
        loads
    }

    /// Whether `server` satisfies constraints (4) and (5) in `state`.
    fn server_ok(&self, state: &ScalableState, server: usize) -> bool {
        let spec = &self.cluster.servers()[server];
        let storage: u64 = state
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, servers)| servers.contains(&ServerId(server as u32)))
            .map(|(v, _)| state.rates[v].storage_bytes(self.duration_s))
            .sum();
        if storage > spec.storage_bytes {
            return false;
        }
        let load: f64 = state
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, servers)| servers.contains(&ServerId(server as u32)))
            .map(|(v, servers)| {
                self.pop.get(v) * self.demand / servers.len() as f64 * state.rates[v].kbps() as f64
            })
            .sum();
        load <= spec.bandwidth_kbps as f64 + 1e-6
    }

    /// Whether every constraint holds: storage (4), bandwidth (5),
    /// distinct servers (6), `1 ≤ r_i ≤ N` (7), ladder membership.
    pub fn is_feasible(&self, state: &ScalableState) -> bool {
        let n = self.n_servers();
        for (v, servers) in state.assignments.iter().enumerate() {
            if servers.is_empty() || servers.len() > n {
                return false;
            }
            for (i, &s) in servers.iter().enumerate() {
                if s.index() >= n || servers[..i].contains(&s) {
                    return false;
                }
            }
            if !state.rates[v].in_ladder(&self.ladder) {
                return false;
            }
        }
        let used = self.storage_used(state);
        let loads = self.bandwidth_load(state);
        self.cluster
            .servers()
            .iter()
            .zip(used.iter().zip(&loads))
            .all(|(spec, (&u, &l))| {
                u <= spec.storage_bytes && l <= spec.bandwidth_kbps as f64 + 1e-6
            })
    }

    /// The Eq. (1) objective `O` of a state (higher is better).
    pub fn objective(&self, state: &ScalableState) -> f64 {
        let m = self.n_videos() as f64;
        let mean_rate_mbps = state.rates.iter().map(|r| r.mbps()).sum::<f64>() / m;
        let degree = state
            .assignments
            .iter()
            .map(|s| s.len() as f64)
            .sum::<f64>()
            / m;
        let loads = self.bandwidth_load(state);
        let l = load::imbalance(&loads, self.weights.metric);
        self.weights.evaluate_components(mean_rate_mbps, degree, l)
    }

    /// Repairs `state` in place after a load-increasing move on `server`:
    /// while the server violates (4)/(5), step the lowest-rate video on it
    /// down the ladder, or drop a replica (never the last one). Returns
    /// false if the violation cannot be repaired.
    fn repair(&self, state: &mut ScalableState, server: usize) -> bool {
        let sid = ServerId(server as u32);
        let mut guard = 0;
        while !self.server_ok(state, server) {
            guard += 1;
            if guard > 10_000 {
                return false;
            }
            // Videos on this server, lowest rate first, least popular
            // first among ties.
            let victim = state
                .assignments
                .iter()
                .enumerate()
                .filter(|(_, servers)| servers.contains(&sid))
                .map(|(v, _)| v)
                .min_by(|&a, &b| {
                    state.rates[a].cmp(&state.rates[b]).then(b.cmp(&a)) // less popular (higher index) first
                });
            let Some(v) = victim else {
                return false; // nothing on the server yet it violates: impossible
            };
            if let Some(down) = state.rates[v].step_down(&self.ladder) {
                state.rates[v] = down;
            } else if state.assignments[v].len() > 1 {
                state.assignments[v].retain(|&s| s != sid);
            } else {
                // Last replica at the lowest rate: look for any *other*
                // removable or downgradable video on the server.
                let other = state
                    .assignments
                    .iter()
                    .enumerate()
                    .filter(|(u, servers)| {
                        *u != v
                            && servers.contains(&sid)
                            && (state.rates[*u].step_down(&self.ladder).is_some()
                                || servers.len() > 1)
                    })
                    .map(|(u, _)| u)
                    .next();
                match other {
                    Some(u) => {
                        if let Some(down) = state.rates[u].step_down(&self.ladder) {
                            state.rates[u] = down;
                        } else {
                            state.assignments[u].retain(|&s| s != sid);
                        }
                    }
                    None => return false,
                }
            }
        }
        true
    }
}

impl AnnealProblem for ScalableProblem {
    type State = ScalableState;

    /// Energy is `−O`; infeasible states (which repair should prevent)
    /// are pushed out by a large penalty.
    fn energy(&self, state: &ScalableState) -> f64 {
        let mut e = -self.objective(state);
        if !self.is_feasible(state) {
            e += 1e9;
        }
        e
    }

    fn neighbor<R: Rng + ?Sized>(&self, state: &ScalableState, rng: &mut R) -> ScalableState {
        let mut next = state.clone();
        let n = self.n_servers();
        let server = rng.gen_range(0..n);
        let sid = ServerId(server as u32);

        let try_upgrade = rng.gen::<bool>();
        let mut moved = false;

        if try_upgrade {
            // Raise the rate of a random video hosted on the server.
            let hosted: Vec<usize> = next
                .assignments
                .iter()
                .enumerate()
                .filter(|(_, servers)| servers.contains(&sid))
                .map(|(v, _)| v)
                .collect();
            if !hosted.is_empty() {
                let v = hosted[rng.gen_range(0..hosted.len())];
                if let Some(up) = next.rates[v].step_up(&self.ladder) {
                    next.rates[v] = up;
                    moved = true;
                }
            }
        }
        if !moved {
            // Place a new replica of a random absent video on the server.
            let absent: Vec<usize> = next
                .assignments
                .iter()
                .enumerate()
                .filter(|(_, servers)| !servers.contains(&sid) && servers.len() < n)
                .map(|(v, _)| v)
                .collect();
            if absent.is_empty() {
                return state.clone(); // saturated server: no move
            }
            let v = absent[rng.gen_range(0..absent.len())];
            next.assignments[v].push(sid);
            moved = true;
        }
        debug_assert!(moved);

        // The move may overload any server a re-rated video touches.
        let mut ok = self.repair(&mut next, server);
        if ok {
            for j in 0..n {
                if j != server && !self.server_ok(&next, j) {
                    ok = self.repair(&mut next, j);
                    if !ok {
                        break;
                    }
                }
            }
        }
        if ok && self.is_feasible(&next) {
            next
        } else {
            state.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{anneal, AnnealParams};
    use crate::schedule::CoolingSchedule;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vod_model::ServerSpec;

    fn small_problem() -> ScalableProblem {
        let pop = Popularity::zipf(12, 0.75).unwrap();
        // 4 servers; storage for ~6 low-rate replicas each; generous links.
        let low_bytes = BitRate::LADDER[0].storage_bytes(5_400);
        let cluster = ClusterSpec::homogeneous(
            4,
            ServerSpec {
                storage_bytes: 6 * low_bytes,
                bandwidth_kbps: 1_800_000,
            },
        )
        .unwrap();
        ScalableProblem::new(
            pop,
            cluster,
            5_400,
            BitRate::LADDER.to_vec(),
            2_000.0,
            ObjectiveWeights::default(),
        )
        .unwrap()
    }

    #[test]
    fn initial_state_is_feasible_round_robin() {
        let p = small_problem();
        let s = p.initial_state();
        assert!(p.is_feasible(&s));
        assert!(s.rates.iter().all(|&r| r == BitRate::LADDER[0]));
        assert_eq!(s.assignments[0], vec![ServerId(0)]);
        assert_eq!(s.assignments[5], vec![ServerId(1)]);
    }

    #[test]
    fn neighbor_preserves_feasibility() {
        let p = small_problem();
        let mut s = p.initial_state();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..500 {
            s = p.neighbor(&s, &mut rng);
            assert!(p.is_feasible(&s));
        }
    }

    #[test]
    fn neighbor_never_drops_a_video() {
        let p = small_problem();
        let mut s = p.initial_state();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..500 {
            s = p.neighbor(&s, &mut rng);
            assert!(s.assignments.iter().all(|a| !a.is_empty()));
        }
    }

    #[test]
    fn annealing_improves_objective() {
        let p = small_problem();
        let initial = p.initial_state();
        let o0 = p.objective(&initial);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let result = anneal(
            &p,
            initial,
            &AnnealParams {
                schedule: CoolingSchedule::default_geometric(0.5),
                epochs: 60,
                steps_per_epoch: 50,
            },
            &mut rng,
        );
        let o_best = p.objective(&result.best_state);
        assert!(
            o_best > o0,
            "SA failed to improve: {o_best} vs initial {o0}"
        );
        assert!(p.is_feasible(&result.best_state));
    }

    #[test]
    fn objective_components_make_sense() {
        let p = small_problem();
        let s = p.initial_state();
        // Initial: 1.5 Mbps mean rate, degree 1, some imbalance >= 0.
        let o = p.objective(&s);
        assert!(o <= 1.5 + 1.0);
        assert!(o > 0.0);
    }

    #[test]
    fn storage_and_bandwidth_accounting() {
        let p = small_problem();
        let s = p.initial_state();
        let used = p.storage_used(&s);
        let low_bytes = BitRate::LADDER[0].storage_bytes(5_400);
        // 12 videos round-robin on 4 servers: 3 replicas each.
        assert!(used.iter().all(|&u| u == 3 * low_bytes));
        let loads = p.bandwidth_load(&s);
        let total: f64 = loads.iter().sum();
        // Total expected load = demand * mean rate = 2000 * 1500 kbps.
        assert!((total - 2_000.0 * 1_500.0).abs() < 1.0);
    }

    #[test]
    fn infeasible_state_penalized() {
        let p = small_problem();
        let mut s = p.initial_state();
        // Cram every video onto server 0 at the top rate: infeasible.
        for (v, a) in s.assignments.iter_mut().enumerate() {
            *a = vec![ServerId(0)];
            s.rates[v] = BitRate::STUDIO;
        }
        assert!(!p.is_feasible(&s));
        assert!(p.energy(&s) > 1e8);
    }

    #[test]
    fn rejects_bad_construction() {
        let pop = Popularity::zipf(4, 0.5).unwrap();
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: 1, // can't hold anything
                bandwidth_kbps: 1_000_000,
            },
        )
        .unwrap();
        assert!(ScalableProblem::new(
            pop.clone(),
            cluster.clone(),
            5_400,
            BitRate::LADDER.to_vec(),
            100.0,
            ObjectiveWeights::default(),
        )
        .is_err());
        // Unsorted ladder rejected.
        let big = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 1_000_000,
            },
        )
        .unwrap();
        assert!(ScalableProblem::new(
            pop,
            big,
            5_400,
            vec![BitRate::MPEG2, BitRate::MPEG1],
            100.0,
            ObjectiveWeights::default(),
        )
        .is_err());
    }

    #[test]
    fn constraint_7_respected_after_long_walk() {
        let p = small_problem();
        let mut s = p.initial_state();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..300 {
            s = p.neighbor(&s, &mut rng);
        }
        for servers in &s.assignments {
            assert!(servers.len() <= p.n_servers());
            let mut sorted = servers.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), servers.len());
        }
    }
}
