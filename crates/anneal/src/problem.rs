//! The paper's scalable-bit-rate replication/placement problem (Sec. 4.3).
//!
//! "We consider the general case that the encoding bit rate is scalable and
//! different videos can have different bit rates. The encoding bit rate is
//! a discrete variable and its set is given." A state assigns every video
//! a rung on the rate ladder and a set of distinct servers; the annealer
//! maximizes the Eq. (1) objective (implemented as minimizing its
//! negation). The three problem-specific pieces follow the paper exactly:
//!
//! 1. **Cost function** — `−O` from Eq. (1);
//! 2. **Initial solution** — "place the videos encoded with the lowest
//!    possible bit rate to servers in a round-robin way";
//! 3. **Neighborhood** — "a server in the cluster is identified by random.
//!    The bit rate of one video that has been placed on this server is
//!    increased or one new video is placed on the server", followed by
//!    constraint repair: "the algorithm will decrease the bit rate of one
//!    or more videos that have been placed on the server, or delete one or
//!    more videos that are placed with the lowest bit rate so that the
//!    storage and communication constraints can be satisfied" (we delete
//!    *replicas*, never a video's last copy, preserving constraint 7).
//!
//! Expected bandwidth load: one replica of video `i` carries
//! `w_i · b_i = (p_i · demand / r_i) · b_i` kbps of expected outgoing
//! traffic, compared against the server's link capacity (constraint 5).
//!
//! # Two search paths
//!
//! The problem implements both engine traits:
//!
//! * [`NeighborProblem`] over plain [`ScalableState`] — the original
//!   clone-and-recompute neighborhood, kept as the reference
//!   implementation and the legacy side of A/B benchmarks;
//! * [`AnnealProblem`] over [`ScalableSearch`] — the delta-evaluated
//!   path: the state carries per-server aggregates (storage used,
//!   expected bandwidth load, hosted-video lists, and the Eq. (1)
//!   component sums) that moves update incrementally, so one Metropolis
//!   step costs O(replicas touched) + O(N) for the imbalance term
//!   instead of an O(M·N) full rescan. Proposals draw the *same RNG
//!   sequence* as the legacy neighborhood (hosted lists are kept in
//!   ascending video order, absent videos are rank-selected from the
//!   complement), and repair reproduces the legacy victim order, so
//!   both paths walk identical trajectories from the same seed. Where
//!   the legacy path returned the unchanged state as a "no-op neighbor"
//!   (saturated server, unrepairable move) — an accepted move that
//!   changed nothing and consumed no Metropolis draw — the delta path
//!   rejects the proposal instead, which is the same search with
//!   different bookkeeping.

use crate::delta::{nth_absent, sorted_insert, sorted_remove, SnapLog, TxnStatus};
use crate::engine::{AnnealProblem, NeighborProblem};
use rand::Rng;
use serde::{Deserialize, Serialize};
use vod_model::{load, BitRate, ClusterSpec, ModelError, ObjectiveWeights, Popularity, ServerId};

/// Problem data (immutable across the search).
#[derive(Debug, Clone)]
pub struct ScalableProblem {
    /// Video popularities (rank-ordered).
    pub pop: Popularity,
    /// The cluster's capacities.
    pub cluster: ClusterSpec,
    /// Video duration in seconds (uniform, per the paper).
    pub duration_s: u64,
    /// The discrete bit-rate ladder, ascending.
    pub ladder: Vec<BitRate>,
    /// Expected peak-period demand `λT`, in requests.
    pub demand: f64,
    /// Objective weights `α`, `β` and the `L` metric of Eq. (1).
    pub weights: ObjectiveWeights,
}

/// A search-space point: per-video bit rate and replica servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalableState {
    /// Encoding rate of each video (shared by all its replicas).
    pub rates: Vec<BitRate>,
    /// Replica servers of each video (pairwise distinct per video).
    pub assignments: Vec<Vec<ServerId>>,
}

impl ScalableProblem {
    /// Validates the inputs and checks the lowest-rate single-copy
    /// catalog fits the cluster at all.
    pub fn new(
        pop: Popularity,
        cluster: ClusterSpec,
        duration_s: u64,
        ladder: Vec<BitRate>,
        demand: f64,
        weights: ObjectiveWeights,
    ) -> Result<Self, ModelError> {
        if ladder.is_empty() {
            return Err(ModelError::Empty);
        }
        if !ladder.windows(2).all(|w| w[0] < w[1]) {
            return Err(ModelError::InvalidParameter {
                name: "ladder (must ascend)",
                value: ladder.len() as f64,
            });
        }
        if !demand.is_finite() || demand <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "demand",
                value: demand,
            });
        }
        let problem = ScalableProblem {
            pop,
            cluster,
            duration_s,
            ladder,
            demand,
            weights,
        };
        let initial = problem.initial_state();
        if !problem.is_feasible(&initial) {
            return Err(ModelError::InsufficientStorage {
                required: problem.pop.len() as u64,
                capacity: problem
                    .cluster
                    .total_replica_slots(problem.ladder[0], problem.duration_s),
            });
        }
        Ok(problem)
    }

    /// Number of videos.
    pub fn n_videos(&self) -> usize {
        self.pop.len()
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.cluster.len()
    }

    /// The paper's initial solution: every video at the lowest rate, one
    /// replica each, dealt round-robin.
    pub fn initial_state(&self) -> ScalableState {
        let n = self.n_servers();
        ScalableState {
            rates: vec![self.ladder[0]; self.n_videos()],
            assignments: (0..self.n_videos())
                .map(|v| vec![ServerId((v % n) as u32)])
                .collect(),
        }
    }

    /// Per-server storage use in bytes.
    pub fn storage_used(&self, state: &ScalableState) -> Vec<u64> {
        let mut used = vec![0u64; self.n_servers()];
        for (v, servers) in state.assignments.iter().enumerate() {
            let bytes = state.rates[v].storage_bytes(self.duration_s);
            for &s in servers {
                used[s.index()] += bytes;
            }
        }
        used
    }

    /// Per-server expected outgoing load in kbps.
    pub fn bandwidth_load(&self, state: &ScalableState) -> Vec<f64> {
        let mut loads = vec![0.0f64; self.n_servers()];
        for (v, servers) in state.assignments.iter().enumerate() {
            let r = servers.len() as f64;
            let per_replica = self.pop.get(v) * self.demand / r * state.rates[v].kbps() as f64;
            for &s in servers {
                loads[s.index()] += per_replica;
            }
        }
        loads
    }

    /// Whether `server` satisfies constraints (4) and (5) in `state`.
    fn server_ok(&self, state: &ScalableState, server: usize) -> bool {
        let spec = &self.cluster.servers()[server];
        let storage: u64 = state
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, servers)| servers.contains(&ServerId(server as u32)))
            .map(|(v, _)| state.rates[v].storage_bytes(self.duration_s))
            .sum();
        if storage > spec.storage_bytes {
            return false;
        }
        let load: f64 = state
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, servers)| servers.contains(&ServerId(server as u32)))
            .map(|(v, servers)| {
                self.pop.get(v) * self.demand / servers.len() as f64 * state.rates[v].kbps() as f64
            })
            .sum();
        load <= spec.bandwidth_kbps as f64 + 1e-6
    }

    /// Whether every constraint holds: storage (4), bandwidth (5),
    /// distinct servers (6), `1 ≤ r_i ≤ N` (7), ladder membership.
    pub fn is_feasible(&self, state: &ScalableState) -> bool {
        let n = self.n_servers();
        for (v, servers) in state.assignments.iter().enumerate() {
            if servers.is_empty() || servers.len() > n {
                return false;
            }
            for (i, &s) in servers.iter().enumerate() {
                if s.index() >= n || servers[..i].contains(&s) {
                    return false;
                }
            }
            if !state.rates[v].in_ladder(&self.ladder) {
                return false;
            }
        }
        let used = self.storage_used(state);
        let loads = self.bandwidth_load(state);
        self.cluster
            .servers()
            .iter()
            .zip(used.iter().zip(&loads))
            .all(|(spec, (&u, &l))| {
                u <= spec.storage_bytes && l <= spec.bandwidth_kbps as f64 + 1e-6
            })
    }

    /// The Eq. (1) objective `O` of a state (higher is better).
    pub fn objective(&self, state: &ScalableState) -> f64 {
        let m = self.n_videos() as f64;
        let mean_rate_mbps = state.rates.iter().map(|r| r.mbps()).sum::<f64>() / m;
        let degree = state
            .assignments
            .iter()
            .map(|s| s.len() as f64)
            .sum::<f64>()
            / m;
        let loads = self.bandwidth_load(state);
        let l = load::imbalance(&loads, self.weights.metric);
        self.weights.evaluate_components(mean_rate_mbps, degree, l)
    }

    /// Energy (`−O`, plus the legacy 1e9 penalty if infeasible) from a
    /// full recompute — the reference both search paths must agree with.
    fn scratch_energy(&self, state: &ScalableState) -> f64 {
        let mut e = -self.objective(state);
        if !self.is_feasible(state) {
            e += 1e9;
        }
        e
    }

    /// Repairs `state` in place after a load-increasing move on `server`:
    /// while the server violates (4)/(5), step the lowest-rate video on it
    /// down the ladder, or drop a replica (never the last one). Returns
    /// false if the violation cannot be repaired.
    fn repair(&self, state: &mut ScalableState, server: usize) -> bool {
        let sid = ServerId(server as u32);
        let mut guard = 0;
        while !self.server_ok(state, server) {
            guard += 1;
            if guard > 10_000 {
                return false;
            }
            // Videos on this server, lowest rate first, least popular
            // first among ties.
            let victim = state
                .assignments
                .iter()
                .enumerate()
                .filter(|(_, servers)| servers.contains(&sid))
                .map(|(v, _)| v)
                .min_by(|&a, &b| {
                    state.rates[a].cmp(&state.rates[b]).then(b.cmp(&a)) // less popular (higher index) first
                });
            let Some(v) = victim else {
                return false; // nothing on the server yet it violates: impossible
            };
            if let Some(down) = state.rates[v].step_down(&self.ladder) {
                state.rates[v] = down;
            } else if state.assignments[v].len() > 1 {
                state.assignments[v].retain(|&s| s != sid);
            } else {
                // Last replica at the lowest rate: look for any *other*
                // removable or downgradable video on the server.
                let other = state
                    .assignments
                    .iter()
                    .enumerate()
                    .filter(|(u, servers)| {
                        *u != v
                            && servers.contains(&sid)
                            && (state.rates[*u].step_down(&self.ladder).is_some()
                                || servers.len() > 1)
                    })
                    .map(|(u, _)| u)
                    .next();
                match other {
                    Some(u) => {
                        if let Some(down) = state.rates[u].step_down(&self.ladder) {
                            state.rates[u] = down;
                        } else {
                            state.assignments[u].retain(|&s| s != sid);
                        }
                    }
                    None => return false,
                }
            }
        }
        true
    }

    /// Wraps a feasible state into the delta-evaluated search
    /// representation, building all cached aggregates from scratch.
    pub fn search_state(&self, state: ScalableState) -> ScalableSearch {
        debug_assert!(
            self.is_feasible(&state),
            "search_state expects a feasible state"
        );
        let n = self.n_servers();
        let storage = self.storage_used(&state);
        let load = self.bandwidth_load(&state);
        let mut hosted = vec![Vec::new(); n];
        for (v, servers) in state.assignments.iter().enumerate() {
            for &s in servers {
                hosted[s.index()].push(v as u32);
            }
        }
        for h in &mut hosted {
            h.sort_unstable();
        }
        let rate_sum_mbps = state.rates.iter().map(|r| r.mbps()).sum::<f64>();
        let replica_total = state.assignments.iter().map(|a| a.len() as u64).sum();
        let mut search = ScalableSearch {
            state,
            cache: ScalableCache {
                storage,
                load,
                hosted,
                rate_sum_mbps,
                replica_total,
                energy: 0.0,
            },
            txn: ScalableTxn::default(),
        };
        search.recompute_energy(self);
        search
    }

    /// [`search_state`](ScalableProblem::search_state) of the paper's
    /// initial solution.
    pub fn initial_search(&self) -> ScalableSearch {
        self.search_state(self.initial_state())
    }
}

/// Cached per-server aggregates of a [`ScalableSearch`]. All values are
/// maintained incrementally by moves and restored bit-for-bit on
/// revert; the differential test suite pins them against a from-scratch
/// rebuild.
#[derive(Debug, Clone, PartialEq)]
struct ScalableCache {
    /// Bytes stored per server.
    storage: Vec<u64>,
    /// Expected outgoing kbps per server.
    load: Vec<f64>,
    /// Videos hosted per server, ascending — the proposal candidate
    /// lists (ascending order keeps RNG draws aligned with the legacy
    /// filter-in-index-order scans).
    hosted: Vec<Vec<u32>>,
    /// `Σ_i b_i` in Mbps (quality component numerator).
    rate_sum_mbps: f64,
    /// `Σ_i r_i` (replication-degree numerator).
    replica_total: u64,
    /// Energy (`−O`) of the current state.
    energy: f64,
}

/// Structural undo record for one elementary mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScalableUndo {
    /// `rates[video]` was `old`.
    Rate { video: u32, old: BitRate },
    /// A replica was appended to `assignments[video]`.
    PushedReplica { video: u32 },
    /// `assignments[video][pos]` (on `server`) was removed.
    RemovedReplica { video: u32, server: u32, pos: u32 },
}

/// Scratch transaction state: undo logs and pre-move snapshots.
#[derive(Debug, Clone, Default)]
struct ScalableTxn {
    status: TxnStatus,
    pending: Option<ScalableMove>,
    undo: Vec<ScalableUndo>,
    load_snap: SnapLog<f64>,
    storage_snap: SnapLog<u64>,
    rate_sum_snap: f64,
    replica_total_snap: u64,
    energy_snap: f64,
}

/// The delta-evaluated search representation: a [`ScalableState`] plus
/// its cached aggregates and reusable move scratch. Build one with
/// [`ScalableProblem::search_state`]; equality compares state and
/// caches (not scratch).
#[derive(Debug, Clone)]
pub struct ScalableSearch {
    state: ScalableState,
    cache: ScalableCache,
    txn: ScalableTxn,
}

impl PartialEq for ScalableSearch {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state && self.cache == other.cache
    }
}

impl ScalableSearch {
    /// The underlying search-space point.
    pub fn state(&self) -> &ScalableState {
        &self.state
    }

    /// Unwraps into the underlying search-space point.
    pub fn into_state(self) -> ScalableState {
        self.state
    }

    /// Opens a move transaction.
    fn begin(&mut self, n_servers: usize) {
        debug_assert!(
            matches!(self.txn.status, TxnStatus::Idle | TxnStatus::Committed),
            "begin over an unresolved tentative move"
        );
        self.txn.undo.clear();
        self.txn.load_snap.begin(n_servers);
        self.txn.storage_snap.begin(n_servers);
        self.txn.rate_sum_snap = self.cache.rate_sum_mbps;
        self.txn.replica_total_snap = self.cache.replica_total;
        self.txn.energy_snap = self.cache.energy;
        self.txn.status = TxnStatus::Idle;
        self.txn.pending = None;
    }

    /// Undoes the open (or still-logged) transaction, restoring state
    /// and caches bit-for-bit.
    fn rollback(&mut self) {
        while let Some(entry) = self.txn.undo.pop() {
            match entry {
                ScalableUndo::Rate { video, old } => {
                    self.state.rates[video as usize] = old;
                }
                ScalableUndo::PushedReplica { video } => {
                    let sid = self.state.assignments[video as usize]
                        .pop()
                        .expect("pushed replica present");
                    sorted_remove(&mut self.cache.hosted[sid.index()], video);
                }
                ScalableUndo::RemovedReplica { video, server, pos } => {
                    self.state.assignments[video as usize].insert(pos as usize, ServerId(server));
                    sorted_insert(&mut self.cache.hosted[server as usize], video);
                }
            }
        }
        self.txn.load_snap.rollback(&mut self.cache.load);
        self.txn.storage_snap.rollback(&mut self.cache.storage);
        self.cache.rate_sum_mbps = self.txn.rate_sum_snap;
        self.cache.replica_total = self.txn.replica_total_snap;
        self.cache.energy = self.txn.energy_snap;
        self.txn.status = TxnStatus::Idle;
        self.txn.pending = None;
    }

    /// Cached constraint check for one server — the O(1) replacement
    /// for the legacy per-server rescan.
    fn server_ok(&self, p: &ScalableProblem, server: usize) -> bool {
        let spec = &p.cluster.servers()[server];
        self.cache.storage[server] <= spec.storage_bytes
            && self.cache.load[server] <= spec.bandwidth_kbps as f64 + 1e-6
    }

    /// Re-rates `video`, updating storage and load on every server
    /// holding a replica.
    fn set_rate(&mut self, p: &ScalableProblem, video: usize, new: BitRate) {
        let old = self.state.rates[video];
        self.txn.undo.push(ScalableUndo::Rate {
            video: video as u32,
            old,
        });
        let old_bytes = old.storage_bytes(p.duration_s);
        let new_bytes = new.storage_bytes(p.duration_s);
        let w = p.pop.get(video) * p.demand / self.state.assignments[video].len() as f64;
        let old_term = w * old.kbps() as f64;
        let new_term = w * new.kbps() as f64;
        for k in 0..self.state.assignments[video].len() {
            let s = self.state.assignments[video][k].index();
            self.txn.storage_snap.touch(s, self.cache.storage[s]);
            self.cache.storage[s] = self.cache.storage[s] - old_bytes + new_bytes;
            self.txn.load_snap.touch(s, self.cache.load[s]);
            self.cache.load[s] = self.cache.load[s] - old_term + new_term;
        }
        self.state.rates[video] = new;
        self.cache.rate_sum_mbps += new.mbps() - old.mbps();
    }

    /// Adds a replica of `video` on `server`, redistributing the
    /// per-replica request share `p_v · demand / r_v`.
    fn add_replica(&mut self, p: &ScalableProblem, video: usize, server: usize) {
        let rate = self.state.rates[video];
        let bytes = rate.storage_bytes(p.duration_s);
        let kbps = rate.kbps() as f64;
        let pd = p.pop.get(video) * p.demand;
        let r_old = self.state.assignments[video].len() as f64;
        let old_term = pd / r_old * kbps;
        let new_term = pd / (r_old + 1.0) * kbps;
        for k in 0..self.state.assignments[video].len() {
            let s = self.state.assignments[video][k].index();
            self.txn.load_snap.touch(s, self.cache.load[s]);
            self.cache.load[s] = self.cache.load[s] - old_term + new_term;
        }
        self.txn
            .storage_snap
            .touch(server, self.cache.storage[server]);
        self.cache.storage[server] += bytes;
        self.txn.load_snap.touch(server, self.cache.load[server]);
        self.cache.load[server] += new_term;
        self.state.assignments[video].push(ServerId(server as u32));
        sorted_insert(&mut self.cache.hosted[server], video as u32);
        self.cache.replica_total += 1;
        self.txn.undo.push(ScalableUndo::PushedReplica {
            video: video as u32,
        });
    }

    /// Removes `video`'s replica on `server` (not its last one).
    fn remove_replica(&mut self, p: &ScalableProblem, video: usize, server: usize) {
        let sid = ServerId(server as u32);
        let pos = self.state.assignments[video]
            .iter()
            .position(|&s| s == sid)
            .expect("replica hosted on server");
        let rate = self.state.rates[video];
        let bytes = rate.storage_bytes(p.duration_s);
        let kbps = rate.kbps() as f64;
        let pd = p.pop.get(video) * p.demand;
        let r_old = self.state.assignments[video].len() as f64;
        let old_term = pd / r_old * kbps;
        let new_term = pd / (r_old - 1.0) * kbps;
        for k in 0..self.state.assignments[video].len() {
            let s = self.state.assignments[video][k].index();
            self.txn.load_snap.touch(s, self.cache.load[s]);
            if k == pos {
                self.cache.load[s] -= old_term;
            } else {
                self.cache.load[s] = self.cache.load[s] - old_term + new_term;
            }
        }
        self.txn
            .storage_snap
            .touch(server, self.cache.storage[server]);
        self.cache.storage[server] -= bytes;
        self.state.assignments[video].remove(pos);
        sorted_remove(&mut self.cache.hosted[server], video as u32);
        self.cache.replica_total -= 1;
        self.txn.undo.push(ScalableUndo::RemovedReplica {
            video: video as u32,
            server: server as u32,
            pos: pos as u32,
        });
    }

    /// Cached-aggregate mirror of [`ScalableProblem::repair`]: same
    /// victim order (lowest rate, then highest video index), same
    /// decrease-or-drop discipline, same last-replica fallback.
    fn repair(&mut self, p: &ScalableProblem, server: usize) -> bool {
        let mut guard = 0;
        while !self.server_ok(p, server) {
            guard += 1;
            if guard > 10_000 {
                return false;
            }
            let mut victim: Option<(BitRate, u32)> = None;
            for &v in &self.cache.hosted[server] {
                let rate = self.state.rates[v as usize];
                // `<=` keeps the last (highest-index) video among
                // rate ties, matching the legacy comparator.
                if victim.is_none_or(|(best, _)| rate <= best) {
                    victim = Some((rate, v));
                }
            }
            let Some((rate, v)) = victim else {
                return false; // nothing on the server yet it violates: impossible
            };
            let v = v as usize;
            if let Some(down) = rate.step_down(&p.ladder) {
                self.set_rate(p, v, down);
            } else if self.state.assignments[v].len() > 1 {
                self.remove_replica(p, v, server);
            } else {
                // Last replica at the lowest rate: first *other* video
                // on the server (ascending index) that can shrink.
                let mut other = None;
                for &u in &self.cache.hosted[server] {
                    if u as usize == v {
                        continue;
                    }
                    if self.state.rates[u as usize].step_down(&p.ladder).is_some()
                        || self.state.assignments[u as usize].len() > 1
                    {
                        other = Some(u as usize);
                        break;
                    }
                }
                let Some(u) = other else {
                    return false;
                };
                if let Some(down) = self.state.rates[u].step_down(&p.ladder) {
                    self.set_rate(p, u, down);
                } else {
                    self.remove_replica(p, u, server);
                }
            }
        }
        true
    }

    /// Recomputes the cached energy from the cached Eq. (1) component
    /// aggregates — O(N) for the imbalance term, nothing touches the
    /// per-video dimension.
    fn recompute_energy(&mut self, p: &ScalableProblem) {
        let m = p.n_videos() as f64;
        let mean_rate_mbps = self.cache.rate_sum_mbps / m;
        let degree = self.cache.replica_total as f64 / m;
        let l = load::imbalance(&self.cache.load, p.weights.metric);
        self.cache.energy = -p.weights.evaluate_components(mean_rate_mbps, degree, l);
    }

    /// Whether the open transaction's net effect on the *state* is the
    /// identity — e.g. an upgrade that repair stepped straight back
    /// down, or an added replica that repair immediately dropped. The
    /// legacy path saw two equal states there and got an exactly-zero
    /// energy delta (accepting without a Metropolis draw); the caller
    /// must reproduce that by rolling back the (drifted) caches and
    /// reporting the current energy unchanged.
    fn txn_is_identity(&self) -> bool {
        let undo = &self.txn.undo;
        // At most one push per move (the primary op); repair only
        // removes. `pushed` tracks whether it is still uncancelled.
        let mut pushed: Option<u32> = None;
        for (i, e) in undo.iter().enumerate() {
            match *e {
                ScalableUndo::Rate { video, old } => {
                    // Only a slot's first record holds its original value.
                    let first = !undo[..i]
                        .iter()
                        .any(|p| matches!(*p, ScalableUndo::Rate { video: v, .. } if v == video));
                    if first && self.state.rates[video as usize] != old {
                        return false;
                    }
                }
                ScalableUndo::PushedReplica { video } => pushed = Some(video),
                ScalableUndo::RemovedReplica { video, pos, .. } => {
                    // Cancels the push only if it removed the appended
                    // replica itself (always the last slot); any other
                    // removal is irreversible within one move.
                    if pushed == Some(video)
                        && pos as usize == self.state.assignments[video as usize].len()
                    {
                        pushed = None;
                    } else {
                        return false;
                    }
                }
            }
        }
        pushed.is_none()
    }
}

/// One elementary move of the delta-evaluated scalable search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalableMove {
    kind: ScalableMoveKind,
    video: u32,
    server: u32,
}

/// What a [`ScalableMove`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScalableMoveKind {
    /// Step `video`'s rate up one ladder rung.
    Upgrade,
    /// Place a new replica of `video` on `server`.
    AddReplica,
}

/// Legacy clone-based search path (reference implementation).
impl NeighborProblem for ScalableProblem {
    type State = ScalableState;

    /// Energy is `−O`; infeasible states (which repair should prevent)
    /// are pushed out by a large penalty.
    fn energy(&self, state: &ScalableState) -> f64 {
        self.scratch_energy(state)
    }

    fn neighbor<R: Rng + ?Sized>(&self, state: &ScalableState, rng: &mut R) -> ScalableState {
        let mut next = state.clone();
        let n = self.n_servers();
        let server = rng.gen_range(0..n);
        let sid = ServerId(server as u32);

        let try_upgrade = rng.gen::<bool>();
        let mut moved = false;

        if try_upgrade {
            // Raise the rate of a random video hosted on the server.
            let hosted: Vec<usize> = next
                .assignments
                .iter()
                .enumerate()
                .filter(|(_, servers)| servers.contains(&sid))
                .map(|(v, _)| v)
                .collect();
            if !hosted.is_empty() {
                let v = hosted[rng.gen_range(0..hosted.len())];
                if let Some(up) = next.rates[v].step_up(&self.ladder) {
                    next.rates[v] = up;
                    moved = true;
                }
            }
        }
        if !moved {
            // Place a new replica of a random absent video on the server.
            let absent: Vec<usize> = next
                .assignments
                .iter()
                .enumerate()
                .filter(|(_, servers)| !servers.contains(&sid) && servers.len() < n)
                .map(|(v, _)| v)
                .collect();
            if absent.is_empty() {
                return state.clone(); // saturated server: no move
            }
            let v = absent[rng.gen_range(0..absent.len())];
            next.assignments[v].push(sid);
            moved = true;
        }
        debug_assert!(moved);

        // The move may overload any server a re-rated video touches.
        let mut ok = self.repair(&mut next, server);
        if ok {
            for j in 0..n {
                if j != server && !self.server_ok(&next, j) {
                    ok = self.repair(&mut next, j);
                    if !ok {
                        break;
                    }
                }
            }
        }
        if ok && self.is_feasible(&next) {
            next
        } else {
            state.clone()
        }
    }
}

/// Delta-evaluated search path.
impl AnnealProblem for ScalableProblem {
    type State = ScalableSearch;
    type Move = ScalableMove;

    fn energy(&self, search: &ScalableSearch) -> f64 {
        self.scratch_energy(&search.state)
    }

    fn state_energy(&self, search: &ScalableSearch) -> f64 {
        search.cache.energy
    }

    /// Draws the legacy neighborhood's RNG sequence: server, upgrade
    /// coin, then an index into the hosted (ascending) or absent
    /// (rank-selected) candidate list. Returns `None` exactly where the
    /// legacy path returned the unchanged state (saturated server).
    fn propose_move<R: Rng + ?Sized>(
        &self,
        search: &mut ScalableSearch,
        rng: &mut R,
    ) -> Option<ScalableMove> {
        let n = self.n_servers();
        let server = rng.gen_range(0..n);
        let try_upgrade = rng.gen::<bool>();
        if try_upgrade {
            let hosted = &search.cache.hosted[server];
            if !hosted.is_empty() {
                let v = hosted[rng.gen_range(0..hosted.len())];
                if search.state.rates[v as usize]
                    .step_up(&self.ladder)
                    .is_some()
                {
                    return Some(ScalableMove {
                        kind: ScalableMoveKind::Upgrade,
                        video: v,
                        server: server as u32,
                    });
                }
                // Already at the top rung: fall through to add-replica,
                // like the legacy `moved = false` path.
            }
        }
        let hosted = &search.cache.hosted[server];
        let absent = self.n_videos() - hosted.len();
        if absent == 0 {
            return None; // saturated server: no move
        }
        let v = nth_absent(hosted, rng.gen_range(0..absent));
        Some(ScalableMove {
            kind: ScalableMoveKind::AddReplica,
            video: v,
            server: server as u32,
        })
    }

    fn evaluate_move(&self, search: &mut ScalableSearch, mv: &ScalableMove) -> Option<f64> {
        let n = self.n_servers();
        search.begin(n);
        let video = mv.video as usize;
        let server = mv.server as usize;
        match mv.kind {
            ScalableMoveKind::Upgrade => {
                let up = search.state.rates[video]
                    .step_up(&self.ladder)
                    .expect("proposed upgrade has ladder headroom");
                search.set_rate(self, video, up);
            }
            ScalableMoveKind::AddReplica => search.add_replica(self, video, server),
        }
        let mut ok = search.repair(self, server);
        if ok {
            for j in 0..n {
                if j != server && !search.server_ok(self, j) {
                    ok = search.repair(self, j);
                    if !ok {
                        break;
                    }
                }
            }
        }
        // Repairing a later server can re-load an earlier one (dropping
        // a replica shifts its request share onto the survivors), so
        // sweep all headrooms once more — the cached equivalent of the
        // legacy full `is_feasible` recheck.
        ok = ok && (0..n).all(|j| search.server_ok(self, j));
        if !ok {
            search.rollback();
            return None;
        }
        if search.txn_is_identity() {
            // Net no-op: restore the caches bit-for-bit (incremental
            // updates drift even over an identity cycle) and commit an
            // empty transaction, so the candidate energy equals the
            // current energy exactly and the engine accepts without a
            // Metropolis draw — just like the legacy clone path.
            search.rollback();
            search.txn.status = TxnStatus::Tentative;
            search.txn.pending = Some(*mv);
            return Some(search.cache.energy);
        }
        search.recompute_energy(self);
        search.txn.status = TxnStatus::Tentative;
        search.txn.pending = Some(*mv);
        Some(search.cache.energy)
    }

    fn apply(&self, search: &mut ScalableSearch, mv: &ScalableMove) -> bool {
        if search.txn.status == TxnStatus::Tentative {
            debug_assert_eq!(search.txn.pending, Some(*mv));
            search.txn.status = TxnStatus::Committed;
            return true;
        }
        self.evaluate_move(search, mv);
        if search.txn.status == TxnStatus::Tentative {
            search.txn.status = TxnStatus::Committed;
            true
        } else {
            false
        }
    }

    fn revert(&self, search: &mut ScalableSearch, mv: &ScalableMove) {
        if search.txn.status != TxnStatus::Idle {
            debug_assert_eq!(search.txn.pending, Some(*mv));
            search.rollback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{anneal, anneal_neighbor, AnnealParams};
    use crate::schedule::CoolingSchedule;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vod_model::ServerSpec;

    fn small_problem() -> ScalableProblem {
        let pop = Popularity::zipf(12, 0.75).unwrap();
        // 4 servers; storage for ~6 low-rate replicas each; generous links.
        let low_bytes = BitRate::LADDER[0].storage_bytes(5_400);
        let cluster = ClusterSpec::homogeneous(
            4,
            ServerSpec {
                storage_bytes: 6 * low_bytes,
                bandwidth_kbps: 1_800_000,
            },
        )
        .unwrap();
        ScalableProblem::new(
            pop,
            cluster,
            5_400,
            BitRate::LADDER.to_vec(),
            2_000.0,
            ObjectiveWeights::default(),
        )
        .unwrap()
    }

    #[test]
    fn initial_state_is_feasible_round_robin() {
        let p = small_problem();
        let s = p.initial_state();
        assert!(p.is_feasible(&s));
        assert!(s.rates.iter().all(|&r| r == BitRate::LADDER[0]));
        assert_eq!(s.assignments[0], vec![ServerId(0)]);
        assert_eq!(s.assignments[5], vec![ServerId(1)]);
    }

    #[test]
    fn neighbor_preserves_feasibility() {
        let p = small_problem();
        let mut s = p.initial_state();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..500 {
            s = p.neighbor(&s, &mut rng);
            assert!(p.is_feasible(&s));
        }
    }

    #[test]
    fn neighbor_never_drops_a_video() {
        let p = small_problem();
        let mut s = p.initial_state();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..500 {
            s = p.neighbor(&s, &mut rng);
            assert!(s.assignments.iter().all(|a| !a.is_empty()));
        }
    }

    #[test]
    fn annealing_improves_objective() {
        let p = small_problem();
        let initial = p.initial_state();
        let o0 = p.objective(&initial);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let result = anneal(
            &p,
            p.search_state(initial),
            &AnnealParams {
                schedule: CoolingSchedule::default_geometric(0.5),
                epochs: 60,
                steps_per_epoch: 50,
            },
            &mut rng,
        );
        let o_best = p.objective(result.best_state.state());
        assert!(
            o_best > o0,
            "SA failed to improve: {o_best} vs initial {o0}"
        );
        assert!(p.is_feasible(result.best_state.state()));
    }

    #[test]
    fn delta_walk_matches_legacy_walk() {
        // The strongest equivalence check: from the same seed, the
        // delta-evaluated search and the legacy clone-based search must
        // visit identical states (the delta path counts legacy "no-op
        // accepts" as rejections, so only move counters may differ).
        let p = small_problem();
        let params = AnnealParams {
            schedule: CoolingSchedule::default_geometric(0.5),
            epochs: 40,
            steps_per_epoch: 60,
        };
        let mut rng_legacy = ChaCha8Rng::seed_from_u64(11);
        let legacy = anneal_neighbor(&p, p.initial_state(), &params, &mut rng_legacy);
        let mut rng_delta = ChaCha8Rng::seed_from_u64(11);
        let delta = anneal(&p, p.initial_search(), &params, &mut rng_delta);
        assert_eq!(delta.best_state.state(), &legacy.best_state);
        assert!((delta.best_energy - legacy.best_energy).abs() < 1e-9);
        for (a, b) in delta.trajectory.iter().zip(&legacy.trajectory) {
            assert!((a - b).abs() < 1e-9, "trajectory diverged: {a} vs {b}");
        }
    }

    #[test]
    fn cached_energy_tracks_recompute_over_walk() {
        let p = small_problem();
        let mut search = p.initial_search();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut applied = 0;
        for _ in 0..600 {
            let Some(mv) = p.propose_move(&mut search, &mut rng) else {
                continue;
            };
            if p.apply(&mut search, &mv) {
                applied += 1;
            }
            let cached = p.state_energy(&search);
            let full = AnnealProblem::energy(&p, &search);
            assert!(
                (cached - full).abs() < 1e-9,
                "cache drifted: {cached} vs {full}"
            );
            assert!(p.is_feasible(search.state()));
        }
        assert!(applied > 100, "walk applied too few moves: {applied}");
    }

    #[test]
    fn revert_restores_state_and_caches_bit_for_bit() {
        let p = small_problem();
        let mut search = p.initial_search();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        // Wander into a non-trivial state first.
        for _ in 0..200 {
            if let Some(mv) = p.propose_move(&mut search, &mut rng) {
                p.apply(&mut search, &mv);
            }
        }
        for _ in 0..300 {
            let Some(mv) = p.propose_move(&mut search, &mut rng) else {
                continue;
            };
            let before = search.clone();
            if p.apply(&mut search, &mv) {
                p.revert(&mut search, &mv);
            }
            assert!(search == before, "revert failed to restore the search");
            assert_eq!(
                search.cache.load, before.cache.load,
                "load cache bits differ"
            );
            // Re-apply so the walk makes progress.
            p.apply(&mut search, &mv);
        }
    }

    #[test]
    fn objective_components_make_sense() {
        let p = small_problem();
        let s = p.initial_state();
        // Initial: 1.5 Mbps mean rate, degree 1, some imbalance >= 0.
        let o = p.objective(&s);
        assert!(o <= 1.5 + 1.0);
        assert!(o > 0.0);
    }

    #[test]
    fn storage_and_bandwidth_accounting() {
        let p = small_problem();
        let s = p.initial_state();
        let used = p.storage_used(&s);
        let low_bytes = BitRate::LADDER[0].storage_bytes(5_400);
        // 12 videos round-robin on 4 servers: 3 replicas each.
        assert!(used.iter().all(|&u| u == 3 * low_bytes));
        let loads = p.bandwidth_load(&s);
        let total: f64 = loads.iter().sum();
        // Total expected load = demand * mean rate = 2000 * 1500 kbps.
        assert!((total - 2_000.0 * 1_500.0).abs() < 1.0);
    }

    #[test]
    fn infeasible_state_penalized() {
        let p = small_problem();
        let mut s = p.initial_state();
        // Cram every video onto server 0 at the top rate: infeasible.
        for (v, a) in s.assignments.iter_mut().enumerate() {
            *a = vec![ServerId(0)];
            s.rates[v] = BitRate::STUDIO;
        }
        assert!(!p.is_feasible(&s));
        assert!(NeighborProblem::energy(&p, &s) > 1e8);
    }

    #[test]
    fn rejects_bad_construction() {
        let pop = Popularity::zipf(4, 0.5).unwrap();
        let cluster = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: 1, // can't hold anything
                bandwidth_kbps: 1_000_000,
            },
        )
        .unwrap();
        assert!(ScalableProblem::new(
            pop.clone(),
            cluster.clone(),
            5_400,
            BitRate::LADDER.to_vec(),
            100.0,
            ObjectiveWeights::default(),
        )
        .is_err());
        // Unsorted ladder rejected.
        let big = ClusterSpec::homogeneous(
            2,
            ServerSpec {
                storage_bytes: u64::MAX,
                bandwidth_kbps: 1_000_000,
            },
        )
        .unwrap();
        assert!(ScalableProblem::new(
            pop,
            big,
            5_400,
            vec![BitRate::MPEG2, BitRate::MPEG1],
            100.0,
            ObjectiveWeights::default(),
        )
        .is_err());
    }

    #[test]
    fn constraint_7_respected_after_long_walk() {
        let p = small_problem();
        let mut s = p.initial_state();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..300 {
            s = p.neighbor(&s, &mut rng);
        }
        for servers in &s.assignments {
            assert!(servers.len() <= p.n_servers());
            let mut sorted = servers.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), servers.len());
        }
    }
}
