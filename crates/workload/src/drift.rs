//! Popularity drift models.
//!
//! The paper plans from "a priori knowledge about video popularities"; in
//! operation that knowledge ages. These models generate day-over-day
//! demand so the adaptive re-replication extension (and its experiments)
//! can quantify what mispredicted popularity costs and how fast
//! re-planning recovers.
//!
//! Drift is expressed in **per-video-id weight space** (`weights[v]` is
//! video `v`'s relative demand that day, not necessarily sorted):
//! [`vod_model::Popularity`] is rank-ordered by invariant, so identity-
//! preserving churn cannot be represented there. The planning side ranks
//! the weights (see `Popularity::ranked_from_weights`) and un-permutes
//! its layout; the trace side samples the weights directly.

use crate::trace::{Request, Trace, TraceGenerator};
use rand::Rng;
use vod_model::{ModelError, Popularity, VideoId};

/// A day-indexed demand sequence, as per-video-id weights summing to 1.
pub trait DriftModel {
    /// Video demand weights on `day` (0-based); indexed by video id,
    /// normalized.
    fn weights(&self, day: u32) -> Vec<f64>;

    /// Number of videos.
    fn n_videos(&self) -> usize;
}

/// No drift: the prior stays correct forever (control case). Video id
/// equals rank, as everywhere else in the workspace.
#[derive(Debug, Clone)]
pub struct Stationary {
    pop: Popularity,
}

impl Stationary {
    /// A stationary model around `pop`.
    pub fn new(pop: Popularity) -> Self {
        Stationary { pop }
    }
}

impl DriftModel for Stationary {
    fn weights(&self, _day: u32) -> Vec<f64> {
        self.pop.p().to_vec()
    }

    fn n_videos(&self) -> usize {
        self.pop.len()
    }
}

/// Rank rotation: each day the ranking shifts by `step` positions
/// (yesterday's #1 becomes #(1+step), the tail wraps to the top) — a
/// stylized "new releases displace old hits" churn. The *shape* of the
/// distribution (the Zipf masses) is preserved; only the identity of the
/// hot titles moves, which is exactly what invalidates a static
/// placement.
#[derive(Debug, Clone)]
pub struct RankRotation {
    base: Popularity,
    step: usize,
}

impl RankRotation {
    /// Rotates `base` by `step` ranks per day.
    pub fn new(base: Popularity, step: usize) -> Result<Self, ModelError> {
        if step == 0 {
            return Err(ModelError::InvalidParameter {
                name: "step",
                value: 0.0,
            });
        }
        Ok(RankRotation { base, step })
    }

    /// The video id holding rank `rank` (0-based) on `day`.
    pub fn video_at_rank(&self, day: u32, rank: usize) -> usize {
        let m = self.base.len();
        (rank + day as usize * self.step) % m
    }
}

impl DriftModel for RankRotation {
    fn weights(&self, day: u32) -> Vec<f64> {
        let m = self.base.len();
        let mut weights = vec![0.0; m];
        for rank in 0..m {
            weights[self.video_at_rank(day, rank)] = self.base.get(rank);
        }
        weights
    }

    fn n_videos(&self) -> usize {
        self.base.len()
    }
}

/// A scheduled demand spike on one title — the "new release" case.
///
/// From the start of the drift segment containing `at_min` to the end
/// of the run, `video`'s weight is pinned to `boost` times the base
/// distribution's top weight, displacing whatever the rank-swap process
/// would have given it. Crowds persist: a release that goes hot stays
/// hot for the remainder of the (90-minute) peak period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Onset, in minutes from the start of the run. Takes effect from
    /// the start of the segment containing this instant.
    pub at_min: f64,
    /// The title that goes hot.
    pub video: VideoId,
    /// Weight multiple of the base distribution's top weight (`1.0`
    /// makes it tie the head title; `3.0` makes it dominate).
    pub boost: f64,
}

/// Intra-run popularity drift: a piecewise-stationary workload over the
/// simulation horizon, for exercising the online replication controller.
///
/// The day-granularity models above ([`RankRotation`]) feed the
/// *between-runs* adaptive replanner; this process drifts *within* one
/// run. The horizon is cut into segments of `segment_min` minutes; each
/// segment boundary applies `swaps_per_segment` random adjacent-rank
/// transpositions to the rank→video permutation (gradual churn — titles
/// wander up and down the chart rather than teleporting), plus any
/// scheduled [`FlashCrowd`] onsets. Within a segment the weights are
/// constant, so each segment's trace is an ordinary Poisson/Zipf draw
/// via [`TraceGenerator::from_weights`].
///
/// Determinism: the swap trajectory is driven by a private splitmix64
/// stream seeded with `drift_seed` — independent of the `rand` crate's
/// algorithms and of the arrival RNG, so [`Self::segment_weights`] is a
/// pure function of (config, seed). The A-7 oracle replans from exactly
/// these per-segment weights; the controller only ever sees the
/// arrivals sampled from them.
#[derive(Debug, Clone)]
pub struct DriftingWorkload {
    base: Popularity,
    horizon_min: f64,
    segment_min: f64,
    swaps_per_segment: u32,
    drift_seed: u64,
    crowds: Vec<FlashCrowd>,
}

/// The splitmix64 step: a tiny, stable, dependency-free PRNG. Plenty
/// for shuffling ranks; never used for arrival sampling.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DriftingWorkload {
    /// A drift process over `base` (video id = rank at segment 0, as
    /// everywhere else), cut into `segment_min`-minute segments of a
    /// `horizon_min` run, with `swaps_per_segment` adjacent-rank
    /// transpositions per boundary driven by `drift_seed`.
    pub fn new(
        base: Popularity,
        horizon_min: f64,
        segment_min: f64,
        swaps_per_segment: u32,
        drift_seed: u64,
    ) -> Result<Self, ModelError> {
        if !horizon_min.is_finite() || horizon_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "horizon_min",
                value: horizon_min,
            });
        }
        if !segment_min.is_finite() || segment_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "segment_min",
                value: segment_min,
            });
        }
        if base.len() < 2 {
            return Err(ModelError::InvalidParameter {
                name: "n_videos",
                value: base.len() as f64,
            });
        }
        Ok(DriftingWorkload {
            base,
            horizon_min,
            segment_min,
            swaps_per_segment,
            drift_seed,
            crowds: Vec::new(),
        })
    }

    /// Adds scheduled flash crowds. Each onset must fall inside the
    /// horizon and name a catalog video with a positive, finite boost.
    pub fn with_flash_crowds(mut self, crowds: Vec<FlashCrowd>) -> Result<Self, ModelError> {
        for c in &crowds {
            if !c.at_min.is_finite() || c.at_min < 0.0 || c.at_min >= self.horizon_min {
                return Err(ModelError::InvalidParameter {
                    name: "flash_crowd.at_min",
                    value: c.at_min,
                });
            }
            if c.video.index() >= self.base.len() {
                return Err(ModelError::UnknownVideo(c.video));
            }
            if !c.boost.is_finite() || c.boost <= 0.0 {
                return Err(ModelError::InvalidParameter {
                    name: "flash_crowd.boost",
                    value: c.boost,
                });
            }
        }
        self.crowds = crowds;
        Ok(self)
    }

    /// Number of videos.
    pub fn n_videos(&self) -> usize {
        self.base.len()
    }

    /// Number of segments covering the horizon (the last may be short).
    pub fn n_segments(&self) -> usize {
        (self.horizon_min / self.segment_min).ceil() as usize
    }

    /// `(start_min, length_min)` of segment `k`.
    pub fn segment_span(&self, k: usize) -> (f64, f64) {
        let start = k as f64 * self.segment_min;
        (start, (self.horizon_min - start).min(self.segment_min))
    }

    /// The rank→video permutation in effect during segment `k`,
    /// replayed from the seed (identity at segment 0).
    fn permutation(&self, k: usize) -> Vec<usize> {
        let m = self.base.len();
        let mut perm: Vec<usize> = (0..m).collect();
        let mut state = self.drift_seed;
        for _ in 0..k {
            for _ in 0..self.swaps_per_segment {
                let i = (splitmix64(&mut state) % (m as u64 - 1)) as usize;
                perm.swap(i, i + 1);
            }
        }
        perm
    }

    /// Per-video-id demand weights in effect during segment `k`: the
    /// base Zipf masses scattered through the segment's rank
    /// permutation, then any active flash crowds pinned on top. Without
    /// crowds the weights sum to 1; a crowd adds unnormalized mass
    /// (the sampler and the planner both take relative weights).
    ///
    /// This is the ground truth the A-7 oracle replans from.
    pub fn segment_weights(&self, k: usize) -> Vec<f64> {
        let perm = self.permutation(k);
        let mut weights = vec![0.0; self.base.len()];
        for (rank, &v) in perm.iter().enumerate() {
            weights[v] = self.base.get(rank);
        }
        let (start, len) = self.segment_span(k);
        let top = self.base.get(0);
        for c in &self.crowds {
            if c.at_min < start + len {
                weights[c.video.index()] = top * c.boost;
            }
        }
        weights
    }

    /// Samples one full-horizon trace: per segment, a Poisson process at
    /// `lambda_per_min` thinned through that segment's weights, arrival
    /// times offset to the segment start. `rng` drives arrivals and
    /// video choice only — the drift trajectory itself is fixed by
    /// `drift_seed`, so an oracle planner and the simulated workload
    /// can share it without sharing the arrival stream.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        lambda_per_min: f64,
        rng: &mut R,
    ) -> Result<Trace, ModelError> {
        let mut requests: Vec<Request> = Vec::new();
        for k in 0..self.n_segments() {
            let (start, len) = self.segment_span(k);
            let weights = self.segment_weights(k);
            let generator = TraceGenerator::from_weights(lambda_per_min, &weights, len)?;
            requests.extend(generator.generate(rng).requests().iter().map(|r| Request {
                arrival_min: start + r.arrival_min,
                video: r.video,
            }));
        }
        // Segments are emitted in order with offsets past the previous
        // segment's end, so the concatenation is already sorted.
        Ok(Trace::from_sorted_unchecked(requests))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn stationary_never_changes() {
        let pop = Popularity::zipf(10, 1.0).unwrap();
        let m = Stationary::new(pop.clone());
        assert_eq!(m.weights(0), pop.p());
        assert_eq!(m.weights(100), pop.p());
        assert_eq!(m.n_videos(), 10);
    }

    #[test]
    fn rotation_moves_the_hot_title() {
        let base = Popularity::zipf(10, 1.0).unwrap();
        let m = RankRotation::new(base.clone(), 3).unwrap();
        // Day 0: video 0 is the top title.
        let d0 = m.weights(0);
        assert!((d0[0] - base.get(0)).abs() < 1e-12);
        // Day 1: video 3 holds rank 0; rank 7 wraps onto v0.
        let d1 = m.weights(1);
        assert!((d1[3] - base.get(0)).abs() < 1e-12);
        assert!((d1[0] - base.get(7)).abs() < 1e-12);
        // Mass is conserved.
        assert!((d1.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_wraps_fully() {
        let base = Popularity::zipf(6, 0.8).unwrap();
        let m = RankRotation::new(base, 1).unwrap();
        // After M days the rotation returns to the start.
        assert_eq!(m.weights(0), m.weights(6));
    }

    #[test]
    fn zero_step_rejected() {
        let base = Popularity::zipf(6, 0.8).unwrap();
        assert!(RankRotation::new(base, 0).is_err());
    }

    fn drifting(seed: u64) -> DriftingWorkload {
        let base = Popularity::zipf(16, 1.0).unwrap();
        DriftingWorkload::new(base, 90.0, 10.0, 8, seed).unwrap()
    }

    #[test]
    fn drifting_segments_cover_the_horizon() {
        let w = drifting(7);
        assert_eq!(w.n_segments(), 9);
        assert_eq!(w.segment_span(0), (0.0, 10.0));
        assert_eq!(w.segment_span(8), (80.0, 10.0));
        // A horizon that is not a segment multiple ends with a stub.
        let odd =
            DriftingWorkload::new(Popularity::zipf(8, 1.0).unwrap(), 25.0, 10.0, 4, 1).unwrap();
        assert_eq!(odd.n_segments(), 3);
        assert_eq!(odd.segment_span(2), (20.0, 5.0));
    }

    #[test]
    fn drifting_weights_are_permutations_of_the_base() {
        let w = drifting(42);
        // Segment 0 is the identity: video id = rank.
        let base = Popularity::zipf(16, 1.0).unwrap();
        assert_eq!(w.segment_weights(0), base.p());
        // Every later segment conserves mass exactly (pure rank swaps).
        for k in 1..w.n_segments() {
            let s = w.segment_weights(k);
            let mut sorted = s.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            for (got, want) in sorted.iter().zip(base.p()) {
                assert!((got - want).abs() < 1e-12);
            }
        }
        // The trajectory actually moves the hot title at this seed.
        let top0 = w.segment_weights(0);
        let top8 = w.segment_weights(8);
        let argmax = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_ne!(argmax(&top0), argmax(&top8));
    }

    #[test]
    fn drifting_trajectory_is_a_pure_function_of_the_seed() {
        let a = drifting(1234);
        let b = drifting(1234);
        let c = drifting(1235);
        for k in 0..a.n_segments() {
            assert_eq!(a.segment_weights(k), b.segment_weights(k));
        }
        assert!((1..a.n_segments()).any(|k| a.segment_weights(k) != c.segment_weights(k)));
    }

    #[test]
    fn flash_crowd_pins_the_release_on_top() {
        let crowd = FlashCrowd {
            at_min: 45.0,
            video: VideoId(15), // the tail title
            boost: 3.0,
        };
        let w = drifting(9).with_flash_crowds(vec![crowd]).unwrap();
        // Before onset: the tail title is nowhere near the top.
        let before = w.segment_weights(3);
        let base_top = Popularity::zipf(16, 1.0).unwrap().get(0);
        assert!(before[15] < base_top);
        // From the onset segment to the end: pinned at boost × top.
        for k in 4..w.n_segments() {
            let s = w.segment_weights(k);
            assert!((s[15] - 3.0 * base_top).abs() < 1e-12);
            assert!(s.iter().all(|&x| x <= s[15]));
        }
    }

    #[test]
    fn drifting_generation_is_sorted_deterministic_and_skewed() {
        let crowd = FlashCrowd {
            at_min: 45.0,
            video: VideoId(15),
            boost: 3.0,
        };
        let w = drifting(9).with_flash_crowds(vec![crowd]).unwrap();
        let t1 = w.generate(4.0, &mut ChaCha8Rng::seed_from_u64(77)).unwrap();
        let t2 = w.generate(4.0, &mut ChaCha8Rng::seed_from_u64(77)).unwrap();
        assert_eq!(t1.requests(), t2.requests());
        assert!(!t1.is_empty());
        assert!(t1
            .requests()
            .iter()
            .all(|r| (0.0..90.0).contains(&r.arrival_min)));
        // After onset the release dominates its pre-onset demand.
        let hits = |lo: f64, hi: f64| {
            t1.requests()
                .iter()
                .filter(|r| r.video == VideoId(15) && (lo..hi).contains(&r.arrival_min))
                .count()
        };
        assert!(hits(45.0, 90.0) > hits(0.0, 45.0));
    }

    #[test]
    fn drifting_rejects_degenerate_parameters() {
        let base = || Popularity::zipf(8, 1.0).unwrap();
        assert!(DriftingWorkload::new(base(), 0.0, 10.0, 4, 1).is_err());
        assert!(DriftingWorkload::new(base(), 90.0, 0.0, 4, 1).is_err());
        assert!(
            DriftingWorkload::new(Popularity::zipf(1, 1.0).unwrap(), 90.0, 10.0, 4, 1).is_err()
        );
        let crowd = |at_min, video, boost| FlashCrowd {
            at_min,
            video,
            boost,
        };
        let w = || DriftingWorkload::new(base(), 90.0, 10.0, 4, 1).unwrap();
        assert!(w()
            .with_flash_crowds(vec![crowd(95.0, VideoId(0), 2.0)])
            .is_err());
        assert!(w()
            .with_flash_crowds(vec![crowd(10.0, VideoId(99), 2.0)])
            .is_err());
        assert!(w()
            .with_flash_crowds(vec![crowd(10.0, VideoId(0), 0.0)])
            .is_err());
    }
}
