//! Popularity drift models.
//!
//! The paper plans from "a priori knowledge about video popularities"; in
//! operation that knowledge ages. These models generate day-over-day
//! demand so the adaptive re-replication extension (and its experiments)
//! can quantify what mispredicted popularity costs and how fast
//! re-planning recovers.
//!
//! Drift is expressed in **per-video-id weight space** (`weights[v]` is
//! video `v`'s relative demand that day, not necessarily sorted):
//! [`vod_model::Popularity`] is rank-ordered by invariant, so identity-
//! preserving churn cannot be represented there. The planning side ranks
//! the weights (see `Popularity::ranked_from_weights`) and un-permutes
//! its layout; the trace side samples the weights directly.

use vod_model::{ModelError, Popularity};

/// A day-indexed demand sequence, as per-video-id weights summing to 1.
pub trait DriftModel {
    /// Video demand weights on `day` (0-based); indexed by video id,
    /// normalized.
    fn weights(&self, day: u32) -> Vec<f64>;

    /// Number of videos.
    fn n_videos(&self) -> usize;
}

/// No drift: the prior stays correct forever (control case). Video id
/// equals rank, as everywhere else in the workspace.
#[derive(Debug, Clone)]
pub struct Stationary {
    pop: Popularity,
}

impl Stationary {
    /// A stationary model around `pop`.
    pub fn new(pop: Popularity) -> Self {
        Stationary { pop }
    }
}

impl DriftModel for Stationary {
    fn weights(&self, _day: u32) -> Vec<f64> {
        self.pop.p().to_vec()
    }

    fn n_videos(&self) -> usize {
        self.pop.len()
    }
}

/// Rank rotation: each day the ranking shifts by `step` positions
/// (yesterday's #1 becomes #(1+step), the tail wraps to the top) — a
/// stylized "new releases displace old hits" churn. The *shape* of the
/// distribution (the Zipf masses) is preserved; only the identity of the
/// hot titles moves, which is exactly what invalidates a static
/// placement.
#[derive(Debug, Clone)]
pub struct RankRotation {
    base: Popularity,
    step: usize,
}

impl RankRotation {
    /// Rotates `base` by `step` ranks per day.
    pub fn new(base: Popularity, step: usize) -> Result<Self, ModelError> {
        if step == 0 {
            return Err(ModelError::InvalidParameter {
                name: "step",
                value: 0.0,
            });
        }
        Ok(RankRotation { base, step })
    }

    /// The video id holding rank `rank` (0-based) on `day`.
    pub fn video_at_rank(&self, day: u32, rank: usize) -> usize {
        let m = self.base.len();
        (rank + day as usize * self.step) % m
    }
}

impl DriftModel for RankRotation {
    fn weights(&self, day: u32) -> Vec<f64> {
        let m = self.base.len();
        let mut weights = vec![0.0; m];
        for rank in 0..m {
            weights[self.video_at_rank(day, rank)] = self.base.get(rank);
        }
        weights
    }

    fn n_videos(&self) -> usize {
        self.base.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_never_changes() {
        let pop = Popularity::zipf(10, 1.0).unwrap();
        let m = Stationary::new(pop.clone());
        assert_eq!(m.weights(0), pop.p());
        assert_eq!(m.weights(100), pop.p());
        assert_eq!(m.n_videos(), 10);
    }

    #[test]
    fn rotation_moves_the_hot_title() {
        let base = Popularity::zipf(10, 1.0).unwrap();
        let m = RankRotation::new(base.clone(), 3).unwrap();
        // Day 0: video 0 is the top title.
        let d0 = m.weights(0);
        assert!((d0[0] - base.get(0)).abs() < 1e-12);
        // Day 1: video 3 holds rank 0; rank 7 wraps onto v0.
        let d1 = m.weights(1);
        assert!((d1[3] - base.get(0)).abs() < 1e-12);
        assert!((d1[0] - base.get(7)).abs() < 1e-12);
        // Mass is conserved.
        assert!((d1.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_wraps_fully() {
        let base = Popularity::zipf(6, 0.8).unwrap();
        let m = RankRotation::new(base, 1).unwrap();
        // After M days the rotation returns to the start.
        assert_eq!(m.weights(0), m.weights(6));
    }

    #[test]
    fn zero_step_rejected() {
        let base = Popularity::zipf(6, 0.8).unwrap();
        assert!(RankRotation::new(base, 0).is_err());
    }
}
