//! Request traces: the synthetic workload fed to the simulator.
//!
//! A [`Trace`] is a time-ordered sequence of [`Request`]s (arrival minute +
//! requested video). Traces are value types: they can be generated from a
//! (Poisson, Zipf) pair, serialized for archival, or constructed by hand in
//! tests.

use crate::poisson::PoissonProcess;
use crate::zipf::ZipfSampler;
use rand::Rng;
use serde::{Deserialize, Serialize};
use vod_model::{ModelError, Popularity, VideoId};

/// One client request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time in minutes from the start of the peak period.
    pub arrival_min: f64,
    /// The requested video.
    pub video: VideoId,
}

/// A time-ordered request sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Builds a trace from requests, verifying time-ordering.
    pub fn new(requests: Vec<Request>) -> Result<Self, ModelError> {
        for w in requests.windows(2) {
            if w[1].arrival_min < w[0].arrival_min {
                return Err(ModelError::InvalidParameter {
                    name: "arrival_min (not sorted)",
                    value: w[1].arrival_min,
                });
            }
        }
        Ok(Trace { requests })
    }

    /// Builds a trace from requests already known to be time-ordered —
    /// the generators emit in order, so re-validating is wasted work on
    /// hot paths. Ordering is debug-asserted; in release an unsorted
    /// input is the caller's bug.
    pub fn from_sorted_unchecked(requests: Vec<Request>) -> Self {
        debug_assert!(
            requests
                .windows(2)
                .all(|w| w[0].arrival_min <= w[1].arrival_min),
            "from_sorted_unchecked given an unsorted request sequence"
        );
        Trace { requests }
    }

    /// The requests, ascending in time.
    #[inline]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    #[inline]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when no requests arrived in the horizon.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Per-video request counts over `m` videos.
    pub fn counts(&self, m: usize) -> Vec<usize> {
        let mut counts = vec![0usize; m];
        for r in &self.requests {
            if r.video.index() < m {
                counts[r.video.index()] += 1;
            }
        }
        counts
    }
}

/// Generates Poisson/Zipf traces for the paper's peak-period workload.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    process: PoissonProcess,
    sampler: ZipfSampler,
    horizon_min: f64,
}

impl TraceGenerator {
    /// A generator with arrival rate `lambda_per_min`, popularity `pop`,
    /// over a peak period of `horizon_min` minutes (the paper uses 90).
    pub fn new(
        lambda_per_min: f64,
        pop: &Popularity,
        horizon_min: f64,
    ) -> Result<Self, ModelError> {
        if !horizon_min.is_finite() || horizon_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "horizon_min",
                value: horizon_min,
            });
        }
        Ok(TraceGenerator {
            process: PoissonProcess::new(lambda_per_min)?,
            sampler: ZipfSampler::from_popularity(pop)?,
            horizon_min,
        })
    }

    /// A generator over raw per-video-id weights (not necessarily
    /// rank-sorted) — used by the drift models, where video identity must
    /// be preserved.
    pub fn from_weights(
        lambda_per_min: f64,
        weights: &[f64],
        horizon_min: f64,
    ) -> Result<Self, ModelError> {
        if !horizon_min.is_finite() || horizon_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "horizon_min",
                value: horizon_min,
            });
        }
        Ok(TraceGenerator {
            process: PoissonProcess::new(lambda_per_min)?,
            sampler: ZipfSampler::from_raw_weights(weights)?,
            horizon_min,
        })
    }

    /// The peak-period length in minutes.
    #[inline]
    pub fn horizon_min(&self) -> f64 {
        self.horizon_min
    }

    /// The arrival process (streaming twin internals).
    #[inline]
    pub(crate) fn process(&self) -> &PoissonProcess {
        &self.process
    }

    /// The video sampler (streaming twin internals).
    #[inline]
    pub(crate) fn sampler(&self) -> &ZipfSampler {
        &self.sampler
    }

    /// Generates one trace.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Trace {
        let arrivals = self.process.arrivals_within(self.horizon_min, rng);
        let requests = arrivals
            .into_iter()
            .map(|arrival_min| Request {
                arrival_min,
                video: self.sampler.sample(rng),
            })
            .collect();
        Trace { requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn gen(theta: f64, lambda: f64, seed: u64) -> Trace {
        let pop = Popularity::zipf(20, theta).unwrap();
        let g = TraceGenerator::new(lambda, &pop, 90.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        g.generate(&mut rng)
    }

    #[test]
    fn trace_sorted_and_in_horizon() {
        let t = gen(1.0, 40.0, 31);
        assert!(!t.is_empty());
        assert!(t
            .requests()
            .windows(2)
            .all(|w| w[0].arrival_min <= w[1].arrival_min));
        assert!(t
            .requests()
            .iter()
            .all(|r| (0.0..90.0).contains(&r.arrival_min)));
    }

    #[test]
    fn expected_volume() {
        // λ=40/min over 90 min -> ~3600 requests.
        let n = gen(1.0, 40.0, 32).len();
        assert!((3_300..3_900).contains(&n), "n = {n}");
    }

    #[test]
    fn skew_shows_in_counts() {
        let t = gen(1.0, 40.0, 33);
        let counts = t.counts(20);
        assert!(
            counts[0] > counts[19],
            "head {} tail {}",
            counts[0],
            counts[19]
        );
    }

    #[test]
    fn new_rejects_unsorted() {
        let reqs = vec![
            Request {
                arrival_min: 2.0,
                video: VideoId(0),
            },
            Request {
                arrival_min: 1.0,
                video: VideoId(1),
            },
        ];
        assert!(Trace::new(reqs).is_err());
    }

    #[test]
    fn new_accepts_ties() {
        let reqs = vec![
            Request {
                arrival_min: 1.0,
                video: VideoId(0),
            },
            Request {
                arrival_min: 1.0,
                video: VideoId(1),
            },
        ];
        assert!(Trace::new(reqs).is_ok());
    }

    #[test]
    fn generator_rejects_bad_horizon() {
        let pop = Popularity::zipf(5, 1.0).unwrap();
        assert!(TraceGenerator::new(40.0, &pop, 0.0).is_err());
        assert!(TraceGenerator::new(40.0, &pop, -5.0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(gen(0.8, 20.0, 35), gen(0.8, 20.0, 35));
    }
}
