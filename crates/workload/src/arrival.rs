//! Pull-based streaming arrival sources.
//!
//! The materialized pipeline ([`TraceGenerator::generate`] → [`Trace`] →
//! engine) allocates the full request vector before the first event fires;
//! at production scale (multi-day diurnal traces, millions of users) that
//! is tens of GiB. This module provides the streaming alternative: an
//! [`ArrivalSource`] yields requests one at a time in arrival order with
//! O(per-catalog) state, so the engine can pull arrivals lazily and merge
//! the next-arrival time into its `(time, seq)` event ordering.
//!
//! ## Draw-for-draw identity
//!
//! The streaming sources are **provably request-for-request identical** to
//! their materialized twins at the same seed — that is how the golden
//! reports stay byte-identical. The materialized generators draw *all*
//! inter-arrival gaps first (including the final horizon-overshoot draw),
//! then the per-request video choices. A naive streaming source would
//! interleave gap and video draws and diverge immediately. Instead each
//! streaming source keeps **two clones of the seeded RNG**:
//!
//! * the *gap clone* replays the gap (or thinning) stream lazily, one
//!   arrival at a time;
//! * the *video clone* is advanced through the entire gap pre-pass at
//!   construction (same number of draws, O(1) memory), leaving it parked
//!   exactly where the materialized generator starts sampling videos.
//!
//! Each `next_request` then draws one gap from the first clone and one
//! video from the second — the exact draw sequence of the materialized
//! path, paid for with one extra O(n)-time, O(1)-memory pass at
//! construction. [`StreamingDrift`] applies the same discipline per
//! segment, carrying the video clone's end state into the next segment.
//!
//! ## Time-varying rates
//!
//! [`ThinnedWorkload`] generates non-homogeneous Poisson arrivals via
//! Lewis–Shedler thinning: candidate gaps at the envelope rate `λ_max`,
//! each accepted with probability `λ(t)/λ_max`. The rate shape
//! ([`RateModel`]) composes a diurnal sinusoid, scheduled flash-crowd
//! pulses, and a catalog-churn modulator that rotates which titles are
//! hot as epochs pass — the production-scale arrival shapes of
//! arXiv:1307.0849. It has both a materialized [`ThinnedWorkload::generate`]
//! and a streaming [`ThinnedWorkload::stream`] twin under the same
//! two-clone contract.

use crate::drift::DriftingWorkload;
use crate::poisson::PoissonProcess;
use crate::trace::{Request, Trace, TraceGenerator};
use crate::zipf::ZipfSampler;
use rand::Rng;
use vod_model::{ModelError, Popularity};

/// A pull-based request stream in arrival order.
///
/// Implementations yield requests with non-decreasing `arrival_min` and
/// terminate at their horizon. Sources are `Clone` so the sharded engine
/// can replay the same stream per worker and filter by video ownership.
pub trait ArrivalSource {
    /// The next request, or `None` once the horizon is reached.
    fn next_request(&mut self) -> Option<Request>;

    /// The stream's horizon in minutes (requests all arrive before it).
    fn horizon_min(&self) -> f64;
}

/// Adapts any [`ArrivalSource`] into an [`Iterator`] for engine loops.
#[derive(Debug, Clone)]
pub struct ArrivalIter<S>(pub S);

impl<S: ArrivalSource> Iterator for ArrivalIter<S> {
    type Item = Request;

    #[inline]
    fn next(&mut self) -> Option<Request> {
        self.0.next_request()
    }
}

/// Streaming twin of [`TraceGenerator::generate`]: constant-rate Poisson
/// arrivals with a fixed popularity distribution.
///
/// Construct via [`TraceGenerator::stream`]. Yields exactly the requests
/// `generate` would materialize from the same RNG state, in order, with
/// O(catalog) memory.
#[derive(Debug, Clone)]
pub struct StreamingTrace<R: Rng + Clone> {
    process: PoissonProcess,
    sampler: ZipfSampler,
    horizon_min: f64,
    /// Replays the materialized gap pre-pass lazily.
    gaps_rng: R,
    /// Parked after the gap pre-pass; draws video choices.
    videos_rng: R,
    t: f64,
}

impl<R: Rng + Clone> StreamingTrace<R> {
    pub(crate) fn new(generator: &TraceGenerator, rng: R) -> Self {
        let process = *generator.process();
        let horizon_min = generator.horizon_min();
        let gaps_rng = rng.clone();
        let mut videos_rng = rng;
        // Pre-pass: advance the video clone past every gap draw the
        // materialized generator would make (including the overshoot).
        let mut t = 0.0;
        loop {
            t += process.next_gap_min(&mut videos_rng);
            if t >= horizon_min {
                break;
            }
        }
        StreamingTrace {
            process,
            sampler: generator.sampler().clone(),
            horizon_min,
            gaps_rng,
            videos_rng,
            t: 0.0,
        }
    }
}

impl<R: Rng + Clone> ArrivalSource for StreamingTrace<R> {
    fn next_request(&mut self) -> Option<Request> {
        self.t += self.process.next_gap_min(&mut self.gaps_rng);
        if self.t >= self.horizon_min {
            return None;
        }
        Some(Request {
            arrival_min: self.t,
            video: self.sampler.sample(&mut self.videos_rng),
        })
    }

    fn horizon_min(&self) -> f64 {
        self.horizon_min
    }
}

impl TraceGenerator {
    /// A streaming source drawing the exact request sequence
    /// [`TraceGenerator::generate`] would produce from the same RNG
    /// state, without materializing it.
    pub fn stream<R: Rng + Clone>(&self, rng: R) -> StreamingTrace<R> {
        StreamingTrace::new(self, rng)
    }
}

/// Streaming twin of [`DriftingWorkload::generate`]: piecewise-stationary
/// arrivals (constant λ, per-segment popularity permutations + flash
/// crowds), segment by segment.
///
/// Construct via [`DriftingWorkload::stream`]. Holds one segment's
/// sampler at a time; segment boundaries re-run the two-clone pre-pass
/// from the video clone's carried-over state, mirroring how the
/// materialized path chains `TraceGenerator::generate` calls on one RNG.
#[derive(Debug, Clone)]
pub struct StreamingDrift<R: Rng + Clone> {
    workload: DriftingWorkload,
    segment: usize,
    segment_start: f64,
    segment_len: f64,
    process: PoissonProcess,
    sampler: ZipfSampler,
    gaps_rng: R,
    videos_rng: R,
    /// Local time within the current segment.
    t: f64,
}

impl<R: Rng + Clone> StreamingDrift<R> {
    pub(crate) fn new(
        workload: &DriftingWorkload,
        lambda_per_min: f64,
        rng: R,
    ) -> Result<Self, ModelError> {
        // Validate λ once up front; segment samplers are built lazily.
        let process = PoissonProcess::new(lambda_per_min)?;
        let mut source = StreamingDrift {
            workload: workload.clone(),
            segment: 0,
            segment_start: 0.0,
            segment_len: 0.0,
            process,
            sampler: ZipfSampler::from_raw_weights(&workload.segment_weights(0))?,
            gaps_rng: rng.clone(),
            videos_rng: rng,
            t: 0.0,
        };
        source.enter_segment(0)?;
        Ok(source)
    }

    /// Positions both clones for segment `k`: the video clone (carrying
    /// the materialized path's RNG state at the segment boundary) seeds
    /// the gap clone, then runs the segment's gap pre-pass.
    fn enter_segment(&mut self, k: usize) -> Result<(), ModelError> {
        let (start, len) = self.workload.segment_span(k);
        self.segment = k;
        self.segment_start = start;
        self.segment_len = len;
        self.t = 0.0;
        self.sampler = ZipfSampler::from_raw_weights(&self.workload.segment_weights(k))?;
        self.gaps_rng = self.videos_rng.clone();
        let mut t = 0.0;
        loop {
            t += self.process.next_gap_min(&mut self.videos_rng);
            if t >= len {
                break;
            }
        }
        Ok(())
    }
}

impl<R: Rng + Clone> ArrivalSource for StreamingDrift<R> {
    fn next_request(&mut self) -> Option<Request> {
        loop {
            self.t += self.process.next_gap_min(&mut self.gaps_rng);
            if self.t < self.segment_len {
                return Some(Request {
                    arrival_min: self.segment_start + self.t,
                    video: self.sampler.sample(&mut self.videos_rng),
                });
            }
            let next = self.segment + 1;
            if next >= self.workload.n_segments() {
                return None;
            }
            // Weights of a valid workload are always positive, so the
            // sampler rebuild cannot fail; debug-assert and end cleanly
            // in release if it somehow does.
            if let Err(e) = self.enter_segment(next) {
                debug_assert!(false, "segment sampler rebuild failed: {e:?}");
                return None;
            }
        }
    }

    fn horizon_min(&self) -> f64 {
        let (start, len) = self
            .workload
            .segment_span(self.workload.n_segments().saturating_sub(1));
        start + len
    }
}

impl DriftingWorkload {
    /// A streaming source drawing the exact request sequence
    /// [`DriftingWorkload::generate`] would produce at `lambda_per_min`
    /// from the same RNG state, without materializing it.
    pub fn stream<R: Rng + Clone>(
        &self,
        lambda_per_min: f64,
        rng: R,
    ) -> Result<StreamingDrift<R>, ModelError> {
        StreamingDrift::new(self, lambda_per_min, rng)
    }
}

/// A diurnal load cycle: `λ(t) = base · (1 + amplitude·sin(2πt/period))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCycle {
    /// Cycle length in minutes (1440 for a day).
    pub period_min: f64,
    /// Relative swing in `[0, 1)`; 0.6 means peaks 1.6× and troughs
    /// 0.4× the base rate.
    pub amplitude: f64,
}

/// A scheduled rate pulse (flash crowd on a new release): the arrival
/// rate is multiplied by `multiplier` on `[start_min, start_min +
/// duration_min)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePulse {
    /// Pulse onset, minutes from the start of the run.
    pub start_min: f64,
    /// Pulse length in minutes.
    pub duration_min: f64,
    /// Rate multiple while active (`≥ 1`).
    pub multiplier: f64,
}

/// A time-varying arrival rate `λ(t)`: base rate × optional diurnal
/// sinusoid × any active flash-crowd pulses. The envelope
/// [`RateModel::max_rate`] upper-bounds `λ(t)` for Lewis–Shedler
/// thinning.
#[derive(Debug, Clone, PartialEq)]
pub struct RateModel {
    base_per_min: f64,
    diurnal: Option<DiurnalCycle>,
    pulses: Vec<RatePulse>,
}

impl RateModel {
    /// A constant rate of `base_per_min` arrivals per minute.
    pub fn constant(base_per_min: f64) -> Result<Self, ModelError> {
        if !base_per_min.is_finite() || base_per_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "lambda",
                value: base_per_min,
            });
        }
        Ok(RateModel {
            base_per_min,
            diurnal: None,
            pulses: Vec::new(),
        })
    }

    /// Adds a diurnal cycle.
    pub fn with_diurnal(mut self, cycle: DiurnalCycle) -> Result<Self, ModelError> {
        if !cycle.period_min.is_finite() || cycle.period_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "diurnal.period_min",
                value: cycle.period_min,
            });
        }
        if !cycle.amplitude.is_finite() || !(0.0..1.0).contains(&cycle.amplitude) {
            return Err(ModelError::InvalidParameter {
                name: "diurnal.amplitude",
                value: cycle.amplitude,
            });
        }
        self.diurnal = Some(cycle);
        Ok(self)
    }

    /// Adds scheduled flash-crowd rate pulses.
    pub fn with_pulses(mut self, pulses: Vec<RatePulse>) -> Result<Self, ModelError> {
        for p in &pulses {
            if !p.start_min.is_finite() || p.start_min < 0.0 {
                return Err(ModelError::InvalidParameter {
                    name: "pulse.start_min",
                    value: p.start_min,
                });
            }
            if !p.duration_min.is_finite() || p.duration_min <= 0.0 {
                return Err(ModelError::InvalidParameter {
                    name: "pulse.duration_min",
                    value: p.duration_min,
                });
            }
            if !p.multiplier.is_finite() || p.multiplier < 1.0 {
                return Err(ModelError::InvalidParameter {
                    name: "pulse.multiplier",
                    value: p.multiplier,
                });
            }
        }
        self.pulses = pulses;
        Ok(self)
    }

    /// The instantaneous rate at minute `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        let mut rate = self.base_per_min;
        if let Some(d) = &self.diurnal {
            rate *= 1.0 + d.amplitude * (2.0 * std::f64::consts::PI * t / d.period_min).sin();
        }
        for p in &self.pulses {
            if t >= p.start_min && t < p.start_min + p.duration_min {
                rate *= p.multiplier;
            }
        }
        rate
    }

    /// A (possibly loose) upper bound on `λ(t)` over all `t`: base ×
    /// diurnal peak × the product of all pulse multipliers. Looseness
    /// only costs extra rejected thinning candidates, never correctness.
    pub fn max_rate(&self) -> f64 {
        let mut rate = self.base_per_min;
        if let Some(d) = &self.diurnal {
            rate *= 1.0 + d.amplitude;
        }
        for p in &self.pulses {
            rate *= p.multiplier;
        }
        rate
    }

    /// The base rate in arrivals per minute.
    #[inline]
    pub fn base_per_min(&self) -> f64 {
        self.base_per_min
    }

    /// Mean of `λ(t)` over `[0, horizon_min)` by midpoint quadrature —
    /// used for sizing expected request volumes.
    pub fn mean_rate(&self, horizon_min: f64) -> f64 {
        let steps = 4096;
        let dt = horizon_min / steps as f64;
        (0..steps)
            .map(|i| self.rate_at((i as f64 + 0.5) * dt))
            .sum::<f64>()
            / steps as f64
    }
}

/// Catalog churn: every `period_min` minutes the rank→video mapping
/// rotates by `step` positions (new releases displace old hits), so the
/// hot set wanders through the catalog over a multi-day trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogChurn {
    /// Epoch length in minutes.
    pub period_min: f64,
    /// Rank positions shifted per epoch.
    pub step: usize,
}

/// A non-homogeneous Poisson workload: arrivals via Lewis–Shedler
/// thinning against a [`RateModel`], video choice from a base popularity
/// distribution optionally rotated by [`CatalogChurn`] epochs.
///
/// Has a materialized [`ThinnedWorkload::generate`] and a streaming
/// [`ThinnedWorkload::stream`] twin; the proptest suite locks them
/// draw-for-draw identical.
#[derive(Debug, Clone)]
pub struct ThinnedWorkload {
    rate: RateModel,
    base: Popularity,
    churn: Option<CatalogChurn>,
    horizon_min: f64,
}

impl ThinnedWorkload {
    /// A workload over `base` popularity with arrival shape `rate`, for
    /// `horizon_min` minutes.
    pub fn new(rate: RateModel, base: Popularity, horizon_min: f64) -> Result<Self, ModelError> {
        if !horizon_min.is_finite() || horizon_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "horizon_min",
                value: horizon_min,
            });
        }
        Ok(ThinnedWorkload {
            rate,
            base,
            churn: None,
            horizon_min,
        })
    }

    /// Adds catalog churn.
    pub fn with_churn(mut self, churn: CatalogChurn) -> Result<Self, ModelError> {
        if !churn.period_min.is_finite() || churn.period_min <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "churn.period_min",
                value: churn.period_min,
            });
        }
        if churn.step == 0 {
            return Err(ModelError::InvalidParameter {
                name: "churn.step",
                value: 0.0,
            });
        }
        self.churn = Some(churn);
        Ok(self)
    }

    /// The arrival-rate model.
    #[inline]
    pub fn rate(&self) -> &RateModel {
        &self.rate
    }

    /// The horizon in minutes.
    #[inline]
    pub fn horizon_min(&self) -> f64 {
        self.horizon_min
    }

    /// Number of videos.
    #[inline]
    pub fn n_videos(&self) -> usize {
        self.base.len()
    }

    /// The churn epoch containing minute `t`.
    fn epoch_at(&self, t: f64) -> u64 {
        match &self.churn {
            Some(c) => (t / c.period_min) as u64,
            None => 0,
        }
    }

    /// The video sampler in effect during churn epoch `e`: the base
    /// masses scattered through the epoch's rotation. Deterministic (no
    /// RNG), so both twins rebuild identical samplers.
    fn sampler_for_epoch(&self, e: u64) -> Result<ZipfSampler, ModelError> {
        let m = self.base.len();
        let shift = match &self.churn {
            Some(c) => (e as usize).wrapping_mul(c.step) % m,
            None => 0,
        };
        if shift == 0 {
            return ZipfSampler::from_popularity(&self.base);
        }
        let mut weights = vec![0.0; m];
        for rank in 0..m {
            weights[(rank + shift) % m] = self.base.get(rank);
        }
        ZipfSampler::from_raw_weights(&weights)
    }

    /// Materializes the full trace: the thinning pass first (all
    /// accepted instants), then the video pass — the canonical draw
    /// order the streaming twin reproduces.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Trace, ModelError> {
        let lam_max = self.rate.max_rate();
        let mut instants = Vec::new();
        let mut t = 0.0;
        loop {
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / lam_max;
            if t >= self.horizon_min {
                break;
            }
            let accept: f64 = rng.gen();
            if accept * lam_max < self.rate.rate_at(t) {
                instants.push(t);
            }
        }
        let mut requests = Vec::with_capacity(instants.len());
        let mut epoch = 0u64;
        let mut sampler = self.sampler_for_epoch(0)?;
        for &at in &instants {
            let e = self.epoch_at(at);
            if e != epoch {
                sampler = self.sampler_for_epoch(e)?;
                epoch = e;
            }
            requests.push(Request {
                arrival_min: at,
                video: sampler.sample(rng),
            });
        }
        Ok(Trace::from_sorted_unchecked(requests))
    }

    /// A streaming source drawing the exact request sequence
    /// [`ThinnedWorkload::generate`] would produce from the same RNG
    /// state, without materializing it.
    pub fn stream<R: Rng + Clone>(&self, rng: R) -> Result<StreamingThinned<R>, ModelError> {
        let lam_max = self.rate.max_rate();
        let gaps_rng = rng.clone();
        let mut videos_rng = rng;
        // Pre-pass: replay the whole thinning stream (gap + acceptance
        // draws) so the video clone parks at the first video draw.
        let mut t = 0.0;
        loop {
            let u: f64 = videos_rng.gen();
            t += -(1.0 - u).ln() / lam_max;
            if t >= self.horizon_min {
                break;
            }
            let _accept: f64 = videos_rng.gen();
        }
        Ok(StreamingThinned {
            workload: self.clone(),
            lam_max,
            gaps_rng,
            videos_rng,
            t: 0.0,
            epoch: 0,
            sampler: self.sampler_for_epoch(0)?,
        })
    }
}

/// Streaming twin of [`ThinnedWorkload::generate`]. Construct via
/// [`ThinnedWorkload::stream`].
#[derive(Debug, Clone)]
pub struct StreamingThinned<R: Rng + Clone> {
    workload: ThinnedWorkload,
    lam_max: f64,
    gaps_rng: R,
    videos_rng: R,
    t: f64,
    epoch: u64,
    sampler: ZipfSampler,
}

impl<R: Rng + Clone> ArrivalSource for StreamingThinned<R> {
    fn next_request(&mut self) -> Option<Request> {
        loop {
            let u: f64 = self.gaps_rng.gen();
            self.t += -(1.0 - u).ln() / self.lam_max;
            if self.t >= self.workload.horizon_min {
                return None;
            }
            let accept: f64 = self.gaps_rng.gen();
            if accept * self.lam_max < self.workload.rate.rate_at(self.t) {
                let e = self.workload.epoch_at(self.t);
                if e != self.epoch {
                    match self.workload.sampler_for_epoch(e) {
                        Ok(s) => {
                            self.sampler = s;
                            self.epoch = e;
                        }
                        Err(e) => {
                            debug_assert!(false, "epoch sampler rebuild failed: {e:?}");
                            return None;
                        }
                    }
                }
                return Some(Request {
                    arrival_min: self.t,
                    video: self.sampler.sample(&mut self.videos_rng),
                });
            }
        }
    }

    fn horizon_min(&self) -> f64 {
        self.workload.horizon_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::FlashCrowd;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vod_model::VideoId;

    fn collect<S: ArrivalSource>(mut s: S) -> Vec<Request> {
        let mut out = Vec::new();
        while let Some(r) = s.next_request() {
            out.push(r);
        }
        out
    }

    #[test]
    fn streaming_trace_matches_materialized() {
        let pop = Popularity::zipf(50, 1.0).unwrap();
        let g = TraceGenerator::new(40.0, &pop, 90.0).unwrap();
        let materialized = g.generate(&mut ChaCha8Rng::seed_from_u64(9));
        let streamed = collect(g.stream(ChaCha8Rng::seed_from_u64(9)));
        assert_eq!(materialized.requests(), &streamed[..]);
        assert!(!streamed.is_empty());
    }

    #[test]
    fn streaming_drift_matches_materialized() {
        let base = Popularity::zipf(32, 1.0).unwrap();
        let w = DriftingWorkload::new(base, 90.0, 10.0, 8, 41)
            .unwrap()
            .with_flash_crowds(vec![FlashCrowd {
                at_min: 45.0,
                video: VideoId(31),
                boost: 3.0,
            }])
            .unwrap();
        let materialized = w.generate(6.0, &mut ChaCha8Rng::seed_from_u64(17)).unwrap();
        let streamed = collect(w.stream(6.0, ChaCha8Rng::seed_from_u64(17)).unwrap());
        assert_eq!(materialized.requests(), &streamed[..]);
        assert!(!streamed.is_empty());
    }

    #[test]
    fn streaming_thinned_matches_materialized() {
        let rate = RateModel::constant(20.0)
            .unwrap()
            .with_diurnal(DiurnalCycle {
                period_min: 60.0,
                amplitude: 0.6,
            })
            .unwrap()
            .with_pulses(vec![RatePulse {
                start_min: 30.0,
                duration_min: 15.0,
                multiplier: 2.5,
            }])
            .unwrap();
        let w = ThinnedWorkload::new(rate, Popularity::zipf(40, 0.9).unwrap(), 120.0)
            .unwrap()
            .with_churn(CatalogChurn {
                period_min: 30.0,
                step: 7,
            })
            .unwrap();
        let materialized = w.generate(&mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let streamed = collect(w.stream(ChaCha8Rng::seed_from_u64(5)).unwrap());
        assert_eq!(materialized.requests(), &streamed[..]);
        assert!(!streamed.is_empty());
    }

    #[test]
    fn thinned_trace_is_sorted_and_in_horizon() {
        let rate = RateModel::constant(15.0)
            .unwrap()
            .with_diurnal(DiurnalCycle {
                period_min: 90.0,
                amplitude: 0.5,
            })
            .unwrap();
        let w = ThinnedWorkload::new(rate, Popularity::zipf(20, 1.0).unwrap(), 90.0).unwrap();
        let t = w.generate(&mut ChaCha8Rng::seed_from_u64(3)).unwrap();
        assert!(t
            .requests()
            .windows(2)
            .all(|x| x[0].arrival_min <= x[1].arrival_min));
        assert!(t
            .requests()
            .iter()
            .all(|r| (0.0..90.0).contains(&r.arrival_min)));
    }

    #[test]
    fn diurnal_cycle_modulates_volume() {
        // amplitude 0.9 over one full cycle: first half-period is the
        // crest, second the trough.
        let rate = RateModel::constant(30.0)
            .unwrap()
            .with_diurnal(DiurnalCycle {
                period_min: 120.0,
                amplitude: 0.9,
            })
            .unwrap();
        let w = ThinnedWorkload::new(rate, Popularity::zipf(10, 1.0).unwrap(), 120.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut crest = 0usize;
        let mut trough = 0usize;
        for _ in 0..20 {
            for r in w.generate(&mut rng).unwrap().requests() {
                if r.arrival_min < 60.0 {
                    crest += 1;
                } else {
                    trough += 1;
                }
            }
        }
        assert!(
            crest as f64 > 2.0 * trough as f64,
            "crest {crest} trough {trough}"
        );
    }

    #[test]
    fn pulse_modulates_volume() {
        let rate = RateModel::constant(10.0)
            .unwrap()
            .with_pulses(vec![RatePulse {
                start_min: 30.0,
                duration_min: 30.0,
                multiplier: 5.0,
            }])
            .unwrap();
        let w = ThinnedWorkload::new(rate, Popularity::zipf(10, 1.0).unwrap(), 90.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut inside = 0usize;
        let mut outside = 0usize;
        for _ in 0..20 {
            for r in w.generate(&mut rng).unwrap().requests() {
                if (30.0..60.0).contains(&r.arrival_min) {
                    inside += 1;
                } else {
                    outside += 1;
                }
            }
        }
        // Pulse window is 1/3 of the horizon at 5×: expect inside ≈
        // 5/7 of total.
        assert!(
            inside as f64 > 1.5 * outside as f64,
            "inside {inside} outside {outside}"
        );
    }

    #[test]
    fn churn_rotates_the_hot_title() {
        let rate = RateModel::constant(60.0).unwrap();
        let w = ThinnedWorkload::new(rate, Popularity::zipf(10, 1.2).unwrap(), 60.0)
            .unwrap()
            .with_churn(CatalogChurn {
                period_min: 30.0,
                step: 3,
            })
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut first = vec![0usize; 10];
        let mut second = vec![0usize; 10];
        for _ in 0..10 {
            for r in w.generate(&mut rng).unwrap().requests() {
                if r.arrival_min < 30.0 {
                    first[r.video.index()] += 1;
                } else {
                    second[r.video.index()] += 1;
                }
            }
        }
        let argmax = |v: &[usize]| v.iter().enumerate().max_by_key(|x| *x.1).unwrap().0;
        assert_eq!(argmax(&first), 0);
        assert_eq!(argmax(&second), 3);
    }

    #[test]
    fn rate_model_envelope_dominates() {
        let rate = RateModel::constant(12.0)
            .unwrap()
            .with_diurnal(DiurnalCycle {
                period_min: 77.0,
                amplitude: 0.8,
            })
            .unwrap()
            .with_pulses(vec![RatePulse {
                start_min: 10.0,
                duration_min: 5.0,
                multiplier: 3.0,
            }])
            .unwrap();
        let max = rate.max_rate();
        for i in 0..1000 {
            let t = i as f64 * 0.2;
            assert!(rate.rate_at(t) <= max + 1e-12);
        }
        let mean = rate.mean_rate(200.0);
        assert!(mean > 0.0 && mean < max);
    }

    #[test]
    fn rate_model_rejects_degenerate_parameters() {
        assert!(RateModel::constant(0.0).is_err());
        assert!(RateModel::constant(f64::NAN).is_err());
        let base = || RateModel::constant(10.0).unwrap();
        assert!(base()
            .with_diurnal(DiurnalCycle {
                period_min: 0.0,
                amplitude: 0.5
            })
            .is_err());
        assert!(base()
            .with_diurnal(DiurnalCycle {
                period_min: 60.0,
                amplitude: 1.0
            })
            .is_err());
        assert!(base()
            .with_pulses(vec![RatePulse {
                start_min: -1.0,
                duration_min: 5.0,
                multiplier: 2.0
            }])
            .is_err());
        assert!(base()
            .with_pulses(vec![RatePulse {
                start_min: 0.0,
                duration_min: 5.0,
                multiplier: 0.5
            }])
            .is_err());
        let w = |r| ThinnedWorkload::new(r, Popularity::zipf(4, 1.0).unwrap(), 90.0);
        assert!(w(base()).is_ok());
        assert!(ThinnedWorkload::new(base(), Popularity::zipf(4, 1.0).unwrap(), 0.0).is_err());
        assert!(w(base())
            .unwrap()
            .with_churn(CatalogChurn {
                period_min: 0.0,
                step: 1
            })
            .is_err());
        assert!(w(base())
            .unwrap()
            .with_churn(CatalogChurn {
                period_min: 30.0,
                step: 0
            })
            .is_err());
    }

    #[test]
    fn streaming_sources_are_cloneable_midstream() {
        // A cloned source replays the identical suffix — the property
        // the sharded engine's per-worker replay relies on.
        let pop = Popularity::zipf(20, 1.0).unwrap();
        let g = TraceGenerator::new(30.0, &pop, 90.0).unwrap();
        let mut a = g.stream(ChaCha8Rng::seed_from_u64(12));
        for _ in 0..100 {
            a.next_request();
        }
        let b = a.clone();
        assert_eq!(collect(a), collect(b));
    }
}
