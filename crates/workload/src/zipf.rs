//! Zipf-like video selection.
//!
//! Wraps an [`AliasTable`] built from a [`Popularity`] vector: each request
//! independently chooses the i-th video with probability
//! `p_i = (1/i^θ) / Σ_j (1/j^θ)` (paper, assumption 1 of Sec. 3.1).

use crate::alias::AliasTable;
use rand::Rng;
use vod_model::{ModelError, Popularity, VideoId};

/// Draws [`VideoId`]s according to a (Zipf-like or arbitrary) popularity
/// distribution in O(1) per draw.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    table: AliasTable,
}

impl ZipfSampler {
    /// A sampler for the paper's Zipf-like distribution over `m` videos
    /// with skew `θ`.
    pub fn new(m: usize, theta: f64) -> Result<Self, ModelError> {
        Self::from_popularity(&Popularity::zipf(m, theta)?)
    }

    /// A sampler for an arbitrary popularity vector.
    pub fn from_popularity(pop: &Popularity) -> Result<Self, ModelError> {
        Self::from_raw_weights(pop.p())
    }

    /// A sampler over raw per-video-id weights (need not be sorted or
    /// normalized); index `i` of the weight slice is sampled as
    /// `VideoId(i)`. Preserves video identity for drifting workloads.
    pub fn from_raw_weights(weights: &[f64]) -> Result<Self, ModelError> {
        let table = AliasTable::new(weights).ok_or(ModelError::Empty)?;
        Ok(ZipfSampler { table })
    }

    /// Number of videos.
    #[inline]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Always false: construction rejects empty distributions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Draws one video.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> VideoId {
        VideoId(self.table.sample(rng) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::empirical_pmf;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sampler_matches_popularity() {
        let m = 50;
        let theta = 1.0;
        let pop = Popularity::zipf(m, theta).unwrap();
        let sampler = ZipfSampler::new(m, theta).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let draws: Vec<usize> = (0..400_000)
            .map(|_| sampler.sample(&mut rng).index())
            .collect();
        let pmf = empirical_pmf(&draws, m);
        for (i, (&f, &p)) in pmf.iter().zip(pop.p()).enumerate() {
            assert!((f - p).abs() < 0.01, "video {i}: freq {f} vs p {p}");
        }
    }

    #[test]
    fn most_popular_video_dominates_under_high_skew() {
        let sampler = ZipfSampler::new(100, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut top = 0usize;
        let n = 100_000;
        for _ in 0..n {
            if sampler.sample(&mut rng) == VideoId(0) {
                top += 1;
            }
        }
        // p_1 = 1/H_100 ≈ 0.1928
        let f = top as f64 / n as f64;
        assert!((f - 0.1928).abs() < 0.01, "freq {f}");
    }

    #[test]
    fn uniform_theta_zero() {
        let sampler = ZipfSampler::new(4, 0.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let draws: Vec<usize> = (0..100_000)
            .map(|_| sampler.sample(&mut rng).index())
            .collect();
        for &f in &empirical_pmf(&draws, 4) {
            assert!((f - 0.25).abs() < 0.01);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ZipfSampler::new(0, 1.0).is_err());
        assert!(ZipfSampler::new(5, -0.1).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let s = ZipfSampler::new(20, 0.7).unwrap();
        let a: Vec<_> = {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            (0..50).map(|_| s.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            (0..50).map(|_| s.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
