//! Walker's alias method for O(1) categorical sampling.
//!
//! The simulator draws one video per request; with millions of requests per
//! parameter sweep, inverse-CDF binary search (O(log M)) is measurably
//! slower than an alias table (O(1) per draw after O(M) setup). The
//! construction below is Vose's numerically stable variant.

use rand::Rng;

/// A Walker/Vose alias table over `m` categories.
///
/// Sampling draws one uniform index and one uniform coin — two RNG calls,
/// no search.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of each bucket's own category.
    prob: Vec<f64>,
    /// Fallback category of each bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from non-negative weights (not necessarily
    /// normalized). Returns `None` for an empty slice, a non-finite or
    /// negative weight, or an all-zero total.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let m = weights.len();
        if m == 0 {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return None;
        }
        if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return None;
        }

        // Scale so the average bucket holds exactly 1.0.
        let scale = m as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; m];

        // Vose's two-stack partition into under- and over-full buckets.
        let mut small: Vec<u32> = Vec::with_capacity(m);
        let mut large: Vec<u32> = Vec::with_capacity(m);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // Donate the overfull bucket's mass to top up the underfull one.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Residual buckets are full up to round-off.
        for i in large.into_iter().chain(small) {
            prob[i as usize] = 1.0;
        }

        Some(AliasTable { prob, alias })
    }

    /// Number of categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no categories (construction forbids this).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -0.5]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn single_category_always_chosen() {
        let table = AliasTable::new(&[42.0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_category_never_chosen() {
        let table = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_ne!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freq = empirical(&[1.0; 8], 200_000, 3);
        for f in freq {
            assert!((f - 0.125).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_probabilities() {
        let weights = [8.0, 4.0, 2.0, 1.0, 1.0];
        let total: f64 = weights.iter().sum();
        let freq = empirical(&weights, 400_000, 4);
        for (f, w) in freq.iter().zip(weights) {
            let p = w / total;
            assert!((f - p).abs() < 0.01, "freq {f} vs p {p}");
        }
    }

    #[test]
    fn unnormalized_equals_normalized() {
        // Same seed, proportional weights -> identical tables -> identical draws.
        let a = AliasTable::new(&[1.0, 2.0, 3.0]).unwrap();
        let b = AliasTable::new(&[10.0, 20.0, 30.0]).unwrap();
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..1_000 {
            assert_eq!(a.sample(&mut r1), b.sample(&mut r2));
        }
    }

    #[test]
    fn large_table_builds_and_samples_in_range() {
        let weights: Vec<f64> = (1..=10_000).map(|i| 1.0 / i as f64).collect();
        let table = AliasTable::new(&weights).unwrap();
        assert_eq!(table.len(), 10_000);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..10_000 {
            assert!(table.sample(&mut rng) < 10_000);
        }
    }
}
