//! Empirical-distribution helpers for validating samplers and reporting.
//!
//! Used by the test suites (chi-square-style closeness checks on the Zipf
//! sampler) and by the experiment harness (confidence intervals on averaged
//! rejection rates, matching the paper's "each result was an average of
//! runs").

/// Empirical probability mass function of `draws` over `m` categories.
pub fn empirical_pmf(draws: &[usize], m: usize) -> Vec<f64> {
    let mut counts = vec![0usize; m];
    for &d in draws {
        if d < m {
            counts[d] += 1;
        }
    }
    let n = draws.len().max(1) as f64;
    counts.iter().map(|&c| c as f64 / n).collect()
}

/// Total-variation distance between two pmfs of equal length:
/// `½ Σ |p_i − q_i|` ∈ [0, 1].
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "pmf lengths must match");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Sample mean.
pub fn sample_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation (n−1 denominator); 0 for fewer than
/// two samples.
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = sample_mean(xs);
    let var = xs.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of an approximate 95% confidence interval on the mean
/// (normal approximation, `1.96 · s/√n`).
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * sample_std(xs) / (xs.len() as f64).sqrt()
}

/// Empirical `q`-quantile (`q ∈ [0, 1]`) by linear interpolation between
/// order statistics (the common "type 7" estimator). Sorts a copy; 0 for
/// an empty sample. Non-finite entries are rejected by debug assertion.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_counts_normalize() {
        let pmf = empirical_pmf(&[0, 0, 1, 2], 3);
        assert_eq!(pmf, vec![0.5, 0.25, 0.25]);
    }

    #[test]
    fn pmf_ignores_out_of_range() {
        let pmf = empirical_pmf(&[0, 7], 2);
        assert_eq!(pmf, vec![0.5, 0.0]);
    }

    #[test]
    fn pmf_empty_is_zero() {
        assert_eq!(empirical_pmf(&[], 2), vec![0.0, 0.0]);
    }

    #[test]
    fn tv_distance_bounds() {
        assert_eq!(total_variation(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((total_variation(&[0.5, 0.5], &[0.75, 0.25]) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pmf lengths must match")]
    fn tv_rejects_mismatched_lengths() {
        total_variation(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((sample_mean(&xs) - 5.0).abs() < 1e-12);
        // Known example: population std 2, sample std sqrt(32/7).
        assert!((sample_std(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_stats() {
        assert_eq!(sample_mean(&[]), 0.0);
        assert_eq!(sample_std(&[3.0]), 0.0);
        assert_eq!(ci95_half_width(&[3.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let a: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(ci95_half_width(&b) < ci95_half_width(&a));
    }
}
