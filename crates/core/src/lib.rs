//! High-level facade for the VoD replication/placement reproduction.
//!
//! Most users want one call chain: *describe the cluster and catalog →
//! choose algorithms → get a plan → predict or simulate its quality*. The
//! [`planner::ClusterPlanner`] wraps the whole pipeline of Zhou & Xu
//! (ICPP 2002):
//!
//! ```
//! use vod_core::prelude::*;
//!
//! // The paper's setting: 8 servers, 1.8 Gbps links, storage for 30
//! // replicas each; 200 videos at 4 Mbps; Zipf(θ=0.75) popularity.
//! let planner = ClusterPlanner::builder()
//!     .catalog(Catalog::paper_default(200).unwrap())
//!     .cluster(ClusterSpec::paper_default(30))
//!     .popularity(Popularity::zipf(200, 0.75).unwrap())
//!     .demand_requests(3_600.0)
//!     .build()
//!     .unwrap();
//!
//! let plan = planner
//!     .plan(ReplicationAlgo::Adams, PlacementAlgo::SmallestLoadFirst)
//!     .unwrap();
//! assert!(plan.scheme.degree() > 1.0);
//! assert!(plan.measured_imbalance_eq2 <= plan.imbalance_bound + 1e-9);
//! ```
//!
//! The individual crates remain the fine-grained API: `vod-model`
//! (formulation), `vod-replication` / `vod-placement` (Sec. 4 algorithms),
//! `vod-anneal` (Sec. 4.3), `vod-sim` (Sec. 5 evaluation substrate),
//! `vod-workload` (traces).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod planner;
pub mod prelude;

pub use adaptive::{AdaptiveConfig, AdaptiveRunner, DayReport, ReplanPlacement, ReplanStrategy};
pub use planner::{ClusterPlanner, PlacementAlgo, Plan, ReplicationAlgo};
