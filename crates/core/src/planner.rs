//! The end-to-end planning pipeline.
//!
//! `popularity → replication scheme → placement layout → predicted
//! bounds`, with an optional simulation step to measure what the plan
//! actually does under a Poisson/Zipf workload.

use rand::Rng;
use serde::{Deserialize, Serialize};
use vod_model::{load, Catalog, ClusterSpec, Layout, ModelError, Popularity, ReplicationScheme};
use vod_placement::traits::PlacementInput;
use vod_placement::{PlacementPolicy, RoundRobinPlacement, SmallestLoadFirstPlacement};
use vod_replication::{
    BoundedAdamsReplication, ClassificationReplication, ReplicationPolicy, UniformReplication,
    ZipfIntervalReplication,
};
use vod_sim::{SimConfig, SimReport, Simulation};
use vod_workload::TraceGenerator;

/// Which replication algorithm the planner runs (paper, Sec. 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicationAlgo {
    /// Bounded Adams monotone divisor — optimal (Theorem 4.1).
    Adams,
    /// Zipf-interval approximation — O(M log M) (Lemma 4.1).
    ZipfInterval,
    /// Rank-class baseline.
    Classification,
    /// Popularity-blind even spreading.
    Uniform,
}

/// Which placement algorithm the planner runs (paper, Sec. 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementAlgo {
    /// Weight-blind cyclic dealing.
    RoundRobin,
    /// Algorithm 1 — greedy by load, bounded by Theorem 4.2.
    SmallestLoadFirst,
}

impl ReplicationAlgo {
    /// Stable identifier for reports.
    pub fn name(self) -> &'static str {
        match self {
            ReplicationAlgo::Adams => "adams",
            ReplicationAlgo::ZipfInterval => "zipf",
            ReplicationAlgo::Classification => "class",
            ReplicationAlgo::Uniform => "uniform",
        }
    }

    /// Runs the selected policy.
    pub fn replicate(
        self,
        pop: &Popularity,
        n_servers: usize,
        total_slots: u64,
    ) -> Result<ReplicationScheme, ModelError> {
        match self {
            ReplicationAlgo::Adams => {
                BoundedAdamsReplication.replicate(pop, n_servers, total_slots)
            }
            ReplicationAlgo::ZipfInterval => {
                ZipfIntervalReplication::default().replicate(pop, n_servers, total_slots)
            }
            ReplicationAlgo::Classification => {
                ClassificationReplication.replicate(pop, n_servers, total_slots)
            }
            ReplicationAlgo::Uniform => UniformReplication.replicate(pop, n_servers, total_slots),
        }
    }
}

impl PlacementAlgo {
    /// Stable identifier for reports.
    pub fn name(self) -> &'static str {
        match self {
            PlacementAlgo::RoundRobin => "rr",
            PlacementAlgo::SmallestLoadFirst => "slf",
        }
    }

    /// Runs the selected policy.
    pub fn place(self, input: &PlacementInput<'_>) -> Result<Layout, ModelError> {
        match self {
            PlacementAlgo::RoundRobin => RoundRobinPlacement.place(input),
            PlacementAlgo::SmallestLoadFirst => SmallestLoadFirstPlacement.place(input),
        }
    }
}

/// A complete plan plus its predicted quality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Plan {
    /// Per-video replica counts.
    pub scheme: ReplicationScheme,
    /// Replica-to-server mapping.
    pub layout: Layout,
    /// Per-replica expected communication weights (`p_i·λT/r_i`,
    /// requests per replica in the peak period).
    pub weights: Vec<f64>,
    /// Expected per-server loads (sum of hosted weights).
    pub expected_loads: Vec<f64>,
    /// Theorem 4.2 bound on the Eq. (2) imbalance: `max w − min w`.
    pub imbalance_bound: f64,
    /// Measured static Eq. (2) imbalance of the expected loads.
    pub measured_imbalance_eq2: f64,
    /// Measured static Eq. (3) imbalance (coefficient of variation).
    pub measured_imbalance_cv: f64,
}

/// Planner inputs; build with [`ClusterPlanner::builder`].
#[derive(Debug, Clone)]
pub struct ClusterPlanner {
    catalog: Catalog,
    cluster: ClusterSpec,
    popularity: Popularity,
    demand_requests: f64,
}

/// Builder for [`ClusterPlanner`].
#[derive(Debug, Clone, Default)]
pub struct ClusterPlannerBuilder {
    catalog: Option<Catalog>,
    cluster: Option<ClusterSpec>,
    popularity: Option<Popularity>,
    demand_requests: Option<f64>,
}

impl ClusterPlannerBuilder {
    /// Sets the video catalog (must be fixed-rate for planning).
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Sets the cluster specification.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Sets the (known a-priori) popularity distribution.
    pub fn popularity(mut self, popularity: Popularity) -> Self {
        self.popularity = Some(popularity);
        self
    }

    /// Sets the expected peak-period demand `λT` in requests.
    pub fn demand_requests(mut self, demand: f64) -> Self {
        self.demand_requests = Some(demand);
        self
    }

    /// Validates and builds.
    pub fn build(self) -> Result<ClusterPlanner, ModelError> {
        let catalog = self.catalog.ok_or(ModelError::Empty)?;
        let cluster = self.cluster.ok_or(ModelError::Empty)?;
        let popularity = self.popularity.ok_or(ModelError::Empty)?;
        let demand_requests = self.demand_requests.unwrap_or(0.0);
        if popularity.len() != catalog.len() {
            return Err(ModelError::LengthMismatch {
                expected: catalog.len(),
                actual: popularity.len(),
            });
        }
        if !catalog.is_fixed_rate() {
            return Err(ModelError::InvalidParameter {
                name: "catalog (fixed-rate planning requires one bit rate)",
                value: 0.0,
            });
        }
        if !demand_requests.is_finite() || demand_requests <= 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "demand_requests",
                value: demand_requests,
            });
        }
        Ok(ClusterPlanner {
            catalog,
            cluster,
            popularity,
            demand_requests,
        })
    }
}

impl ClusterPlanner {
    /// Starts a builder.
    pub fn builder() -> ClusterPlannerBuilder {
        ClusterPlannerBuilder::default()
    }

    /// The bound catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The bound cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The bound popularity distribution.
    pub fn popularity(&self) -> &Popularity {
        &self.popularity
    }

    /// Per-server storage capacities in replica slots for the (fixed)
    /// catalog rate.
    pub fn replica_capacities(&self) -> Vec<u64> {
        let video = &self.catalog.videos()[0];
        self.cluster
            .servers()
            .iter()
            .map(|s| s.replica_slots(video.bitrate, video.duration_s))
            .collect()
    }

    /// Runs the full pipeline with the chosen algorithms.
    pub fn plan(
        &self,
        replication: ReplicationAlgo,
        placement: PlacementAlgo,
    ) -> Result<Plan, ModelError> {
        let capacities = self.replica_capacities();
        let total_slots: u64 = capacities.iter().sum();
        let scheme = replication.replicate(&self.popularity, self.cluster.len(), total_slots)?;
        let weights = scheme.weights(&self.popularity, self.demand_requests)?;
        let layout = placement.place(&PlacementInput {
            scheme: &scheme,
            weights: &weights,
            n_servers: self.cluster.len(),
            capacities: &capacities,
        })?;
        layout.validate_storage(&self.catalog, &self.cluster)?;
        let expected_loads = layout.loads(&weights)?;
        let imbalance_bound = scheme.weight_spread(&self.popularity, self.demand_requests)?;
        Ok(Plan {
            measured_imbalance_eq2: load::max_deviation(&expected_loads),
            measured_imbalance_cv: load::coefficient_of_variation(&expected_loads),
            scheme,
            layout: layout.clone(),
            weights,
            expected_loads,
            imbalance_bound,
        })
    }

    /// Simulates a plan under a fresh Poisson/Zipf trace at
    /// `lambda_per_min` for `horizon_min` minutes.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        plan: &Plan,
        lambda_per_min: f64,
        horizon_min: f64,
        config: SimConfig,
        rng: &mut R,
    ) -> Result<SimReport, ModelError> {
        let generator = TraceGenerator::new(lambda_per_min, &self.popularity, horizon_min)?;
        let trace = generator.generate(rng);
        let sim = Simulation::new(&self.catalog, &self.cluster, &plan.layout, config)?;
        sim.run(&trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn planner() -> ClusterPlanner {
        ClusterPlanner::builder()
            .catalog(Catalog::paper_default(100).unwrap())
            .cluster(ClusterSpec::paper_default(20))
            .popularity(Popularity::zipf(100, 1.0).unwrap())
            .demand_requests(3_600.0)
            .build()
            .unwrap()
    }

    #[test]
    fn full_pipeline_produces_valid_plan() {
        let p = planner();
        for repl in [
            ReplicationAlgo::Adams,
            ReplicationAlgo::ZipfInterval,
            ReplicationAlgo::Classification,
            ReplicationAlgo::Uniform,
        ] {
            for plc in [PlacementAlgo::RoundRobin, PlacementAlgo::SmallestLoadFirst] {
                let plan = p.plan(repl, plc).unwrap();
                assert_eq!(plan.scheme.len(), 100);
                assert!(plan.scheme.validate(8).is_ok());
                assert_eq!(plan.expected_loads.len(), 8);
                // Storage: 20 slots per server, 160 total.
                assert!(plan.scheme.total() <= 160);
            }
        }
    }

    #[test]
    fn slf_meets_its_bound() {
        let p = planner();
        let plan = p
            .plan(ReplicationAlgo::Adams, PlacementAlgo::SmallestLoadFirst)
            .unwrap();
        assert!(plan.measured_imbalance_eq2 <= plan.imbalance_bound + 1e-9);
    }

    #[test]
    fn slf_no_worse_than_round_robin_statically() {
        let p = planner();
        let slf = p
            .plan(ReplicationAlgo::Adams, PlacementAlgo::SmallestLoadFirst)
            .unwrap();
        let rr = p
            .plan(ReplicationAlgo::Adams, PlacementAlgo::RoundRobin)
            .unwrap();
        assert!(slf.measured_imbalance_cv <= rr.measured_imbalance_cv + 1e-9);
    }

    #[test]
    fn simulation_roundtrip() {
        let p = planner();
        let plan = p
            .plan(ReplicationAlgo::Adams, PlacementAlgo::SmallestLoadFirst)
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let report = p
            .simulate(&plan, 20.0, 90.0, SimConfig::default(), &mut rng)
            .unwrap();
        assert!(report.is_conservative());
        // λ=20/min is half the cluster's 40/min capacity: low rejections.
        assert!(report.rejection_rate < 0.2);
    }

    #[test]
    fn builder_validation() {
        assert!(ClusterPlanner::builder().build().is_err());
        let err = ClusterPlanner::builder()
            .catalog(Catalog::paper_default(10).unwrap())
            .cluster(ClusterSpec::paper_default(5))
            .popularity(Popularity::zipf(9, 1.0).unwrap())
            .demand_requests(10.0)
            .build();
        assert!(matches!(err, Err(ModelError::LengthMismatch { .. })));
        let err = ClusterPlanner::builder()
            .catalog(Catalog::paper_default(10).unwrap())
            .cluster(ClusterSpec::paper_default(5))
            .popularity(Popularity::zipf(10, 1.0).unwrap())
            .demand_requests(-1.0)
            .build();
        assert!(matches!(err, Err(ModelError::InvalidParameter { .. })));
    }

    #[test]
    fn algo_names_stable() {
        assert_eq!(ReplicationAlgo::Adams.name(), "adams");
        assert_eq!(ReplicationAlgo::ZipfInterval.name(), "zipf");
        assert_eq!(ReplicationAlgo::Classification.name(), "class");
        assert_eq!(ReplicationAlgo::Uniform.name(), "uniform");
        assert_eq!(PlacementAlgo::RoundRobin.name(), "rr");
        assert_eq!(PlacementAlgo::SmallestLoadFirst.name(), "slf");
    }
}
